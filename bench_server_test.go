// Serving-path benchmark for the observability layer (DESIGN.md §12): the
// same cache-hit request with everything off (no logger, no trace ring)
// versus fully instrumented (JSON access log to a discard writer, span
// timeline export, per-route histograms). The cache-hit path is the
// worst case for relative overhead — there is no simulation to amortize
// against — so the recorded fraction is an upper bound on what a real
// workload pays.

package repro

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"log/slog"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/stats"
)

// benchBackend answers instantly so the benchmark times the serving layers,
// not a simulation.
type benchBackend struct{}

func (benchBackend) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	return &core.MixResult{Config: cfg, STP: 1, Cluster: &cluster.Result{}}, nil
}

func (benchBackend) Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
	out := make([]*experiments.Report, len(ids))
	for i, id := range ids {
		out[i] = &experiments.Report{ID: id, Table: stats.Table{Title: id}}
	}
	return out, nil
}

func benchServeHits(b *testing.B, cfg server.Config) {
	b.Helper()
	cfg.Backend = benchBackend{}
	srv := server.New(cfg)
	const body = `{"mix": ["bzip2"]}`
	do := func() int {
		req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(); code != http.StatusOK {
		b.Fatalf("warmup status = %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status = %d", code)
		}
	}
}

// BenchmarkServerObservability measures the per-request cost of request
// tracing plus access logging on the cache-hit serving path. When both
// sub-benchmarks run, the pair and the relative overhead are written to
// BENCH_observability.json for trajectory tracking; the acceptance bound for
// the whole observability layer is <= 2% on the simulation benchmarks, which
// this serving-only overhead feeds into.
func BenchmarkServerObservability(b *testing.B) {
	var offNs, onNs float64
	b.Run("Off", func(b *testing.B) {
		benchServeHits(b, server.Config{TraceEvents: -1})
		offNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("On", func(b *testing.B) {
		benchServeHits(b, server.Config{
			Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
		})
		onNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if offNs == 0 || onNs == 0 {
		return // a sub-benchmark was filtered out; nothing to compare
	}
	overhead := onNs/offNs - 1
	b.Logf("serving observability overhead: %.2f%% (off %.0f ns/op, on %.0f ns/op)",
		overhead*100, offNs, onNs)
	out := map[string]any{
		"benchmark": "BenchmarkServerObservability",
		"unit":      "ns/op",
		"results": map[string]float64{
			"ServeHitObservabilityOff": offNs,
			"ServeHitObservabilityOn":  onNs,
		},
		"overhead_frac": overhead,
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_observability.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
