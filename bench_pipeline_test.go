package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// pipelineBefore holds the pre-rewrite engine's numbers for the benchmarks
// below, measured on the CI reference machine at the commit that captured
// the golden fixtures (the per-cycle rescan engine). BENCH_pipeline.json
// reports the current engine against this baseline.
var pipelineBefore = map[string]float64{
	"DataflowNsOp":     1_091_414,
	"InOrderNsOp":      45_002,
	"ReplayNsOp":       47_808,
	"SweepNsOp":        21_973_924_604,
	"DataflowAllocsOp": 1180,
	"InOrderAllocsOp":  1179,
	"ReplayAllocsOp":   1179,
}

// pipelineBenchTrace is a ~40-instruction loop body with four partially
// independent chains and regular memory traffic — enough ILP for the window
// to matter and enough loads for memory latency to dominate stalls, like the
// generated workloads the cluster layer simulates.
func pipelineBenchTrace() *trace.Trace {
	t := &trace.Trace{ID: 4242, Streams: []trace.StreamSpec{{WorkingSet: 1 << 20, Stride: 64}}}
	for c := 0; c < 4; c++ {
		base := isa.Reg(1 + 2*c)
		t.Insts = append(t.Insts,
			isa.Inst{Op: isa.Load, Dst: base, Src1: base},
			isa.Inst{Op: isa.IntALU, Dst: base + 1, Src1: base, Src2: base + 1},
			isa.Inst{Op: isa.IntMul, Dst: base, Src1: base + 1},
			isa.Inst{Op: isa.IntALU, Dst: base + 1, Src1: base, Src2: base + 1},
			isa.Inst{Op: isa.FPAdd, Dst: isa.NumIntRegs + base, Src1: isa.NumIntRegs + base},
			isa.Inst{Op: isa.IntALU, Dst: base, Src1: base + 1},
			isa.Inst{Op: isa.Load, Dst: base + 1, Src1: base},
			isa.Inst{Op: isa.IntALU, Dst: base + 1, Src1: base + 1, Src2: base},
			isa.Inst{Op: isa.Store, Src1: base + 1},
		)
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

// pipelineBenchLats mimics the memory hierarchy: mostly L1 hits, some L2,
// occasional DRAM misses (the long stalls the calendar queue skips).
func pipelineBenchLats(seed uint64) func(int) int {
	rng := xrand.New(seed)
	lats := [8]int{2, 2, 2, 2, 2, 17, 17, 137}
	return func(int) int { return lats[rng.Intn(len(lats))] }
}

func pipelineBenchRequest(pol pipeline.Policy, tr *trace.Trace, deps *trace.DepGraph, order []uint16) pipeline.Request {
	req := pipeline.Request{
		Trace:             tr,
		Deps:              deps,
		Iterations:        16,
		Policy:            pol,
		Width:             isa.IssueWidth,
		Window:            isa.ROBSize,
		MispredictPenalty: isa.OoOPipelineDepth,
		LoadLatency:       pipelineBenchLats(7),
	}
	if pol == pipeline.RecordedOrder {
		req.Order = order
		req.ProbeSpan = len(order) / len(tr.Insts)
	}
	return req
}

var (
	pipelineBenchMu      sync.Mutex
	pipelineBenchResults = map[string]float64{}
)

// recordPipelineBench merges one benchmark's numbers into
// BENCH_pipeline.json alongside the pre-rewrite baseline and the derived
// speedups. Rewritten after every benchmark, and merged over the entries
// already on disk, so partial -bench filters refresh their own numbers
// without dropping the rest.
func recordPipelineBench(b *testing.B, name string, nsOp, allocsOp float64) {
	b.Helper()
	pipelineBenchMu.Lock()
	defer pipelineBenchMu.Unlock()
	pipelineBenchResults[name+"NsOp"] = nsOp
	if allocsOp >= 0 {
		pipelineBenchResults[name+"AllocsOp"] = allocsOp
	}

	after := make(map[string]float64, len(pipelineBenchResults))
	if buf, err := os.ReadFile("BENCH_pipeline.json"); err == nil {
		var prev struct {
			After map[string]float64 `json:"after"`
		}
		if json.Unmarshal(buf, &prev) == nil {
			for k, v := range prev.After {
				after[k] = v
			}
		}
	}
	for k, v := range pipelineBenchResults {
		after[k] = v
	}
	speedup := map[string]float64{}
	for k, now := range after {
		if was, ok := pipelineBefore[k]; ok && now > 0 {
			speedup[k] = was / now
		}
	}
	out := map[string]any{
		"benchmark": "BenchmarkPipeline*",
		"unit":      "ns/op (AllocsOp entries: allocs/op)",
		"before":    pipelineBefore,
		"after":     after,
		"speedup":   speedup,
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func benchPipelinePolicy(b *testing.B, name string, pol pipeline.Policy) {
	b.Helper()
	tr := pipelineBenchTrace()
	deps := trace.BuildDepGraph(tr)
	var order []uint16
	if pol == pipeline.RecordedOrder {
		df := pipeline.Run(pipelineBenchRequest(pipeline.Dataflow, tr, deps, nil))
		order = df.IssueOrder
	}
	req := pipelineBenchRequest(pol, tr, deps, order)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pipeline.Run(req)
		if res.Cycles == 0 {
			b.Fatal("empty result")
		}
	}
	b.StopTimer()
	nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	allocsOp := testing.AllocsPerRun(50, func() { pipeline.Run(req) })
	recordPipelineBench(b, name, nsOp, allocsOp)
}

// TestPipelineRunAllocs pins the hot path's allocation budget: a steady-state
// run on an owned Engine (the path every core takes) may allocate only the
// slices the Result carries out (IterEnd and IssueOrder), not per-run
// scratch. The pooled pipeline.Run isn't asserted on — a GC between runs may
// empty the pool and re-allocate engines, which is noise, not a leak. The
// bound is deliberately a little loose so unrelated runtime changes don't
// flake it; the pre-rewrite engine sat near 1180 allocs/op.
func TestPipelineRunAllocs(t *testing.T) {
	tr := pipelineBenchTrace()
	deps := trace.BuildDepGraph(tr)
	for _, pol := range []pipeline.Policy{pipeline.Dataflow, pipeline.ProgramOrder} {
		eng := pipeline.NewEngine()
		req := pipelineBenchRequest(pol, tr, deps, nil)
		eng.Run(req) // size the scratch and build the memoized dep CSR
		allocs := testing.AllocsPerRun(100, func() { eng.Run(req) })
		if allocs > 8 {
			t.Errorf("policy %d: Engine.Run allocates %.0f/op, want <= 8", pol, allocs)
		}
	}
}

// BenchmarkPipelineDataflow measures pipeline.Run under OoO wakeup/select
// issue — the inner loop of every OoO measurement in the simulator.
func BenchmarkPipelineDataflow(b *testing.B) {
	benchPipelinePolicy(b, "Dataflow", pipeline.Dataflow)
}

// BenchmarkPipelineInOrder measures stall-on-use in-order issue.
func BenchmarkPipelineInOrder(b *testing.B) {
	benchPipelinePolicy(b, "InOrder", pipeline.ProgramOrder)
}

// BenchmarkPipelineReplay measures OinO recorded-order replay.
func BenchmarkPipelineReplay(b *testing.B) {
	benchPipelinePolicy(b, "Replay", pipeline.RecordedOrder)
}

// BenchmarkPipelineSweep is the end-to-end check that engine-level wins
// survive the full stack: the reduced Figures 7/8/9b sweep (the same shape
// BenchmarkSweepParallel uses), run serially so the pipeline engine — not
// worker-pool scaling — is the variable.
func BenchmarkPipelineSweep(b *testing.B) {
	sweep := experiments.Scale{
		TargetInsts:    1_000_000,
		IntervalCycles: 40_000,
		MixesPerPoint:  3,
		NValues:        []int{4, 8},
		Parallel:       1,
	}
	program.Suite() // generate the workload suite outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sweep
		s.Name = fmt.Sprintf("pipesweep-i%d", i)
		if _, err := experiments.Figure7(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	recordPipelineBench(b, "Sweep", nsOp, -1)
}
