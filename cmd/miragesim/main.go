// Command miragesim runs one CMP simulation: a workload mix on a chosen
// topology under a chosen arbitration policy, printing per-application and
// system-level statistics.
//
// Usage:
//
//	miragesim -mix hmmer,bzip2,astar,milc -topology mirage -policy SC-MPKI
//	miragesim -n 8 -topology traditional -policy maxSTP   (random 8-app mix)
//	miragesim -list                                        (available benchmarks)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	mixFlag := flag.String("mix", "", "comma-separated benchmark names (default: random mix of size -n)")
	nFlag := flag.Int("n", 8, "mix size when -mix is empty (also the InO count)")
	topoFlag := flag.String("topology", "mirage", "mirage | traditional | homo-ino | homo-ooo")
	policyFlag := flag.String("policy", "SC-MPKI", "SC-MPKI | maxSTP | SC-MPKI+maxSTP | Fair | SC-MPKI-fair")
	numOoO := flag.Int("ooo", 1, "OoO core count (traditional topology only)")
	insts := flag.Int64("insts", 2_000_000, "instruction target per application")
	interval := flag.Int64("interval", 80_000, "arbitration interval in cycles")
	seed := flag.String("seed", "miragesim", "deterministic seed name")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	audit := flag.Bool("audit", false, "run the invariant audit alongside the simulation; any violation is a fatal error")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	metricsOut := flag.String("metrics-out", "", "write telemetry counters and interval time-series as JSON to this file")
	traceOut := flag.String("trace-out", "", "write Chrome trace_event JSON to this file (chrome://tracing, Perfetto)")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *list {
		for _, n := range program.Names() {
			b := program.ByName(n)
			fmt.Printf("%-12s %s\n", n, b.Params.Category)
		}
		return
	}

	var topo core.Topology
	switch *topoFlag {
	case "mirage":
		topo = core.TopologyMirage
	case "traditional":
		topo = core.TopologyTraditional
	case "homo-ino":
		topo = core.TopologyHomoInO
	case "homo-ooo":
		topo = core.TopologyHomoOoO
	default:
		fatalf("unknown topology %q", *topoFlag)
	}

	var mix []string
	if *mixFlag != "" {
		for _, m := range strings.Split(*mixFlag, ",") {
			mix = append(mix, strings.TrimSpace(m))
		}
	} else {
		mix = core.RandomMixes(core.MixRandom, *nFlag, 1, *seed)[0]
	}

	var tel *telemetry.Telemetry
	if *metricsOut != "" || *traceOut != "" {
		tel = telemetry.New()
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	cfg := core.Config{
		Topology:       topo,
		Benchmarks:     mix,
		Policy:         core.Policy(*policyFlag),
		NumOoO:         *numOoO,
		TargetInsts:    *insts,
		IntervalCycles: *interval,
		Seed:           *seed,
		Telemetry:      tel,
		Audit:          *audit,
	}
	// The mix and its Homo-OoO reference are independent simulations; run
	// them as two runner jobs (the old code also simulated the reference a
	// second time inside RunMixWithBaseline — this keeps one of each).
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mr  *core.MixResult
		ref []float64
	)
	_, err := runner.Run(context.Background(), workers, []runner.Job[struct{}]{
		{Name: "mix", Run: func() (struct{}, error) {
			var err error
			mr, err = core.RunMix(context.Background(), cfg)
			return struct{}{}, err
		}},
		{Name: "ref", Run: func() (struct{}, error) {
			var err error
			ref, err = core.OoOReferenceCfg(context.Background(), cfg)
			return struct{}{}, err
		}},
	})
	if err != nil {
		fatalf("%v", err)
	}
	mr.STP = stats.STP(mr.PerAppIPC, ref)

	if *metricsOut != "" {
		if err := tel.WriteMetricsFile(*metricsOut); err != nil {
			fatalf("%v", err)
		}
	}
	if *traceOut != "" {
		if err := tel.WriteTraceFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
	}

	var tbl stats.Table
	tbl.Title = fmt.Sprintf("%s / %s on %d applications", topo, *policyFlag, len(mix))
	tbl.Headers = []string{"app", "IPC", "speedup vs OoO", "memoized", "OoO share", "migrations"}
	for i, a := range mr.Cluster.Apps {
		memo := "-"
		if a.Insts > 0 {
			memo = stats.Pct(float64(a.MemoizedInsts) / float64(a.Insts))
		}
		share := "-"
		if a.Cycles > 0 {
			share = stats.Pct(float64(a.OoOCycles) / float64(a.Cycles))
		}
		tbl.AddRow(a.Name, stats.F(a.IPC), stats.F(a.IPC/ref[i]), memo, share, fmt.Sprint(a.Migrations))
	}
	fmt.Println(tbl.String())
	fmt.Printf("STP (vs Homo-OoO): %.2f\n", mr.STP)
	fmt.Printf("OoO active:        %s of wall cycles\n", stats.Pct(mr.OoOActiveFrac))
	fmt.Printf("energy:            %.2e pJ\n", mr.EnergyPJ)
	fmt.Printf("area:              %.1f mm^2\n", mr.AreaMM2)
	fmt.Printf("migrations:        %d (bus transfer %d cycles)\n",
		mr.Cluster.Migrations, mr.Cluster.BusTransferCycles)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "miragesim: "+format+"\n", args...)
	os.Exit(1)
}
