// Command mirageexp regenerates the paper's tables and figures.
//
// Usage:
//
//	mirageexp [-scale quick|full] [-only "Figure 7,Figure 8"]
//
// Each experiment prints a text table whose rows correspond to the figure's
// series; EXPERIMENTS.md records a reference run next to the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "mirageexp: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	only := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			only[strings.TrimSpace(id)] = true
		}
	}

	type exp struct {
		id  string
		run func() (*experiments.Report, error)
	}
	all := []exp{
		{"Table 1", func() (*experiments.Report, error) { return experiments.Table1(scale) }},
		{"Table 2", func() (*experiments.Report, error) { return experiments.Table2(), nil }},
		{"Figure 1", func() (*experiments.Report, error) { return experiments.Figure1(scale) }},
		{"Figure 2", func() (*experiments.Report, error) { return experiments.Figure2(scale) }},
		{"Figure 3b", func() (*experiments.Report, error) { return experiments.Figure3b(scale) }},
		{"Figure 5", func() (*experiments.Report, error) { return experiments.Figure5(scale) }},
		{"Figure 6", func() (*experiments.Report, error) { return experiments.Figure6(scale), nil }},
		{"Figure 7", func() (*experiments.Report, error) { return experiments.Figure7(scale) }},
		{"Figure 8", func() (*experiments.Report, error) { return experiments.Figure8(scale) }},
		{"Figure 9a", func() (*experiments.Report, error) { return experiments.Figure9a() }},
		{"Figure 9b", func() (*experiments.Report, error) { return experiments.Figure9b(scale) }},
		{"Figure 10", func() (*experiments.Report, error) { return experiments.Figure10(scale) }},
		{"Figure 11", func() (*experiments.Report, error) { return experiments.Figure11(scale) }},
		{"Figure 12", func() (*experiments.Report, error) { return experiments.Figure12(scale) }},
		{"Figure 13", func() (*experiments.Report, error) { return experiments.Figure13(scale) }},
		{"Figure 14", func() (*experiments.Report, error) { return experiments.Figure14(scale) }},
		{"Figure 15", func() (*experiments.Report, error) { return experiments.Figure15(scale) }},
		{"SC size", func() (*experiments.Report, error) { return experiments.SCSize(scale) }},
		{"Headline", func() (*experiments.Report, error) { return experiments.Headline(scale) }},
	}

	failed := 0
	for _, e := range all {
		if len(only) > 0 && !only[e.id] {
			continue
		}
		start := time.Now()
		rep, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirageexp: %s failed: %v\n", e.id, err)
			failed++
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s took %.1fs)\n\n", e.id, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
