// Command mirageexp regenerates the paper's tables and figures.
//
// Usage:
//
//	mirageexp [-scale quick|full] [-only "Figure 7,Figure 8"]
//	mirageexp -only "Figure 7" -json-out reports.json -metrics-out m.json
//
// Each experiment prints a text table whose rows correspond to the figure's
// series; EXPERIMENTS.md records a reference run next to the paper's
// numbers. -json-out additionally writes the reports as a diffable JSON
// array, and -metrics-out/-trace-out instrument every simulation the
// selected experiments launch (counters accumulate across experiments).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	parallelFlag := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial); reports are bit-identical at any setting")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	auditFlag := flag.Bool("audit", false, "run the invariant audit inside every simulation; any violation fails the experiment")
	jsonOut := flag.String("json-out", "", "write the selected reports as a JSON array to this file")
	metricsOut := flag.String("metrics-out", "", "write telemetry counters and interval time-series as JSON to this file")
	traceOut := flag.String("trace-out", "", "write Chrome trace_event JSON to this file (chrome://tracing, Perfetto)")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the run to this file")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "mirageexp: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}
	if *parallelFlag < 0 {
		fmt.Fprintf(os.Stderr, "mirageexp: -parallel must be >= 0\n")
		os.Exit(2)
	}
	scale.Parallel = *parallelFlag
	scale.Audit = *auditFlag

	var tel *telemetry.Telemetry
	if *metricsOut != "" || *traceOut != "" {
		tel = telemetry.New()
		scale.Telemetry = tel
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	only := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			only[strings.TrimSpace(id)] = true
		}
	}

	ctx := context.Background()
	failed := 0
	var reports []*experiments.Report
	for _, e := range experiments.All() {
		if len(only) > 0 && !only[e.ID] && !only[e.Slug] {
			continue
		}
		start := time.Now()
		rep, err := e.Run(ctx, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirageexp: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		reports = append(reports, rep)
		fmt.Println(rep.String())
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := experiments.WriteReportsJSON(f, reports); err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if *metricsOut != "" {
		if err := tel.WriteMetricsFile(*metricsOut); err != nil {
			fatalf("%v", err)
		}
	}
	if *traceOut != "" {
		if err := tel.WriteTraceFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mirageexp: "+format+"\n", args...)
	os.Exit(1)
}
