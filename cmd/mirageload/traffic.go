// Deterministic traffic synthesis for mirageload: the whole request
// schedule derives from one seed, so a failing SLO run can be replayed
// exactly. The model mirrors production serving traffic:
//
//   - a zipfian key popularity curve (a few hot job keys dominate, with a
//     long tail of one-offs) — this is what makes the response cache and
//     the persistent store earn their hit-ratio SLO;
//   - Poisson arrivals (exponential inter-arrival gaps at a target rate)
//     punctuated by bursts, which exercise admission control and
//     singleflight collapsing;
//   - a deadline spread: most requests are patient, a slice carries tight
//     timeout_ms budgets, so deadline handling stays on the hot path;
//   - a mixed route population: mostly /v1/run with a minority of
//     /v1/sweep, whose single per-scale key caches immediately.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/program"
	"repro/internal/xrand"
)

// trafficConfig parameterizes plan generation. All fields are required;
// main fills them from flags.
type trafficConfig struct {
	Seed     string  `json:"seed"`
	Requests int     `json:"requests"`
	RatePerS float64 `json:"rate_per_s"`
	// Keys is the size of the distinct-job universe; ZipfS its skew
	// (weight of the r-th most popular key ∝ 1/r^ZipfS).
	Keys  int     `json:"keys"`
	ZipfS float64 `json:"zipf_s"`
	// PBurst is the per-arrival probability of opening a burst of
	// BurstLen back-to-back requests with zero inter-arrival gap.
	PBurst   float64 `json:"p_burst"`
	BurstLen int     `json:"burst_len"`
	// PSweep is the probability a request targets /v1/sweep.
	PSweep float64 `json:"p_sweep"`
	// PTightDeadline is the probability a request carries the tight
	// timeout budget instead of the patient one.
	PTightDeadline float64 `json:"p_tight_deadline"`
	TightTimeoutMS int64   `json:"tight_timeout_ms"`
	TimeoutMS      int64   `json:"timeout_ms"`
	// TargetInsts bounds per-simulation work so a load test measures the
	// serving layer, not simulator throughput.
	TargetInsts int64 `json:"target_insts"`
	// SweepScale names the scale for /v1/sweep requests.
	SweepScale string `json:"sweep_scale"`
}

// request is one planned arrival.
type request struct {
	// At is the offset from test start at which the request fires.
	At time.Duration
	// Path is the route; Body the JSON payload.
	Path string
	Body []byte
	// Key identifies the logical job for hit-ratio accounting (distinct
	// Key count ≤ trafficConfig.Keys + 1).
	Key string
	// Tight marks a request carrying the tight deadline budget.
	Tight bool
}

// runTemplate is one member of the zipfian key universe.
type runTemplate struct {
	mix  []string
	seed string
}

// plan expands cfg into the full deterministic schedule, sorted by arrival
// offset.
func plan(cfg trafficConfig) ([]request, error) {
	if cfg.Requests <= 0 || cfg.Keys <= 0 || cfg.RatePerS <= 0 {
		return nil, fmt.Errorf("requests, keys and rate must be positive")
	}
	if cfg.BurstLen < 2 {
		cfg.BurstLen = 2
	}
	names := program.Names()
	if len(names) == 0 {
		return nil, fmt.Errorf("empty benchmark registry")
	}

	tmplRng := xrand.NewString("mirageload|templates|" + cfg.Seed)
	templates := make([]runTemplate, cfg.Keys)
	for i := range templates {
		n := 1 + tmplRng.Intn(3)
		mix := make([]string, n)
		for j := range mix {
			mix[j] = names[tmplRng.Intn(len(names))]
		}
		templates[i] = runTemplate{mix: mix, seed: fmt.Sprintf("load-%s-%d", cfg.Seed, i)}
	}
	weights := make([]float64, cfg.Keys)
	for r := range weights {
		weights[r] = 1 / math.Pow(float64(r+1), cfg.ZipfS)
	}

	arrRng := xrand.NewString("mirageload|arrivals|" + cfg.Seed)
	pickRng := xrand.NewString("mirageload|keys|" + cfg.Seed)
	reqs := make([]request, 0, cfg.Requests)
	var at time.Duration
	burst := 0
	for len(reqs) < cfg.Requests {
		if burst > 0 {
			burst--
		} else {
			// Exponential inter-arrival gap at the target rate; 1-U keeps
			// the argument of log strictly positive.
			gap := -math.Log(1-arrRng.Float64()) / cfg.RatePerS
			at += time.Duration(gap * float64(time.Second))
			if arrRng.Bool(cfg.PBurst) {
				burst = cfg.BurstLen - 1
			}
		}
		timeoutMS := cfg.TimeoutMS
		tight := pickRng.Bool(cfg.PTightDeadline)
		if tight {
			timeoutMS = cfg.TightTimeoutMS
		}
		if pickRng.Bool(cfg.PSweep) {
			body, err := json.Marshal(map[string]any{
				"scale":      cfg.SweepScale,
				"timeout_ms": timeoutMS,
			})
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, request{
				At: at, Path: "/v1/sweep", Body: body,
				Key: "sweep|" + cfg.SweepScale, Tight: tight,
			})
			continue
		}
		tm := templates[pickRng.Pick(weights)]
		body, err := json.Marshal(map[string]any{
			"mix":          tm.mix,
			"seed":         tm.seed,
			"target_insts": cfg.TargetInsts,
			"timeout_ms":   timeoutMS,
		})
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, request{
			At: at, Path: "/v1/run", Body: body,
			Key: "run|" + tm.seed, Tight: tight,
		})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	return reqs, nil
}
