// Command mirageload drives a running miraged with deterministic synthetic
// traffic and asserts serving SLOs.
//
// Usage:
//
//	mirageload [-target http://127.0.0.1:8080] [-seed load] [-requests 400]
//	           [-rate 200] [-concurrency 16] [-keys 24] [-zipf 1.1]
//	           [-p-burst 0.05] [-burst-len 6] [-p-sweep 0.1]
//	           [-slo-p50-ms 500] [-slo-p99-ms 5000]
//	           [-slo-max-error-rate 0.01] [-slo-min-hit-ratio 0.5]
//	           [-out BENCH_serving.json]
//
// The schedule (key popularity, arrival times, deadlines, route mix)
// derives entirely from -seed: a failing run replays exactly. Results land
// in a machine-readable report (-out) with one entry per SLO check; the
// process exits 1 when any check fails and 2 on operational errors, so CI
// can gate on it directly. See DESIGN.md §13.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// result is one completed request.
type result struct {
	status  int // 0 on transport error
	cache   string
	latency time.Duration
	err     error
}

// sloCheck is one verdict in the report.
type sloCheck struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Pass      bool    `json:"pass"`
}

// report is the BENCH_serving.json schema.
type report struct {
	Config      trafficConfig      `json:"config"`
	Target      string             `json:"target"`
	Concurrency int                `json:"concurrency"`
	ElapsedS    float64            `json:"elapsed_s"`
	AchievedRPS float64            `json:"achieved_rps"`
	Requests    int                `json:"requests"`
	OK          int                `json:"ok"`
	ByStatus    map[string]int     `json:"by_status"`
	ByCache     map[string]int     `json:"by_cache"`
	HitRatio    float64            `json:"hit_ratio"`
	ErrorRate   float64            `json:"error_rate"`
	LatencyMS   map[string]float64 `json:"latency_ms"`
	SLO         struct {
		Checks []sloCheck `json:"checks"`
		Pass   bool       `json:"pass"`
	} `json:"slo"`
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the miraged under test")
	seed := flag.String("seed", "load", "deterministic traffic seed; identical seeds replay identical schedules")
	requests := flag.Int("requests", 400, "total requests to send")
	rate := flag.Float64("rate", 200, "target arrival rate (requests/second, Poisson)")
	concurrency := flag.Int("concurrency", 16, "max in-flight client requests")
	keys := flag.Int("keys", 24, "distinct job-key universe size")
	zipf := flag.Float64("zipf", 1.1, "zipfian skew of key popularity")
	pBurst := flag.Float64("p-burst", 0.05, "per-arrival probability of a zero-gap burst")
	burstLen := flag.Int("burst-len", 6, "requests per burst")
	pSweep := flag.Float64("p-sweep", 0.1, "probability a request targets /v1/sweep")
	pTight := flag.Float64("p-tight", 0.1, "probability of a tight deadline budget")
	tightMS := flag.Int64("tight-timeout-ms", 2000, "the tight timeout_ms budget")
	timeoutMS := flag.Int64("timeout-ms", 30000, "the patient timeout_ms budget")
	targetInsts := flag.Int64("target-insts", 60_000, "per-simulation instruction budget (keeps jobs small)")
	sweepScale := flag.String("sweep-scale", "tiny", "scale for /v1/sweep requests")
	sloP50 := flag.Float64("slo-p50-ms", 500, "SLO: p50 latency ceiling (ms)")
	sloP99 := flag.Float64("slo-p99-ms", 5000, "SLO: p99 latency ceiling (ms)")
	sloErr := flag.Float64("slo-max-error-rate", 0.01, "SLO: ceiling on the non-200 fraction")
	sloHit := flag.Float64("slo-min-hit-ratio", 0.5, "SLO: floor on the (hit+disk)/ok cache ratio")
	out := flag.String("out", "BENCH_serving.json", "report path ('' = stdout only)")
	flag.Parse()

	cfg := trafficConfig{
		Seed:           *seed,
		Requests:       *requests,
		RatePerS:       *rate,
		Keys:           *keys,
		ZipfS:          *zipf,
		PBurst:         *pBurst,
		BurstLen:       *burstLen,
		PSweep:         *pSweep,
		PTightDeadline: *pTight,
		TightTimeoutMS: *tightMS,
		TimeoutMS:      *timeoutMS,
		TargetInsts:    *targetInsts,
		SweepScale:     *sweepScale,
	}
	schedule, err := plan(cfg)
	if err != nil {
		fatalf("planning traffic: %v", err)
	}
	if *concurrency < 1 {
		fatalf("-concurrency must be >= 1")
	}

	results, elapsed := drive(*target, schedule, *concurrency)

	rep := summarize(cfg, *target, *concurrency, results, elapsed)
	rep.SLO.Checks = []sloCheck{
		{Name: "p50_ms", Value: rep.LatencyMS["p50"], Threshold: *sloP50, Pass: rep.LatencyMS["p50"] <= *sloP50},
		{Name: "p99_ms", Value: rep.LatencyMS["p99"], Threshold: *sloP99, Pass: rep.LatencyMS["p99"] <= *sloP99},
		{Name: "error_rate", Value: rep.ErrorRate, Threshold: *sloErr, Pass: rep.ErrorRate <= *sloErr},
		{Name: "hit_ratio", Value: rep.HitRatio, Threshold: *sloHit, Pass: rep.HitRatio >= *sloHit},
	}
	rep.SLO.Pass = true
	for _, c := range rep.SLO.Checks {
		if !c.Pass {
			rep.SLO.Pass = false
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatalf("encoding report: %v", err)
	}
	os.Stdout.Write(buf.Bytes())
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
	}
	if !rep.SLO.Pass {
		for _, c := range rep.SLO.Checks {
			if !c.Pass {
				fmt.Fprintf(os.Stderr, "mirageload: SLO breach: %s = %.3f (threshold %.3f)\n",
					c.Name, c.Value, c.Threshold)
			}
		}
		os.Exit(1)
	}
}

// drive replays the schedule against target: a dispatcher paces arrivals on
// the planned clock while workers bound in-flight concurrency (arrivals
// past the bound queue, as they would at a saturated client).
func drive(target string, schedule []request, concurrency int) ([]result, time.Duration) {
	client := &http.Client{}
	jobs := make(chan int)
	results := make([]result, len(schedule))
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = send(client, target, schedule[i])
			}
		}()
	}
	start := time.Now()
	for i, rq := range schedule {
		if d := rq.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, time.Since(start)
}

// send issues one planned request and classifies the outcome.
func send(client *http.Client, target string, rq request) result {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", target+rq.Path, bytes.NewReader(rq.Body))
	if err != nil {
		return result{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	begin := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(begin)
	if err != nil {
		return result{latency: lat, err: err}
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable; the body bytes themselves are
	// the server's business (byte-identity is the e2e suite's job).
	var n int64
	buf := make([]byte, 32<<10)
	for {
		m, rerr := resp.Body.Read(buf)
		n += int64(m)
		if rerr != nil {
			break
		}
	}
	return result{status: resp.StatusCode, cache: resp.Header.Get("X-Cache"), latency: lat}
}

// summarize folds raw results into the report body (SLO checks attach in
// main, where the thresholds live).
func summarize(cfg trafficConfig, target string, concurrency int, results []result, elapsed time.Duration) *report {
	rep := &report{
		Config:      cfg,
		Target:      target,
		Concurrency: concurrency,
		ElapsedS:    elapsed.Seconds(),
		Requests:    len(results),
		ByStatus:    map[string]int{},
		ByCache:     map[string]int{},
		LatencyMS:   map[string]float64{},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(len(results)) / elapsed.Seconds()
	}
	lats := make([]float64, 0, len(results))
	cached := 0
	for _, r := range results {
		if r.err != nil {
			rep.ByStatus["transport_error"]++
			continue
		}
		rep.ByStatus[strconv.Itoa(r.status)]++
		if r.status != http.StatusOK {
			continue
		}
		rep.OK++
		lats = append(lats, float64(r.latency.Microseconds())/1000)
		c := r.cache
		if c == "" {
			c = "none"
		}
		rep.ByCache[c]++
		if c == "hit" || c == "disk" {
			cached++
		}
	}
	if len(results) > 0 {
		rep.ErrorRate = float64(len(results)-rep.OK) / float64(len(results))
	}
	if rep.OK > 0 {
		rep.HitRatio = float64(cached) / float64(rep.OK)
	}
	sort.Float64s(lats)
	mean := 0.0
	for _, l := range lats {
		mean += l
	}
	if len(lats) > 0 {
		mean /= float64(len(lats))
		rep.LatencyMS["mean"] = round3(mean)
		rep.LatencyMS["p50"] = round3(percentile(lats, 0.50))
		rep.LatencyMS["p90"] = round3(percentile(lats, 0.90))
		rep.LatencyMS["p99"] = round3(percentile(lats, 0.99))
		rep.LatencyMS["max"] = round3(lats[len(lats)-1])
	}
	return rep
}

// percentile reads the exact p-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mirageload: "+format+"\n", args...)
	os.Exit(2)
}
