package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func testConfig(seed string) trafficConfig {
	return trafficConfig{
		Seed:           seed,
		Requests:       600,
		RatePerS:       500,
		Keys:           16,
		ZipfS:          1.1,
		PBurst:         0.05,
		BurstLen:       6,
		PSweep:         0.1,
		PTightDeadline: 0.1,
		TightTimeoutMS: 2000,
		TimeoutMS:      30000,
		TargetInsts:    60_000,
		SweepScale:     "quick",
	}
}

// TestPlanDeterministic: the same seed yields the byte-identical schedule;
// a different seed diverges.
func TestPlanDeterministic(t *testing.T) {
	a, err := plan(testConfig("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan(testConfig("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Path != b[i].Path || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("request %d diverges across identical seeds:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c, err := plan(testConfig("beta"))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].At != c[i].At || !bytes.Equal(a[i].Body, c[i].Body) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds alpha and beta produced identical schedules")
	}
}

// TestPlanShape: arrivals are nondecreasing, bodies are valid JSON for
// their route, the key universe is bounded, and both routes appear.
func TestPlanShape(t *testing.T) {
	cfg := testConfig("shape")
	reqs, err := plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != cfg.Requests {
		t.Fatalf("planned %d requests, want %d", len(reqs), cfg.Requests)
	}
	keys := map[string]int{}
	routes := map[string]int{}
	tight := 0
	for i, rq := range reqs {
		if i > 0 && rq.At < reqs[i-1].At {
			t.Fatalf("arrival %d precedes %d (%v < %v)", i, i-1, rq.At, reqs[i-1].At)
		}
		var m map[string]any
		if err := json.Unmarshal(rq.Body, &m); err != nil {
			t.Fatalf("request %d body is not JSON: %v", i, err)
		}
		switch rq.Path {
		case "/v1/run":
			if _, ok := m["mix"].([]any); !ok {
				t.Fatalf("run body %d lacks a mix: %s", i, rq.Body)
			}
		case "/v1/sweep":
			if m["scale"] != cfg.SweepScale {
				t.Fatalf("sweep body %d scale = %v", i, m["scale"])
			}
		default:
			t.Fatalf("request %d has unknown path %q", i, rq.Path)
		}
		keys[rq.Key]++
		routes[rq.Path]++
		if rq.Tight {
			tight++
			if m["timeout_ms"] != float64(cfg.TightTimeoutMS) {
				t.Fatalf("tight request %d carries timeout %v", i, m["timeout_ms"])
			}
		}
	}
	if len(keys) > cfg.Keys+1 {
		t.Fatalf("schedule spans %d distinct keys, cap is %d run keys + 1 sweep", len(keys), cfg.Keys)
	}
	if routes["/v1/run"] == 0 || routes["/v1/sweep"] == 0 {
		t.Fatalf("route mix collapsed: %v", routes)
	}
	if tight == 0 {
		t.Fatal("no request drew the tight deadline budget")
	}
}

// TestPlanZipfSkew: popularity is actually skewed — the hottest run key
// must beat the uniform share by a wide margin, which is what lets the
// hit-ratio SLO hold.
func TestPlanZipfSkew(t *testing.T) {
	cfg := testConfig("skew")
	cfg.PSweep = 0
	reqs, err := plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, rq := range reqs {
		counts[rq.Key]++
	}
	top := 0
	for _, n := range counts {
		if n > top {
			top = n
		}
	}
	uniform := len(reqs) / cfg.Keys
	if top < 2*uniform {
		t.Fatalf("hottest key drew %d of %d requests; uniform share is %d — no zipf skew",
			top, len(reqs), uniform)
	}
}

// TestPlanBurstsShareArrival: bursts emit back-to-back requests with a
// zero inter-arrival gap.
func TestPlanBurstsShareArrival(t *testing.T) {
	cfg := testConfig("bursts")
	cfg.PBurst = 0.2
	reqs, err := plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At == reqs[i-1].At {
			same++
		}
	}
	if same == 0 {
		t.Fatal("no two requests share an arrival instant despite bursts")
	}
}

// TestSummarizeSLOMath: percentile, error-rate and hit-ratio arithmetic on
// a hand-built result set.
func TestSummarizeSLOMath(t *testing.T) {
	results := make([]result, 0, 10)
	for i := 0; i < 8; i++ {
		cache := "hit"
		if i < 2 {
			cache = "miss"
		} else if i == 2 {
			cache = "disk"
		}
		results = append(results, result{status: 200, cache: cache, latency: msDur(i + 1)})
	}
	results = append(results, result{status: 429, latency: msDur(1)})
	results = append(results, result{err: fmt.Errorf("conn refused")})

	rep := summarize(testConfig("math"), "http://x", 4, results, msDur(1000))
	if rep.OK != 8 {
		t.Fatalf("OK = %d, want 8", rep.OK)
	}
	if got := rep.ErrorRate; got != 0.2 {
		t.Fatalf("ErrorRate = %v, want 0.2", got)
	}
	// 5 hits + 1 disk of 8 OK.
	if got := rep.HitRatio; got != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", got)
	}
	if got := rep.LatencyMS["p50"]; got != 4 {
		t.Fatalf("p50 = %v, want 4", got)
	}
	if got := rep.LatencyMS["max"]; got != 8 {
		t.Fatalf("max = %v, want 8", got)
	}
	if rep.ByStatus["429"] != 1 || rep.ByStatus["transport_error"] != 1 {
		t.Fatalf("ByStatus = %v", rep.ByStatus)
	}
}

func msDur(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
