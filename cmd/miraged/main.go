// Command miraged serves the simulator as an HTTP/JSON API — as a single
// worker (the default), or as a fleet coordinator sharding work across
// worker miraged instances.
//
// Usage:
//
//	miraged [-addr :8080] [-max-inflight 2] [-queue 8] [-parallel 0]
//	        [-timeout 60s] [-max-timeout 10m] [-drain-timeout 30s]
//	        [-store-dir DIR] [-store-max-bytes N]
//	        [-cache-entries 4096] [-cache-bytes N]
//	        [-peers http://w1,http://w2,...] [-peer-auth SECRET]
//	        [-metrics-out m.json] [-pprof cpu.prof] [-pprof-http]
//	        [-log-format json|text] [-log-level info]
//
//	miraged -coordinator -workers http://w1:8081,http://w2:8082,... \
//	        [-addr :8080] [-probe-interval 1s] [-hedge-min 100ms]
//	        [-hedge-max 10s] [-log-format json|text] [-log-level info]
//
// In coordinator mode the process simulates nothing itself: it derives the
// canonical job key from each request (the same derivation the workers
// cache under), routes it to the key's owner on a consistent-hash ring over
// -workers, hedges to the next distinct replica when the owner exceeds the
// coordinator's own observed p99 latency (clamped to [-hedge-min,
// -hedge-max]), fails over on transport errors and 502/503, and polls every
// worker's /v1/healthz each -probe-interval, re-sharding the ring when a
// worker leaves or returns. Requests routed to a non-owner carry an
// X-Mirage-Owner header; the worker asks that owner's cache before
// simulating (cache peering), so each key is computed once fleet-wide.
// Workers only honor owner hints naming a URL on their -peers allowlist
// (client-supplied X-Mirage-* headers are stripped at the coordinator, and
// /internal/* is never proxied); with -peer-auth set, peer fetches carry
// the shared secret and /internal/peer/cache rejects requests without it.
// Responses carry X-Mirage-Shard (the worker that served) and
// X-Mirage-Hedged (the winning attempt number, when not the first).
//
// Endpoints (see DESIGN.md §10/§12 and the README "Operating miraged"
// section):
//
//	POST /v1/run              one cluster simulation
//	POST /v1/sweep            the Figure 7/8/9b arbitrator sweep
//	GET  /v1/figures/{id}     any registry experiment by ID or slug
//	GET  /v1/healthz          liveness, drain state, uptime
//	GET  /v1/metrics          telemetry as JSON, or Prometheus text
//	                          exposition with ?format=prometheus
//	GET  /debug/statusz       live serving state (in-flight requests,
//	                          cache hit ratio, build info)
//	GET  /debug/requests/trace recent request span timelines as a Chrome
//	                          trace (chrome://tracing, Perfetto)
//	GET  /debug/pprof/        net/http/pprof (with -pprof-http)
//
// Identical concurrent requests share one simulation (singleflight) and
// repeated ones are served from the response cache byte-identically. With
// -store-dir set, response bytes also persist to a checksummed append-only
// log so a restarted server answers repeat requests from disk (X-Cache:
// disk) without resimulating; corrupt or torn log records are dropped on
// open, never served. Every
// request is logged as one structured line (request ID, route, status,
// cache outcome, latency) on stderr. On SIGINT/SIGTERM the server stops
// accepting simulation work (503), drains in-flight requests up to
// -drain-timeout, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"log/slog"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 2, "max simulations executing concurrently")
	queue := flag.Int("queue", 8, "max simulations queued beyond -max-inflight before 429")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline when the request names none")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "ceiling on per-request timeout_ms")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	parallel := flag.Int("parallel", 0, "per-simulation worker budget (0 = GOMAXPROCS); responses are bit-identical at any setting")
	metricsOut := flag.String("metrics-out", "", "write telemetry counters as JSON to this file on exit")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the serve loop to this file")
	pprofHTTP := flag.Bool("pprof-http", false, "mount net/http/pprof under /debug/pprof/")
	logFormat := flag.String("log-format", "json", "access/lifecycle log format: json or text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	storeDir := flag.String("store-dir", "", "directory for the persistent result store (empty = no disk tier; results then live only in memory)")
	storeMaxBytes := flag.Int64("store-max-bytes", 256<<20, "size cap on the result store log; overflow evicts least-recently-used entries")
	cacheEntries := flag.Int("cache-entries", 4096, "max entries in the in-memory response cache (-1 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "max bytes of response bodies held in memory (-1 = unlimited)")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator over -workers instead of simulating")
	workers := flag.String("workers", "", "comma-separated worker base URLs for -coordinator mode")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator health-poll period per worker")
	hedgeMin := flag.Duration("hedge-min", 100*time.Millisecond, "coordinator lower clamp on the hedge latency budget")
	hedgeMax := flag.Duration("hedge-max", 10*time.Second, "coordinator upper clamp on the hedge latency budget")
	peering := flag.Bool("peering", true, "worker mode: answer /internal/peer/cache and consult the key owner's cache on hedged requests")
	peers := flag.String("peers", "", "worker mode: comma-separated base URLs of every fleet worker (the cache-peering allowlist; empty = never fetch from a peer)")
	peerAuth := flag.String("peer-auth", "", "shared fleet peering secret: required on /internal/peer/cache and sent on peer fetches (empty = unauthenticated)")
	flag.Parse()

	if *maxInFlight < 1 || *queue < 0 || *parallel < 0 {
		fatalf("-max-inflight must be >= 1, -queue and -parallel >= 0")
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	if *coordinator {
		runCoordinator(logger, *addr, *workers, *probeInterval, *hedgeMin, *hedgeMax, *drainTimeout, *metricsOut)
		return
	}
	if *workers != "" {
		fatalf("-workers requires -coordinator")
	}

	tel := telemetry.New()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			MaxBytes: *storeMaxBytes,
			Registry: tel.Reg(),
		})
		if err != nil {
			fatalf("opening result store: %v", err)
		}
		defer st.Close()
		logger.Info("result store open", "dir", *storeDir,
			"entries", st.Len(), "log_bytes", st.LogBytes(),
			"recovered", st.Stats().Recovered)
	}
	scfg := server.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *queue,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		Parallel:        *parallel,
		Telemetry:       tel,
		Logger:          logger,
		EnablePprof:     *pprofHTTP,
		Store:           st,
		CacheMaxEntries: *cacheEntries,
		CacheMaxBytes:   *cacheBytes,
	}
	scfg.PeerAuth = *peerAuth
	if *peering {
		// Consulted only when a coordinator routed the request here with an
		// X-Mirage-Owner hint. The hint is client-forgeable data, so fetches
		// are allowlisted to the -peers fleet membership: a standalone
		// worker (no -peers) never peers, whatever headers arrive.
		if peerURLs := splitURLs(*peers); len(peerURLs) > 0 {
			scfg.PeerFetch = fleet.NewPeerFetch(nil, peerURLs, *peerAuth)
		}
	}
	srv := server.New(scfg)

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "inflight", *maxInFlight,
		"queue", *queue, "parallel", *parallel)

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "drain_timeout", drainTimeout.String())

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the simulation layer first so queued flights observe the 503
	// path, then close listeners and idle connections.
	drainErr := srv.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown failed", "error", err)
	}
	if *metricsOut != "" {
		if err := tel.WriteMetricsFile(*metricsOut); err != nil {
			logger.Error("metrics export failed", "path", *metricsOut, "error", err)
		}
	}
	if drainErr != nil {
		logger.Error("drain incomplete", "error", drainErr)
		os.Exit(1)
	}
	logger.Info("exited cleanly")
}

// runCoordinator is the -coordinator main loop: build the fleet front end
// over the worker list, start the health prober, serve until signalled,
// then stop probing and drain the HTTP layer.
func runCoordinator(logger *slog.Logger, addr, workers string, probeInterval, hedgeMin, hedgeMax, drainTimeout time.Duration, metricsOut string) {
	urls := splitURLs(workers)
	if len(urls) == 0 {
		fatalf("-coordinator requires -workers with at least one URL")
	}
	tel := telemetry.New()
	coord, err := fleet.New(fleet.Config{
		Workers:       urls,
		ProbeInterval: probeInterval,
		HedgeMin:      hedgeMin,
		HedgeMax:      hedgeMax,
		Telemetry:     tel,
		Logger:        logger,
	})
	if err != nil {
		fatalf("building coordinator: %v", err)
	}
	// Converge worker health before accepting traffic, then keep probing.
	coord.ProbeOnce(context.Background())
	coord.Start()
	defer coord.Close()

	hs := &http.Server{Addr: addr, Handler: coord}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("coordinating", "addr", addr, "workers", urls,
		"probe_interval", probeInterval.String())

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "drain_timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	coord.Close()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown failed", "error", err)
	}
	if metricsOut != "" {
		if err := tel.WriteMetricsFile(metricsOut); err != nil {
			logger.Error("metrics export failed", "path", metricsOut, "error", err)
		}
	}
	logger.Info("exited cleanly")
}

// splitURLs parses a comma-separated base-URL list (-workers, -peers),
// trimming whitespace and trailing slashes.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}

// newLogger builds the process logger on stderr. JSON is the default so the
// access log is machine-parseable (the CI serve-smoke job asserts every
// stderr line parses); text is for humans at a terminal.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("invalid -log-format %q (want json or text)", format)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "miraged: "+format+"\n", args...)
	os.Exit(1)
}
