// Command miraged serves the simulator as an HTTP/JSON API.
//
// Usage:
//
//	miraged [-addr :8080] [-max-inflight 2] [-queue 8] [-parallel 0]
//	        [-timeout 60s] [-max-timeout 10m] [-drain-timeout 30s]
//	        [-metrics-out m.json] [-pprof cpu.prof]
//
// Endpoints (see DESIGN.md §10 and the README "Serving" section):
//
//	POST /v1/run          one cluster simulation
//	POST /v1/sweep        the Figure 7/8/9b arbitrator sweep
//	GET  /v1/figures/{id} any registry experiment by ID or slug
//	GET  /v1/healthz      liveness and drain state
//	GET  /v1/metrics      telemetry counters as JSON
//
// Identical concurrent requests share one simulation (singleflight) and
// repeated ones are served from the response cache byte-identically. On
// SIGINT/SIGTERM the server stops accepting simulation work (503), drains
// in-flight requests up to -drain-timeout, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 2, "max simulations executing concurrently")
	queue := flag.Int("queue", 8, "max simulations queued beyond -max-inflight before 429")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline when the request names none")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "ceiling on per-request timeout_ms")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	parallel := flag.Int("parallel", 0, "per-simulation worker budget (0 = GOMAXPROCS); responses are bit-identical at any setting")
	metricsOut := flag.String("metrics-out", "", "write telemetry counters as JSON to this file on exit")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the serve loop to this file")
	flag.Parse()

	if *maxInFlight < 1 || *queue < 0 || *parallel < 0 {
		fatalf("-max-inflight must be >= 1, -queue and -parallel >= 0")
	}

	tel := telemetry.New()
	srv := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Parallel:       *parallel,
		Telemetry:      tel,
	})

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "miraged: serving on %s (inflight=%d queue=%d parallel=%d)\n",
		*addr, *maxInFlight, *queue, *parallel)

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "miraged: draining (up to %s)\n", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the simulation layer first so queued flights observe the 503
	// path, then close listeners and idle connections.
	drainErr := srv.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "miraged: http shutdown: %v\n", err)
	}
	if *metricsOut != "" {
		if err := tel.WriteMetricsFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "miraged: metrics: %v\n", err)
		}
	}
	if drainErr != nil {
		fatalf("drain: %v", drainErr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "miraged: "+format+"\n", args...)
	os.Exit(1)
}
