// Package stats provides the metric helpers used across the evaluation:
// means, speedups, system throughput (STP) and simple table formatting for
// the experiment harnesses.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty or non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// STP is the system-throughput metric of Section 3.2.2: the mean of
// per-application speedups relative to each application running alone on
// the reference core.
func STP(ipc, ipcRef []float64) float64 {
	if len(ipc) != len(ipcRef) || len(ipc) == 0 {
		return 0
	}
	speedups := make([]float64, len(ipc))
	for i := range ipc {
		if ipcRef[i] > 0 {
			speedups[i] = ipc[i] / ipcRef[i]
		}
	}
	return Mean(speedups)
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Table is a simple fixed-width text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	ncols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 2 decimals; F3 with 3.
func F(x float64) string  { return fmt.Sprintf("%.2f", x) }
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }
