package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean %v, want 4", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive input should give 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); got != 1 {
		t.Errorf("harmonic %v", got)
	}
	if got := HarmonicMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("harmonic %v, want 3", got)
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{0}) != 0 {
		t.Error("degenerate harmonic mean")
	}
}

func TestMeanOrderingProperty(t *testing.T) {
	// harmonic <= geometric <= arithmetic for positive inputs.
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= a+eps
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSTP(t *testing.T) {
	ipc := []float64{1, 2}
	ref := []float64{2, 2}
	if got := STP(ipc, ref); got != 0.75 {
		t.Errorf("STP %v, want 0.75", got)
	}
	if STP(ipc, ref[:1]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
	if STP(nil, nil) != 0 {
		t.Error("empty STP")
	}
	// Zero reference IPC contributes zero speedup rather than Inf.
	if got := STP([]float64{1, 1}, []float64{0, 1}); got != 0.5 {
		t.Errorf("STP with zero ref %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 || Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.84) != "84%" {
		t.Errorf("Pct: %q", Pct(0.84))
	}
}

func TestFormats(t *testing.T) {
	if F(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formats")
	}
}

func TestMeanEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]float64) float64
		in   []float64
		want float64
	}{
		{"geomean nil", GeoMean, nil, 0},
		{"geomean empty", GeoMean, []float64{}, 0},
		{"geomean zero element", GeoMean, []float64{4, 0, 9}, 0},
		{"geomean negative element", GeoMean, []float64{4, -1, 9}, 0},
		{"geomean singleton", GeoMean, []float64{7}, 7},
		{"harmonic nil", HarmonicMean, nil, 0},
		{"harmonic empty", HarmonicMean, []float64{}, 0},
		{"harmonic zero element", HarmonicMean, []float64{1, 0}, 0},
		{"harmonic negative element", HarmonicMean, []float64{1, -2}, 0},
		{"harmonic singleton", HarmonicMean, []float64{5}, 5},
		{"mean nil", Mean, nil, 0},
		{"mean negatives ok", Mean, []float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.fn(tc.in); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSTPEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ipc  []float64
		ref  []float64
		want float64
	}{
		{"both nil", nil, nil, 0},
		{"ipc shorter", []float64{1}, []float64{1, 2}, 0},
		{"ref shorter", []float64{1, 2}, []float64{1}, 0},
		{"all zero refs", []float64{1, 2}, []float64{0, 0}, 0},
		{"identity", []float64{3, 3}, []float64{3, 3}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := STP(tc.ipc, tc.ref); got != tc.want {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTableRaggedRows(t *testing.T) {
	cases := []struct {
		name    string
		headers []string
		rows    [][]string
	}{
		{"row wider than headers", []string{"a"}, [][]string{{"1", "extra", "more"}}},
		{"row narrower than headers", []string{"a", "b", "c"}, [][]string{{"1"}}},
		{"no headers at all", nil, [][]string{{"x", "y"}}},
		{"empty table", []string{"a", "b"}, nil},
		{"wide cell beyond header count", []string{"a"}, [][]string{{"1", "a-very-wide-cell"}, {"2", "s"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := Table{Headers: tc.headers, Rows: tc.rows}
			out := tbl.String() // must not panic on ragged shapes
			if len(tc.rows) > 0 && !strings.Contains(out, tc.rows[0][0]) {
				t.Errorf("first cell missing from output:\n%s", out)
			}
		})
	}
	// Width sizing uses the widest row, so cells beyond the header count
	// still get their own aligned column instead of inheriting the last
	// header's width.
	tbl := Table{Headers: []string{"h"}}
	tbl.AddRow("1", "wide-cell")
	tbl.AddRow("2", "x")
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	row0, row1 := lines[len(lines)-2], lines[len(lines)-1]
	if strings.Index(row0, "wide-cell") != strings.Index(row1, "x") {
		t.Errorf("second column misaligned:\n%s\n%s", row0, row1)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "demo", Headers: []string{"a", "bench"}}
	tbl.AddRow("1", "x")
	tbl.AddRow("22", "yy")
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: the header and first row start "bench" at the same
	// offset.
	if idx := strings.Index(lines[1], "bench"); idx < 0 || !strings.Contains(lines[3][idx:], "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
