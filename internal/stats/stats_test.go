package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean %v, want 4", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive input should give 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); got != 1 {
		t.Errorf("harmonic %v", got)
	}
	if got := HarmonicMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("harmonic %v, want 3", got)
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{0}) != 0 {
		t.Error("degenerate harmonic mean")
	}
}

func TestMeanOrderingProperty(t *testing.T) {
	// harmonic <= geometric <= arithmetic for positive inputs.
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= a+eps
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSTP(t *testing.T) {
	ipc := []float64{1, 2}
	ref := []float64{2, 2}
	if got := STP(ipc, ref); got != 0.75 {
		t.Errorf("STP %v, want 0.75", got)
	}
	if STP(ipc, ref[:1]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
	if STP(nil, nil) != 0 {
		t.Error("empty STP")
	}
	// Zero reference IPC contributes zero speedup rather than Inf.
	if got := STP([]float64{1, 1}, []float64{0, 1}); got != 0.5 {
		t.Errorf("STP with zero ref %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 || Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.84) != "84%" {
		t.Errorf("Pct: %q", Pct(0.84))
	}
}

func TestFormats(t *testing.T) {
	if F(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formats")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "demo", Headers: []string{"a", "bench"}}
	tbl.AddRow("1", "x")
	tbl.AddRow("22", "yy")
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: the header and first row start "bench" at the same
	// offset.
	if idx := strings.Index(lines[1], "bench"); idx < 0 || !strings.Contains(lines[3][idx:], "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
