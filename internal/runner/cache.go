package runner

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrTransient marks a computation failure as load-dependent rather than
// input-dependent. A flight whose error wraps ErrTransient is evicted on
// completion instead of cached, so later callers retry: a sweep rejected by
// the server's admission control (saturation, draining) must not poison the
// cache for the identical request arriving after the load spike.
var ErrTransient = errors.New("transient failure")

// Backing is an optional second storage tier behind a Cache: a miss
// consults Load before computing (a warm disk store surviving restarts),
// and every successfully settled flight is offered to Store. Both methods
// must be safe for concurrent use; Load runs on the first caller's
// goroutine and Store on the flight goroutine, so neither blocks other
// keys. The production implementation adapts internal/store.
type Backing[K comparable, V any] interface {
	Load(key K) (V, bool)
	Store(key K, v V)
}

// Cache is a concurrency-safe keyed memoization with singleflight semantics:
// the first caller for a key starts a "flight" running fn; callers arriving
// while the flight is in progress block and share its result instead of
// recomputing it. It replaces the experiment layer's unsynchronized
// package-global maps, which were latent data races once jobs run in
// parallel, and is the deduplication layer behind the miraged server.
//
// Flights are context-aware (DoContext): waiters can abandon a flight when
// their request context ends, and a flight whose every waiter has left is
// cancelled and evicted so it does not burn simulation time for nobody.
// Completed flights are cached — value or error alike, because
// deterministic workloads fail deterministically — except when the error is
// the flight's own cancellation or wraps ErrTransient.
//
// Settled entries are bounded: MaxEntries and MaxBytes cap the cache and
// evict least-recently-used entries (a hit refreshes recency), so a
// long-lived server under a zipfian tail of one-off keys cannot grow
// without limit. In-progress flights are never evicted — eviction reclaims
// memory, not work in flight.
//
// The zero value is ready to use (unbounded, no backing tier). The
// configuration fields must be set before the first call and not changed
// afterwards.
type Cache[K comparable, V any] struct {
	// AbandonGrace bounds how long the last abandoning waiter lingers for
	// the flight to settle before walking away. A small grace lets a
	// deadline-exceeded request still harvest the flight's partial-result
	// error (e.g. *Canceled with completed/total counts) instead of
	// returning a bare context error. Zero means leave immediately.
	AbandonGrace time.Duration

	// MaxEntries bounds the number of settled entries (0 = unbounded).
	MaxEntries int
	// MaxBytes bounds the summed Size of settled entries (0 = unbounded).
	// Entries that settled with an error weigh zero.
	MaxBytes int64
	// Size measures a value for MaxBytes accounting; nil weighs every
	// value as zero (MaxEntries still applies).
	Size func(V) int64
	// Backing is the optional second tier consulted on a miss before the
	// flight runs (a hit settles instantly with OutcomeDisk) and offered
	// every successful result. nil disables the tier.
	Backing Backing[K, V]

	mu               sync.Mutex
	m                map[K]*flight[K, V]
	lruHead, lruTail *flight[K, V] // settled entries, most recent first
	settled          int
	bytes            int64
}

// Outcome classifies how a DoContext call obtained its result — the cache
// outcome the server's access log and singleflight counters are built on.
type Outcome uint8

const (
	// OutcomeLeader: this caller started the flight and ran fn (a cache
	// miss — it paid for the computation).
	OutcomeLeader Outcome = iota
	// OutcomeWaiter: this caller joined a flight started by an earlier,
	// still-in-progress caller and shared its result.
	OutcomeWaiter
	// OutcomeHit: this caller was served from an already-settled entry
	// without blocking.
	OutcomeHit
	// OutcomeDisk: this caller's miss was answered by the Backing tier —
	// no computation ran, the bytes came off disk (a warm start).
	OutcomeDisk
)

// Shared reports whether the caller reused work started by another caller
// or recovered from the backing tier (everything but the flight leader).
func (o Outcome) Shared() bool { return o != OutcomeLeader }

// String implements fmt.Stringer ("leader", "waiter", "hit", "disk").
func (o Outcome) String() string {
	switch o {
	case OutcomeLeader:
		return "leader"
	case OutcomeWaiter:
		return "waiter"
	case OutcomeHit:
		return "hit"
	case OutcomeDisk:
		return "disk"
	}
	return "outcome?"
}

// flight is one in-progress or settled computation.
type flight[K comparable, V any] struct {
	key     K
	done    chan struct{} // closed when v/err are settled
	v       V
	err     error
	settled bool // guarded by Cache.mu (for abandon/settle races)

	waiters int                // guarded by Cache.mu
	cancel  context.CancelFunc // cancels the flight's own context

	// LRU links through settled entries (guarded by Cache.mu); inLRU marks
	// membership, size is the entry's MaxBytes weight.
	lruPrev, lruNext *flight[K, V]
	inLRU            bool
	size             int64
}

// Do returns the cached result for key, computing it with fn on first use.
// Concurrent calls for the same key run fn exactly once; errors are cached
// like values (deterministic workloads fail deterministically, so retrying
// would recompute the same failure). Do never abandons the flight — it
// blocks until fn settles.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	v, _, err := c.DoContext(context.Background(), key, func(context.Context) (V, error) { return fn() })
	return v, err
}

// DoContext is the context-aware Do. The first caller for key starts fn on
// a new goroutine under a flight context that inherits ctx's values (e.g.
// the WithTelemetry registry) but NOT its cancellation: later callers share
// the flight, so one request's deadline must not kill the computation for
// everyone. fn must honour fctx — it is cancelled only when every waiter
// has abandoned the flight.
//
// out reports how the result was obtained: OutcomeLeader for the caller
// that ran fn (a miss), OutcomeWaiter for callers that joined its
// in-progress flight, OutcomeHit for callers served from a settled entry.
// The server's singleflight hit counter and access-log cache field are
// built on it (out.Shared() is the old boolean).
//
// When ctx ends before the flight settles, DoContext returns ctx's error.
// If this caller was the flight's last waiter the flight is cancelled; the
// caller then waits up to AbandonGrace for fn to return so the flight's
// partial-result error (wrapped alongside the context error) survives to
// the caller. Flights that settle with an error caused by their own
// cancellation, or wrapping ErrTransient, are evicted rather than cached.
func (c *Cache[K, V]) DoContext(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, out Outcome, err error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flight[K, V])
	}
	f, ok := c.m[key]
	if ok {
		if f.settled {
			c.touchLocked(f)
			c.mu.Unlock()
			return f.v, OutcomeHit, f.err
		}
		f.waiters++
		c.mu.Unlock()
		return c.wait(ctx, key, f, OutcomeWaiter)
	}

	// Leader: start the flight. The flight context drops ctx's cancellation
	// (context.WithoutCancel) so a shared computation outlives any single
	// request, but keeps its values so telemetry attribution flows through.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f = &flight[K, V]{key: key, done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.m[key] = f
	c.mu.Unlock()

	// Consult the backing tier before paying for the computation. The
	// flight is already in the map, so concurrent callers for the key park
	// on it instead of racing their own disk reads; a backing hit settles
	// the flight with the stored value and nobody runs fn.
	if c.Backing != nil {
		if bv, ok := c.Backing.Load(key); ok {
			c.mu.Lock()
			f.v = bv
			f.settled = true
			f.waiters--
			if c.m[key] == f {
				c.insertSettledLocked(f)
			}
			c.mu.Unlock()
			cancel()
			close(f.done)
			return bv, OutcomeDisk, nil
		}
	}

	go func() {
		v, err := fn(fctx)
		c.mu.Lock()
		f.v, f.err = v, err
		f.settled = true
		// Evict rather than cache when the failure is not a property of the
		// inputs: the flight was cancelled out from under fn, or fn flagged
		// the error as transient (admission-control rejections).
		if err != nil && (fctx.Err() != nil || errors.Is(err, ErrTransient)) {
			if c.m[key] == f {
				delete(c.m, key)
			}
		} else if c.m[key] == f {
			c.insertSettledLocked(f)
		}
		// The write-through mirrors the memory tier's evict-on-cancel
		// semantics: a flight whose context was cancelled (every waiter
		// abandoned it) must not reach the disk tier even when fn ignored
		// the cancellation and returned a nil error. Capture the verdict
		// before cancel() below makes fctx.Err() non-nil for every flight.
		persist := err == nil && fctx.Err() == nil
		c.mu.Unlock()
		cancel() // release the context's timer/goroutine resources
		close(f.done)
		if persist && c.Backing != nil {
			// Off the waiters' wakeup path: done is already closed.
			c.Backing.Store(key, v)
		}
	}()
	return c.wait(ctx, key, f, OutcomeLeader)
}

// --- settled-entry LRU (guarded by c.mu) ---

func (c *Cache[K, V]) lruUnlink(f *flight[K, V]) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else if c.lruHead == f {
		c.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else if c.lruTail == f {
		c.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
}

func (c *Cache[K, V]) lruPushFront(f *flight[K, V]) {
	f.lruPrev, f.lruNext = nil, c.lruHead
	if c.lruHead != nil {
		c.lruHead.lruPrev = f
	}
	c.lruHead = f
	if c.lruTail == nil {
		c.lruTail = f
	}
}

// touchLocked refreshes a settled entry's recency on a hit.
func (c *Cache[K, V]) touchLocked(f *flight[K, V]) {
	if f.inLRU {
		c.lruUnlink(f)
		c.lruPushFront(f)
	}
}

// insertSettledLocked admits a freshly settled flight to the bounded cache
// and evicts past the caps, oldest first. Error entries weigh zero bytes
// but still count against MaxEntries.
func (c *Cache[K, V]) insertSettledLocked(f *flight[K, V]) {
	if f.err == nil && c.Size != nil {
		f.size = c.Size(f.v)
	}
	f.inLRU = true
	c.lruPushFront(f)
	c.settled++
	c.bytes += f.size
	for c.lruTail != nil &&
		((c.MaxEntries > 0 && c.settled > c.MaxEntries) ||
			(c.MaxBytes > 0 && c.bytes > c.MaxBytes)) {
		evict := c.lruTail
		c.lruUnlink(evict)
		evict.inLRU = false
		c.settled--
		c.bytes -= evict.size
		if c.m[evict.key] == evict {
			delete(c.m, evict.key)
		}
	}
}

// wait blocks until the flight settles or ctx ends, maintaining the waiter
// count and triggering last-waiter-out cancellation.
func (c *Cache[K, V]) wait(ctx context.Context, key K, f *flight[K, V], out Outcome) (V, Outcome, error) {
	select {
	case <-f.done:
		c.mu.Lock()
		f.waiters--
		c.mu.Unlock()
		return f.v, out, f.err
	case <-ctx.Done():
	}

	// Abandon: detach from the flight. If we are the last waiter, the
	// computation has nobody left to deliver to — cancel it and remove the
	// flight from the map (under the same lock as the waiter decrement, so
	// a late joiner either sees the flight before removal and bumps waiters
	// first, or misses it entirely and starts fresh).
	c.mu.Lock()
	f.waiters--
	if f.settled {
		// Settled in the race between ctx.Done and acquiring the lock:
		// the result is ready, deliver it.
		c.mu.Unlock()
		return f.v, out, f.err
	}
	last := f.waiters == 0
	if last && c.m[key] == f {
		delete(c.m, key)
	}
	c.mu.Unlock()

	if last {
		f.cancel()
		if c.AbandonGrace > 0 {
			// Give fn a moment to observe the cancellation and return, so
			// its partial-result error reaches this caller.
			t := time.NewTimer(c.AbandonGrace)
			defer t.Stop()
			select {
			case <-f.done:
				if f.err == nil {
					return f.v, out, nil
				}
				// Join unless fn returned the literal context error — a
				// richer error (e.g. *Canceled) must survive even though it
				// wraps the same sentinel ctx.Err() reports.
				if f.err != ctx.Err() {
					var zero V
					return zero, out, errors.Join(ctx.Err(), f.err)
				}
			case <-t.C:
			}
		}
	}
	var zero V
	return zero, out, ctx.Err()
}

// Peek returns the settled success value for key without starting, joining
// or waiting on any flight: in-progress flights and error entries report a
// miss, and the backing tier is never consulted. A hit refreshes the
// entry's LRU recency. It is the lookup behind the fleet peering endpoint,
// which must answer "do you already have the bytes" without doing work.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[key]
	if !ok || !f.settled || f.err != nil {
		var zero V
		return zero, false
	}
	c.touchLocked(f)
	return f.v, true
}

// Len returns the number of cached keys (settled entries plus in-flight
// computations that still have waiters).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes returns the summed Size of settled entries (0 without a Size func).
func (c *Cache[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Reset drops every cached entry. In-flight computations complete against
// the old entries; callers after Reset recompute fresh. Used by the
// determinism tests and by long-lived processes that want to bound memory.
// The backing tier is untouched — Reset empties memory, not disk.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.lruHead, c.lruTail = nil, nil
	c.settled, c.bytes = 0, 0
	c.mu.Unlock()
}
