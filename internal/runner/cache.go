package runner

import "sync"

// Cache is a concurrency-safe keyed memoization with singleflight-style
// per-key once semantics: the first caller of Do for a key runs fn; callers
// arriving while fn runs block and share the result (value or error) instead
// of recomputing it. It replaces the experiment layer's unsynchronized
// package-global maps, which were latent data races once jobs run in
// parallel.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// Do returns the cached result for key, computing it with fn on first use.
// Concurrent calls for the same key run fn exactly once; errors are cached
// like values (deterministic workloads fail deterministically, so retrying
// would recompute the same failure).
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v, e.err = fn() })
	return e.v, e.err
}

// Len returns the number of cached keys (entries whose computation has at
// least started).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every cached entry. In-flight computations complete against
// the old entries; callers after Reset recompute fresh. Used by the
// determinism tests and by long-lived processes that want to bound memory.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}
