// Tests for the Cache capacity bounds (LRU over settled entries) and the
// Backing disk tier: the regression suite for the "singleflight cache grows
// without limit under a zipfian tail" bug and for warm starts.

package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheMaxEntriesLRU(t *testing.T) {
	c := &Cache[string, int]{MaxEntries: 2}
	compute := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}
	mustDo := func(key string, v int) {
		t.Helper()
		got, err := c.Do(key, compute(v))
		if err != nil || got != v {
			t.Fatalf("Do(%s) = %d, %v", key, got, err)
		}
	}
	mustDo("a", 1)
	mustDo("b", 2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Touch a so b is the LRU entry, then overflow with c.
	if v, _, err := c.DoContext(context.Background(), "a", nil); err != nil || v != 1 {
		t.Fatalf("hit a = %d, %v", v, err)
	}
	mustDo("c", 3)
	if c.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", c.Len())
	}
	// The LRU entry b was evicted; the refreshed a survived.
	v, out, err := c.DoContext(context.Background(), "a", func(context.Context) (int, error) {
		return 0, errors.New("a was evicted: it was the most recently used entry")
	})
	if err != nil || v != 1 || out != OutcomeHit {
		t.Fatalf("a = %d, %v, %v; want cached 1", v, out, err)
	}
	ran := false
	got, err := c.Do("b", func() (int, error) { ran = true; return 20, nil })
	if err != nil || got != 20 || !ran {
		t.Fatalf("b after eviction = %d, ran=%v, err=%v (want recompute)", got, ran, err)
	}
}

func TestCacheMaxBytes(t *testing.T) {
	c := &Cache[string, []byte]{
		MaxBytes: 100,
		Size:     func(b []byte) int64 { return int64(len(b)) },
	}
	put := func(key string, n int) {
		t.Helper()
		if _, err := c.Do(key, func() ([]byte, error) { return make([]byte, n), nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 40)
	put("b", 40)
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes = %d, want 80", got)
	}
	put("c", 40) // 120 > 100: evicts a (oldest)
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes after eviction = %d, want 80", got)
	}
	ran := false
	if _, err := c.Do("a", func() ([]byte, error) { ran = true; return nil, nil }); err != nil || !ran {
		t.Fatalf("a should have been evicted (ran=%v, err=%v)", ran, err)
	}
}

// TestCacheBoundedUnderZipfianTail is the original bug as a scenario: a
// stream of mostly one-off keys must not grow the cache past its cap.
func TestCacheBoundedUnderZipfianTail(t *testing.T) {
	c := &Cache[string, int]{MaxEntries: 64}
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("one-off-%d", i)
		if i%10 == 0 {
			key = fmt.Sprintf("hot-%d", i%30)
		}
		if _, err := c.Do(key, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		if n := c.Len(); n > 64 {
			t.Fatalf("after %d requests the cache holds %d entries (cap 64)", i+1, n)
		}
	}
}

// TestCacheErrorEntriesCountAgainstCap: cached errors occupy entries (zero
// bytes) and are evictable like values.
func TestCacheErrorEntriesCountAgainstCap(t *testing.T) {
	c := &Cache[string, int]{MaxEntries: 1}
	wantErr := errors.New("deterministic failure")
	if _, err := c.Do("bad", func() (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Do("good", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	// "bad" was evicted by "good": it must recompute.
	ran := false
	if _, err := c.Do("bad", func() (int, error) { ran = true; return 0, wantErr }); !errors.Is(err, wantErr) || !ran {
		t.Fatalf("evicted error entry not recomputed (ran=%v, err=%v)", ran, err)
	}
}

// mapBacking is an in-memory Backing for tests.
type mapBacking struct {
	mu     sync.Mutex
	m      map[string][]byte
	loads  int
	stores int
}

func newMapBacking() *mapBacking { return &mapBacking{m: make(map[string][]byte)} }

func (b *mapBacking) Load(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBacking) Store(key string, v []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = append([]byte(nil), v...)
}

func TestCacheBackingDiskHit(t *testing.T) {
	bk := newMapBacking()
	bk.m["warm"] = []byte("stored")
	c := &Cache[string, []byte]{Backing: bk}
	v, out, err := c.DoContext(context.Background(), "warm", func(context.Context) ([]byte, error) {
		return nil, errors.New("fn ran despite a backing hit")
	})
	if err != nil || out != OutcomeDisk || string(v) != "stored" {
		t.Fatalf("= %q, %v, %v; want stored/disk/nil", v, out, err)
	}
	// The disk hit is now a settled memory entry: the next call is a plain
	// hit and does not touch the backing again.
	loadsBefore := bk.loads
	v, out, err = c.DoContext(context.Background(), "warm", nil)
	if err != nil || out != OutcomeHit || string(v) != "stored" {
		t.Fatalf("second = %q, %v, %v; want stored/hit/nil", v, out, err)
	}
	if bk.loads != loadsBefore {
		t.Fatalf("memory hit consulted the backing (%d loads)", bk.loads-loadsBefore)
	}
}

func TestCacheBackingStoreOnSuccess(t *testing.T) {
	bk := newMapBacking()
	c := &Cache[string, []byte]{Backing: bk}
	if _, err := c.Do("k", func() ([]byte, error) { return []byte("computed"), nil }); err != nil {
		t.Fatal(err)
	}
	// Store runs on the flight goroutine after the flight settles, so Do
	// returning does not guarantee the write landed yet; poll briefly.
	var got []byte
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		bk.mu.Lock()
		got = bk.m["k"]
		bk.mu.Unlock()
		if got != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if string(got) != "computed" {
		t.Fatalf("backing holds %q, want computed result", got)
	}
}

func TestCacheBackingNotPoisonedByFailures(t *testing.T) {
	bk := newMapBacking()
	c := &Cache[string, []byte]{Backing: bk}
	wantErr := errors.New("boom")
	if _, err := c.Do("fail", func() ([]byte, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatal(err)
	}
	if _, err := c.Do("transient", func() ([]byte, error) {
		return nil, fmt.Errorf("rejected: %w", ErrTransient)
	}); !errors.Is(err, ErrTransient) {
		t.Fatal(err)
	}
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if len(bk.m) != 0 || bk.stores != 0 {
		t.Fatalf("failures reached the backing tier: %v (stores=%d)", bk.m, bk.stores)
	}
}

// TestCacheBackingConcurrentMiss: concurrent first callers for a warm key
// share one flight — exactly one backing load, everyone gets the bytes.
func TestCacheBackingConcurrentMiss(t *testing.T) {
	bk := newMapBacking()
	bk.m["warm"] = []byte("stored")
	c := &Cache[string, []byte]{Backing: bk}
	const n = 16
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.DoContext(context.Background(), "warm", func(context.Context) ([]byte, error) {
				return nil, errors.New("fn must not run for a warm key")
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], outs[i] = v, out
		}()
	}
	wg.Wait()
	disk := 0
	for i := 0; i < n; i++ {
		if string(vals[i]) != "stored" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if outs[i] == OutcomeDisk {
			disk++
		}
	}
	if disk == 0 {
		t.Fatal("no caller observed OutcomeDisk")
	}
	if bk.loads > n {
		t.Fatalf("loads = %d for %d callers", bk.loads, n)
	}
}

// TestCacheBackingSkipsCancelledFlights is the evict-on-cancel parity
// regression: when every waiter abandons a flight, the memory tier evicts
// it even if fn ignores the cancellation and returns a nil error — and the
// disk tier must match, so Backing.Store must not run for it.
func TestCacheBackingSkipsCancelledFlights(t *testing.T) {
	bk := newMapBacking()
	c := &Cache[string, []byte]{Backing: bk, AbandonGrace: 5 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// fn blocks until its flight context is cancelled by the
		// last-waiter-out path, then "succeeds" anyway.
		c.DoContext(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(entered)
			<-fctx.Done()
			return []byte("late success"), nil
		})
	}()
	<-entered
	cancel() // the only waiter walks away; the flight is cancelled + evicted
	<-done

	// The memory tier treated the flight as cancelled: a fresh caller leads
	// a new flight rather than hitting a cached entry.
	ran := false
	v, out, err := c.DoContext(context.Background(), "k", func(context.Context) ([]byte, error) {
		ran = true
		return []byte("fresh"), nil
	})
	if err != nil || !ran || out != OutcomeLeader || string(v) != "fresh" {
		t.Fatalf("retry = %q, %v, %v (ran=%v); want a fresh leader", v, out, err, ran)
	}

	// The disk tier must have matched: no write-through of the cancelled
	// flight's value. The retry's own write lands eventually ("fresh"); give
	// the flight goroutines time so a reintroduced bug cannot hide behind
	// scheduling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bk.mu.Lock()
		got, ok := bk.m["k"]
		bk.mu.Unlock()
		if ok {
			if string(got) != "fresh" {
				t.Fatalf("backing holds %q — the cancelled flight wrote through", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry's write-through never landed")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let any buggy late Store surface
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if bk.stores != 1 {
		t.Fatalf("backing saw %d stores, want 1 (retry only)", bk.stores)
	}
	if string(bk.m["k"]) != "fresh" {
		t.Fatalf("backing holds %q, want the retry's bytes", bk.m["k"])
	}
}

// TestCachePeek: Peek serves settled successes only — no flights, no
// errors, no backing-tier consultation.
func TestCachePeek(t *testing.T) {
	bk := newMapBacking()
	bk.m["disk-only"] = []byte("on disk")
	c := &Cache[string, []byte]{Backing: bk}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek fabricated a value for an absent key")
	}
	loads := bk.loads
	if _, ok := c.Peek("disk-only"); ok || bk.loads != loads {
		t.Fatalf("Peek consulted the backing tier (ok=%v, loads=%d)", ok, bk.loads-loads)
	}
	if _, err := c.Do("good", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Peek("good"); !ok || string(v) != "v" {
		t.Fatalf("Peek(good) = %q, %v", v, ok)
	}
	wantErr := errors.New("deterministic failure")
	if _, err := c.Do("bad", func() ([]byte, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatal(err)
	}
	if _, ok := c.Peek("bad"); ok {
		t.Fatal("Peek served an error entry")
	}
	// An in-progress flight is not peekable.
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do("slow", func() ([]byte, error) { close(started); <-release; return []byte("s"), nil })
	<-started
	if _, ok := c.Peek("slow"); ok {
		t.Fatal("Peek served an unsettled flight")
	}
	close(release)
}
