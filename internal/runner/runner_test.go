package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/xrand"
)

func TestRunEmpty(t *testing.T) {
	res, err := Run[int](context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty job list returned %v", res)
	}
}

// TestRunProperty is the engine's property test: for random job counts and
// worker counts (seeded via xrand so failures replay), every job's result
// arrives, in submission order, exactly once.
func TestRunProperty(t *testing.T) {
	rng := xrand.NewString("runner-property")
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(41)           // 0..40 jobs
		workers := rng.Intn(10) - 1 // -1..8: exercise GOMAXPROCS default too
		salt := int(rng.Intn(1 << 16))

		ran := make([]atomic.Int64, n)
		jobs := make([]Job[int], n)
		for i := 0; i < n; i++ {
			i := i
			jobs[i] = Job[int]{
				Name: fmt.Sprintf("trial%d/job%d", trial, i),
				Run: func() (int, error) {
					ran[i].Add(1)
					return i*31 + salt, nil
				},
			}
		}
		res, err := Run(context.Background(), workers, jobs)
		if err != nil {
			t.Fatalf("trial %d (n=%d workers=%d): %v", trial, n, workers, err)
		}
		if n == 0 {
			if res != nil {
				t.Fatalf("trial %d: empty jobs returned %v", trial, res)
			}
			continue
		}
		if len(res) != n {
			t.Fatalf("trial %d: %d results for %d jobs", trial, len(res), n)
		}
		for i := 0; i < n; i++ {
			if got := ran[i].Load(); got != 1 {
				t.Errorf("trial %d: job %d ran %d times", trial, i, got)
			}
			if res[i] != i*31+salt {
				t.Errorf("trial %d: results[%d] = %d, want %d (out-of-order collation)",
					trial, i, res[i], i*31+salt)
			}
		}
	}
}

// TestRunErrorCancelsStragglers verifies the cancellation contract: a failing
// job stops jobs that have not started. Job 0 fails and releases a gate the
// other jobs block on, so at the moment of failure each worker has started at
// most one job — everything else must be skipped.
func TestRunErrorCancelsStragglers(t *testing.T) {
	const n, workers = 64, 4
	boom := errors.New("boom")
	gate := make(chan struct{})
	var started atomic.Int64
	jobs := make([]Job[int], n)
	jobs[0] = Job[int]{Name: "job0", Run: func() (int, error) {
		started.Add(1)
		close(gate)
		return 0, boom
	}}
	for i := 1; i < n; i++ {
		jobs[i] = Job[int]{Name: fmt.Sprintf("job%d", i), Run: func() (int, error) {
			started.Add(1)
			<-gate
			return 0, nil
		}}
	}
	res, err := Run(context.Background(), workers, jobs)
	if res != nil {
		t.Fatalf("failed run returned results: %v", res)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the job failure", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Index != 0 || je.Name != "job0" {
		t.Fatalf("error %v, want JobError for job0/#0", err)
	}
	if got := started.Load(); got > workers {
		t.Errorf("%d jobs started after failure; cancellation allows at most %d", got, workers)
	}
}

// TestRunFirstErrorDeterministic: with several failing jobs, the reported
// error is the lowest-indexed failure — exactly where a serial loop stops.
func TestRunFirstErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 25; trial++ {
		jobs := make([]Job[int], 12)
		for i := range jobs {
			i := i
			var err error
			switch i {
			case 3:
				err = errLow
			case 7:
				err = errHigh
			}
			jobs[i] = Job[int]{Name: fmt.Sprintf("job%d", i), Run: func() (int, error) { return i, err }}
		}
		for _, workers := range []int{1, 2, 5, 12} {
			_, err := Run(context.Background(), workers, jobs)
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=%d: error %v, want the lowest-indexed failure", workers, err)
			}
		}
	}
}

func TestRunSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	jobs := []Job[int]{
		{Name: "ok", Run: func() (int, error) { return 1, nil }},
		{Name: "bad", Run: func() (int, error) { return 0, boom }},
		{Name: "never", Run: func() (int, error) { after.Add(1); return 2, nil }},
	}
	if _, err := Run(context.Background(), 1, jobs); !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if after.Load() != 0 {
		t.Error("serial run executed jobs past the first error")
	}
}

// TestRunContextCanceled: cancelling the context mid-run stops scheduling,
// returns a *Canceled partial-result error, and counts skipped jobs on the
// telemetry registry attached via WithTelemetry.
func TestRunContextCanceled(t *testing.T) {
	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 32
			reg := telemetry.NewRegistry()
			ctx, cancel := context.WithCancel(WithTelemetry(context.Background(), reg))
			defer cancel()
			var started atomic.Int64
			jobs := make([]Job[int], n)
			for i := range jobs {
				i := i
				jobs[i] = Job[int]{Name: fmt.Sprintf("job%d", i), Run: func() (int, error) {
					if started.Add(1) == int64(workers) {
						cancel() // cancel once every worker is busy
					}
					return i, nil
				}}
			}
			res, err := Run(ctx, workers, jobs)
			if res != nil {
				t.Fatalf("cancelled run returned results: %v", res)
			}
			var ce *Canceled
			if !errors.As(err, &ce) {
				t.Fatalf("error %v, want *Canceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			if ce.Total != n || ce.Completed >= n {
				t.Fatalf("Canceled{Completed: %d, Total: %d}, want partial progress out of %d",
					ce.Completed, ce.Total, n)
			}
			done := reg.Counter("runner.jobs.completed").Value()
			skip := reg.Counter("runner.jobs.cancelled").Value()
			if int(done) != ce.Completed {
				t.Errorf("telemetry completed=%d, Canceled.Completed=%d", done, ce.Completed)
			}
			if int(done+skip) != n {
				t.Errorf("completed=%d + cancelled=%d != %d jobs", done, skip, n)
			}
		})
	}
}

// TestRunContextPreCanceled: an already-dead context runs nothing.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := []Job[int]{{Name: "j", Run: func() (int, error) { ran.Add(1); return 1, nil }}}
	for _, workers := range []int{1, 4} {
		_, err := Run(ctx, workers, jobs)
		var ce *Canceled
		if !errors.As(err, &ce) || ce.Completed != 0 {
			t.Fatalf("workers=%d: error %v, want *Canceled with 0 completed", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("pre-cancelled context still ran %d jobs", ran.Load())
	}
}

func TestMapOrderAndNames(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	res, err := Map(context.Background(), 3, items, nil, func(i int, s string) (string, error) {
		return fmt.Sprintf("%d:%s", i, s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:a", "1:b", "2:c", "3:d"}
	for i := range want {
		if res[i] != want[i] {
			t.Errorf("res[%d] = %q, want %q", i, res[i], want[i])
		}
	}

	boom := errors.New("boom")
	_, err = Map(context.Background(), 2, items, func(i int, s string) string { return "item/" + s },
		func(i int, s string) (string, error) {
			if i == 2 {
				return "", boom
			}
			return s, nil
		})
	var je *JobError
	if !errors.As(err, &je) || je.Name != "item/c" {
		t.Fatalf("error %v, want JobError named item/c", err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var computes atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("key", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
			results[g] = v
		}()
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("fn computed %d times for one key, want 1", got)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d saw %d", g, v)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d keys, want 1", c.Len())
	}
}

func TestCacheKeysIndependent(t *testing.T) {
	var c Cache[int, int]
	for k := 0; k < 5; k++ {
		k := k
		v, err := c.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("key %d: (%d, %v)", k, v, err)
		}
	}
	// Cached: fn must not run again.
	v, err := c.Do(3, func() (int, error) { return -1, nil })
	if err != nil || v != 9 {
		t.Fatalf("cached key 3: (%d, %v)", v, err)
	}
}

func TestCacheErrorAndReset(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	// The error is cached.
	if _, err := c.Do("k", func() (int, error) { return 7, nil }); !errors.Is(err, boom) {
		t.Fatalf("cached error lost: %v", err)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d keys after Reset", c.Len())
	}
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("post-reset recompute: (%d, %v)", v, err)
	}
}

// TestCacheDoContextShared: concurrent DoContext callers share one flight;
// exactly one reports OutcomeLeader, joiners report OutcomeWaiter, and
// later callers hitting the settled entry report OutcomeHit.
func TestCacheDoContextShared(t *testing.T) {
	var c Cache[string, int]
	const goroutines = 8
	var computes, leaders, hits atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.DoContext(context.Background(), "k", func(context.Context) (int, error) {
				<-gate // park the leader so the others attach to its flight
				computes.Add(1)
				return 99, nil
			})
			if err != nil || v != 99 {
				t.Errorf("(%d, %v)", v, err)
			}
			if out.Shared() != (out != OutcomeLeader) {
				t.Errorf("outcome %v: Shared() inconsistent", out)
			}
			switch out {
			case OutcomeLeader:
				leaders.Add(1)
			case OutcomeHit:
				hits.Add(1)
			}
		}()
	}
	// Whether a goroutine joins the in-progress flight (waiter) or arrives
	// after it settles (hit), it reports a shared outcome; only the flight
	// creator reports OutcomeLeader, and fn runs exactly once either way.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("fn computed %d times, want 1", computes.Load())
	}
	if leaders.Load() != 1 {
		t.Errorf("%d callers reported OutcomeLeader, want exactly 1", leaders.Load())
	}
	// Settled entry: OutcomeHit, no recompute.
	v, out, err := c.DoContext(context.Background(), "k", func(context.Context) (int, error) { return -1, nil })
	if err != nil || v != 99 || out != OutcomeHit {
		t.Errorf("settled hit: (%d, outcome=%v, %v)", v, out, err)
	}
	for _, o := range []Outcome{OutcomeLeader, OutcomeWaiter, OutcomeHit, Outcome(99)} {
		if o.String() == "" {
			t.Errorf("outcome %d has empty String()", o)
		}
	}
}

// TestCacheAbandonCancelsFlight: when every waiter abandons a flight, the
// flight context is cancelled, the entry is evicted (no error caching), and
// a later caller recomputes.
func TestCacheAbandonCancelsFlight(t *testing.T) {
	var c Cache[string, int]
	c.AbandonGrace = time.Second
	ctx, cancel := context.WithCancel(context.Background())
	flightCancelled := make(chan struct{})
	go cancel()
	_, _, err := c.DoContext(ctx, "k", func(fctx context.Context) (int, error) {
		<-fctx.Done()
		close(flightCancelled)
		return 0, &Canceled{Completed: 3, Total: 10, Cause: fctx.Err()}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	// AbandonGrace let the flight settle, so its partial-result error must
	// ride along with the context error.
	var ce *Canceled
	if !errors.As(err, &ce) || ce.Completed != 3 {
		t.Fatalf("error %v does not carry the flight's *Canceled detail", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("flight context never cancelled after last waiter left")
	}
	if c.Len() != 0 {
		t.Fatalf("abandoned flight still cached (%d keys)", c.Len())
	}
	v, out, err := c.DoContext(context.Background(), "k", func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 || out != OutcomeLeader {
		t.Fatalf("post-abandon recompute: (%d, outcome=%v, %v)", v, out, err)
	}
}

// TestCacheTransientNotCached: errors wrapping ErrTransient are evicted on
// completion so the next caller retries.
func TestCacheTransientNotCached(t *testing.T) {
	var c Cache[string, int]
	transient := fmt.Errorf("server saturated: %w", ErrTransient)
	if _, _, err := c.DoContext(context.Background(), "k",
		func(context.Context) (int, error) { return 0, transient }); !errors.Is(err, ErrTransient) {
		t.Fatalf("error %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("transient failure cached (%d keys)", c.Len())
	}
	v, _, err := c.DoContext(context.Background(), "k", func(context.Context) (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry after transient: (%d, %v)", v, err)
	}

	// Plain errors, by contrast, stay cached through DoContext too.
	boom := errors.New("boom")
	if _, _, err := c.DoContext(context.Background(), "p",
		func(context.Context) (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if _, _, err := c.DoContext(context.Background(), "p",
		func(context.Context) (int, error) { return 1, nil }); !errors.Is(err, boom) {
		t.Fatalf("deterministic error was not cached: %v", err)
	}
}

// TestCacheFlightSurvivesOneWaiterLeaving: with two waiters, one abandoning
// must not cancel the flight for the other.
func TestCacheFlightSurvivesOneWaiterLeaving(t *testing.T) {
	var c Cache[string, int]
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var flightErr atomic.Bool

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.DoContext(context.Background(), "k", func(fctx context.Context) (int, error) {
			close(leaderIn)
			<-gate
			if fctx.Err() != nil {
				flightErr.Store(true)
			}
			return 11, nil
		})
		if err != nil || v != 11 {
			t.Errorf("surviving waiter: (%d, %v)", v, err)
		}
	}()

	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan struct{})
	go func() {
		defer close(abandoned)
		_, _, err := c.DoContext(ctx, "k", func(context.Context) (int, error) { return -1, nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoning waiter: %v", err)
		}
	}()
	// Let the second waiter attach, then pull it off the flight.
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-abandoned
	close(gate)
	<-done
	if flightErr.Load() {
		t.Error("flight context cancelled while a waiter remained")
	}
}
