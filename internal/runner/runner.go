// Package runner is the parallel execution engine behind the experiment
// harness and the miraged server: a bounded worker pool that runs a slice of
// named, independent simulation jobs concurrently and collates their results
// in submission order.
//
// Determinism is the design constraint. Every simulation in this repository
// derives all of its randomness from a per-job seed string (internal/xrand),
// so a job's result depends only on its own inputs — never on scheduling.
// Because Run writes results into a slice indexed by submission order, any
// arithmetic the caller performs over the collated slice happens in exactly
// the order the serial loop would have used, making parallel output
// bit-identical to serial output (see DESIGN.md §8 and
// TestParallelMatchesSerial at the repository root).
//
// Error handling mirrors a serial loop: the returned error is the failure
// with the lowest job index, which is the same error a serial loop would
// have stopped at. The first observed failure also cancels jobs that have
// not started yet; jobs already running finish (simulations cannot be
// interrupted mid-run).
//
// Cancellation is cooperative and job-granular: when the context passed to
// Run is cancelled, no further jobs are scheduled, jobs already running
// finish, and Run returns a *Canceled partial-result error recording how far
// it got. A *telemetry.Registry attached via WithTelemetry makes the
// scheduling observable ("runner.jobs.completed" / "runner.jobs.cancelled"),
// which the server's cancellation tests assert on.
//
// Outside the optional telemetry hook the package is stdlib-only: context,
// sync, channels and runtime.GOMAXPROCS.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Job is one named unit of work producing a T.
type Job[T any] struct {
	// Name labels the job in errors ("sweep/sw-8-1", "profile/bzip2").
	Name string
	// Run computes the job's result. It must be safe to call concurrently
	// with other jobs' Run functions.
	Run func() (T, error)
}

// JobError is a job failure, carrying the job's name and submission index.
type JobError struct {
	Name  string
	Index int
	Err   error
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("runner: job %q (#%d): %v", e.Name, e.Index, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Canceled is the partial-result error Run returns when its context is
// cancelled before every job has run: Completed of Total jobs finished, the
// rest were never scheduled. Cause is the context's error, so
// errors.Is(err, context.Canceled / context.DeadlineExceeded) works.
type Canceled struct {
	Completed int
	Total     int
	Cause     error
}

// Error implements error.
func (e *Canceled) Error() string {
	return fmt.Sprintf("runner: canceled after %d/%d jobs: %v", e.Completed, e.Total, e.Cause)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *Canceled) Unwrap() error { return e.Cause }

// telemetryKey carries an optional *telemetry.Registry through a context.
type telemetryKey struct{}

// WithTelemetry returns a context carrying reg; Run invocations under it
// count scheduling on the registry's "runner.jobs.completed" and
// "runner.jobs.cancelled" counters. The association survives singleflight
// re-parenting (Cache.DoContext detaches cancellation, not values).
func WithTelemetry(ctx context.Context, reg *telemetry.Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, telemetryKey{}, reg)
}

// RegistryFrom recovers the registry attached by WithTelemetry; a nil return
// is fine — nil registries hand out nil instruments whose methods are no-ops.
// Exported so layers wrapped around a flight (the chaos backend marking
// injected faults, the server's span recorder) can count on the same
// registry the request was admitted under.
func RegistryFrom(ctx context.Context) *telemetry.Registry {
	reg, _ := ctx.Value(telemetryKey{}).(*telemetry.Registry)
	return reg
}

// registryFrom is the internal alias RegistryFrom grew out of.
func registryFrom(ctx context.Context) *telemetry.Registry { return RegistryFrom(ctx) }

// Run executes jobs on up to `workers` goroutines and returns their results
// in submission order: results[i] is jobs[i]'s result regardless of which
// worker ran it or when it finished.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs the jobs
// serially on the calling goroutine. On failure Run returns a *JobError
// wrapping the lowest-indexed job error — the same job a serial loop would
// have stopped at — and cancels jobs that have not started; in-flight jobs
// run to completion but their results are discarded.
//
// Cancelling ctx stops scheduling: jobs not yet started are skipped, running
// jobs finish, and Run returns a *Canceled error carrying the completed/total
// counts (job failures observed before the cancellation take precedence).
func Run[T any](ctx context.Context, workers int, jobs []Job[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return runSerial(ctx, jobs)
	}

	reg := registryFrom(ctx)
	cDone := reg.Counter("runner.jobs.completed")
	cSkip := reg.Counter("runner.jobs.cancelled")

	results := make([]T, n)
	var (
		mu        sync.Mutex
		firstErr  *JobError
		completed atomic.Int64
	)
	// cancelled reports whether job i should be skipped: only a recorded
	// failure at a LOWER index cancels it. Skipping solely "after any
	// failure" would be racy semantics: a higher-indexed job can fail first
	// and suppress the job the serial loop would actually have stopped at.
	// With this rule every job up to the lowest possible failure index still
	// runs, so the reported error index provably equals the serial stop
	// point, while everything past the failure is cancelled.
	cancelled := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil && firstErr.Index < i
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cancelled(i) || ctx.Err() != nil {
					continue // skip, keep draining
				}
				v, err := jobs[i].Run()
				if err != nil {
					mu.Lock()
					if firstErr == nil || i < firstErr.Index {
						firstErr = &JobError{Name: jobs[i].Name, Index: i, Err: err}
					}
					mu.Unlock()
					continue
				}
				results[i] = v
				completed.Add(1)
				cDone.Inc()
			}
		}()
	}
	// Feed indexes in submission order; workers drain the channel even after
	// a failure, so this never blocks indefinitely. A context cancellation
	// stops the feed — that is the "stop scheduling new jobs" contract.
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if done := int(completed.Load()); done < n {
		if err := ctx.Err(); err != nil {
			cSkip.Add(int64(n - done))
			return nil, &Canceled{Completed: done, Total: n, Cause: err}
		}
	}
	return results, nil
}

// runSerial is the workers==1 path and the reference semantics: run each job
// in order, stop at the first error or at the cancellation point.
func runSerial[T any](ctx context.Context, jobs []Job[T]) ([]T, error) {
	reg := registryFrom(ctx)
	cDone := reg.Counter("runner.jobs.completed")
	cSkip := reg.Counter("runner.jobs.cancelled")
	results := make([]T, len(jobs))
	for i := range jobs {
		if err := ctx.Err(); err != nil {
			cSkip.Add(int64(len(jobs) - i))
			return nil, &Canceled{Completed: i, Total: len(jobs), Cause: err}
		}
		v, err := jobs[i].Run()
		if err != nil {
			return nil, &JobError{Name: jobs[i].Name, Index: i, Err: err}
		}
		results[i] = v
		cDone.Inc()
	}
	return results, nil
}

// Map runs f over every item with bounded parallelism and returns the
// results in item order. name labels jobs for errors; nil derives "job-i".
func Map[S, T any](ctx context.Context, workers int, items []S, name func(i int, item S) string, f func(i int, item S) (T, error)) ([]T, error) {
	jobs := make([]Job[T], len(items))
	for i := range items {
		i, item := i, items[i]
		jn := fmt.Sprintf("job-%d", i)
		if name != nil {
			jn = name(i, item)
		}
		jobs[i] = Job[T]{Name: jn, Run: func() (T, error) { return f(i, item) }}
	}
	return Run(ctx, workers, jobs)
}
