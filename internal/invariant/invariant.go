// Package invariant is the simulator's opt-in audit mode (DESIGN.md §11):
// cheap microarchitectural sanity checks threaded through the pipeline
// engine, the cores, the cluster scheduler and the energy model. Production
// simulators ship equivalent machinery (gem5's panic/assert layer) because
// scheduling and accounting bugs skew results without failing any
// functional test — an arbitrator handing one app double turns still
// produces a plausible-looking Figure 7.
//
// Checks run only when an Auditor is attached (Config.Audit / the -audit
// flag); the default path pays a single nil comparison. Violations are
// collected as structured records, counted in the telemetry registry under
// audit.violations{,.<check>}, and surfaced as an error at end of run.
package invariant

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// MaxRecorded bounds how many violation records an Auditor retains verbatim;
// the counters keep exact totals beyond it. A broken invariant usually fires
// on every interval, so keeping the first few dozen is what a human needs.
const MaxRecorded = 64

// Violation is one failed invariant check.
type Violation struct {
	// Check names the invariant that failed (e.g. "pipeline.fu_capacity").
	Check string
	// Where locates the violation: a core label, app name or structure.
	Where string
	// Detail is the human-readable specifics, already formatted.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Check, v.Where, v.Detail)
}

// Auditor collects violations from every simulator layer of one run. All
// methods are safe for concurrent use (parallel sweeps audit from worker
// goroutines) and safe on a nil receiver, so call sites need no guards
// beyond the cheap `aud != nil` that gates expensive checks.
type Auditor struct {
	reg *telemetry.Registry

	mu         sync.Mutex
	total      int
	perCheck   map[string]int
	violations []Violation
}

// New returns an Auditor reporting counters into reg (nil reg is fine: the
// registry API is nil-safe; totals still accumulate in the Auditor).
func New(reg *telemetry.Registry) *Auditor {
	return &Auditor{reg: reg, perCheck: make(map[string]int)}
}

// Violatef records one violation of check at location where.
func (a *Auditor) Violatef(check, where, format string, args ...any) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.total++
	a.perCheck[check]++
	if len(a.violations) < MaxRecorded {
		a.violations = append(a.violations, Violation{
			Check:  check,
			Where:  where,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	a.mu.Unlock()
	a.reg.Counter("audit.violations").Inc()
	a.reg.Counter("audit.violations." + check).Inc()
}

// Checkf records a violation when cond is false. It returns cond so call
// sites can chain (`if !aud.Checkf(...) { return }`).
func (a *Auditor) Checkf(cond bool, check, where, format string, args ...any) bool {
	if !cond {
		a.Violatef(check, where, format, args...)
	}
	return cond
}

// Total reports how many violations have been recorded, including those
// past the MaxRecorded retention bound.
func (a *Auditor) Total() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Violations returns a copy of the retained violation records.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Err summarizes the audit: nil when every check held, otherwise an error
// listing per-check counts and the first retained violation of each check.
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return nil
	}
	checks := make([]string, 0, len(a.perCheck))
	for c := range a.perCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	msg := fmt.Sprintf("audit: %d invariant violation(s):", a.total)
	for _, c := range checks {
		msg += fmt.Sprintf("\n  %s ×%d", c, a.perCheck[c])
		for _, v := range a.violations {
			if v.Check == c {
				msg += fmt.Sprintf(" — e.g. [%s] %s", v.Where, v.Detail)
				break
			}
		}
	}
	return fmt.Errorf("%s", msg)
}
