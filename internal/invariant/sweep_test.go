package invariant_test

// The audit sweep: drive full simulations across 200 seeds with the
// invariant audit attached (ISSUE 5 acceptance criterion) and require zero
// violations. The sweep rotates every topology and arbitration policy so
// each audit check — pipeline scheduling, arbitration decisions, OoO
// occupancy, energy closure — actually executes; a check that never runs
// proves nothing.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// sweepCase derives the i'th sweep configuration. Topology and policy
// rotate on coprime strides so the cross product is covered; the mix and
// seed derive from i so no two cases simulate the same workload.
func sweepCase(i int) core.Config {
	topos := []core.Topology{
		core.TopologyMirage,
		core.TopologyTraditional,
		core.TopologyMirage, // extra weight: Mirage exercises the most machinery
		core.TopologyHomoInO,
		core.TopologyHomoOoO,
	}
	policies := []core.Policy{
		core.PolicySCMPKI,
		core.PolicyMaxSTP,
		core.PolicySCMPKIMaxSTP,
		core.PolicyFair,
		core.PolicySCMPKIFair,
		core.PolicySoftwareSCMPKI,
	}
	seed := fmt.Sprintf("audit-sweep-%03d", i)
	cfg := core.Config{
		Topology:       topos[i%len(topos)],
		Policy:         policies[i%len(policies)],
		Benchmarks:     core.RandomMixes(core.MixRandom, 3+i%3, 1, seed)[0],
		TargetInsts:    150_000,
		IntervalCycles: 15_000,
		Seed:           seed,
		Audit:          true,
	}
	if cfg.Topology == core.TopologyTraditional && i%4 == 3 {
		cfg.NumOoO = 2 // multi-slot arbitration paths
	}
	return cfg
}

func TestAuditSweep200Seeds(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 24
	}
	jobs := make([]runner.Job[struct{}], n)
	for i := 0; i < n; i++ {
		cfg := sweepCase(i)
		jobs[i] = runner.Job[struct{}]{
			Name: cfg.Seed,
			Run: func() (struct{}, error) {
				// RunMix fails with the audit summary on any violation.
				_, err := core.RunMix(context.Background(), cfg)
				return struct{}{}, err
			},
		}
	}
	if _, err := runner.Run(context.Background(), runtime.GOMAXPROCS(0), jobs); err != nil {
		t.Fatalf("audit sweep: %v", err)
	}
}
