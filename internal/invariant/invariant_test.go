package invariant

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func TestNilAuditorIsInert(t *testing.T) {
	var a *Auditor
	a.Violatef("x", "y", "boom %d", 1)
	if !a.Checkf(false, "x", "y", "boom") {
		// Checkf must still report the condition's value on a nil receiver.
		t.Log("Checkf returned false as expected")
	} else {
		t.Fatal("Checkf(false) returned true on nil Auditor")
	}
	if a.Total() != 0 || a.Violations() != nil || a.Err() != nil {
		t.Fatalf("nil Auditor leaked state: total=%d violations=%v err=%v",
			a.Total(), a.Violations(), a.Err())
	}
}

func TestCheckfRecordsOnlyFailures(t *testing.T) {
	a := New(nil)
	if !a.Checkf(true, "c", "w", "never") {
		t.Fatal("Checkf(true) = false")
	}
	if a.Total() != 0 {
		t.Fatalf("Checkf(true) recorded a violation: total=%d", a.Total())
	}
	if a.Checkf(false, "c", "w", "value %d out of range", 7) {
		t.Fatal("Checkf(false) = true")
	}
	if a.Total() != 1 {
		t.Fatalf("total = %d, want 1", a.Total())
	}
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("len(Violations) = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.Check != "c" || v.Where != "w" || v.Detail != "value 7 out of range" {
		t.Fatalf("violation = %+v", v)
	}
	if got := v.String(); got != "c[w]: value 7 out of range" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRetentionCapKeepsExactCounts(t *testing.T) {
	a := New(nil)
	const n = MaxRecorded * 3
	for i := 0; i < n; i++ {
		a.Violatef("cap", "w", "violation %d", i)
	}
	if a.Total() != n {
		t.Fatalf("total = %d, want %d", a.Total(), n)
	}
	if got := len(a.Violations()); got != MaxRecorded {
		t.Fatalf("retained %d records, want cap %d", got, MaxRecorded)
	}
	// The retained records are the first MaxRecorded, in order.
	if first := a.Violations()[0].Detail; first != "violation 0" {
		t.Fatalf("first retained = %q", first)
	}
	err := a.Err()
	if err == nil || !strings.Contains(err.Error(), "cap ×192") {
		t.Fatalf("Err() = %v, want per-check count ×192", err)
	}
}

func TestErrSummarizesPerCheck(t *testing.T) {
	a := New(nil)
	if a.Err() != nil {
		t.Fatalf("clean auditor Err() = %v", a.Err())
	}
	a.Violatef("b.second", "core1", "beta")
	a.Violatef("a.first", "core0", "alpha")
	a.Violatef("b.second", "core2", "gamma")
	err := a.Err()
	if err == nil {
		t.Fatal("Err() = nil after violations")
	}
	msg := err.Error()
	for _, want := range []string{
		"3 invariant violation(s)",
		"a.first ×1",
		"b.second ×2",
		"[core0] alpha",
		"[core1] beta", // first retained example of b.second
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Err() = %q, missing %q", msg, want)
		}
	}
	// Checks are listed sorted, so a.first precedes b.second.
	if strings.Index(msg, "a.first") > strings.Index(msg, "b.second") {
		t.Fatalf("Err() checks not sorted: %q", msg)
	}
}

func TestTelemetryCounters(t *testing.T) {
	tel := telemetry.New()
	a := New(tel.Reg())
	a.Violatef("pipeline.width", "core0", "over")
	a.Violatef("pipeline.width", "core0", "over again")
	a.Violatef("energy.closure", "sys", "off")
	if got := tel.Reg().Counter("audit.violations").Value(); got != 3 {
		t.Fatalf("audit.violations = %d, want 3", got)
	}
	if got := tel.Reg().Counter("audit.violations.pipeline.width").Value(); got != 2 {
		t.Fatalf("audit.violations.pipeline.width = %d, want 2", got)
	}
	if got := tel.Reg().Counter("audit.violations.energy.closure").Value(); got != 1 {
		t.Fatalf("audit.violations.energy.closure = %d, want 1", got)
	}
}

func TestConcurrentViolations(t *testing.T) {
	a := New(nil)
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				a.Violatef("race", "w", "worker %d iter %d", w, i)
			}
		}(w)
	}
	wg.Wait()
	if a.Total() != workers*each {
		t.Fatalf("total = %d, want %d", a.Total(), workers*each)
	}
	if got := len(a.Violations()); got != MaxRecorded {
		t.Fatalf("retained %d, want %d", got, MaxRecorded)
	}
}
