// Package ino models the consumer core: a 3-wide, 8-stage, stall-on-use
// in-order pipeline with the same functional units as the OoO (Table 2),
// plus the OinO mode of Section 3.3.2 that replays memoized OoO schedules:
// issue follows the recorded order, registers resolve through a 128-entry
// versioned PRF (at most 4 versions per architectural register), memory
// operations pass through a 32-entry replay LSQ that reconstructs program
// order from the schedule's metadata block, and traces execute atomically —
// a detected alias or misspeculation squashes the whole trace and re-runs
// it in original program order.
package ino

import (
	"repro/internal/energy"
	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Result summarizes one measured trace execution on the InO/OinO core.
type Result struct {
	// CyclesPerIter is steady-state marginal cycles per trace iteration.
	CyclesPerIter float64
	// IPC is instructions per cycle at steady state.
	IPC float64
	// SquashRate is the fraction of replay iterations that squashed
	// (OinO mode only).
	SquashRate float64
	// Events are energy-model activity counts for the simulated span.
	Events energy.Events
}

// Core is one InO core instance with its private memory hierarchy.
type Core struct {
	Mem *mem.Hierarchy
	rng *xrand.Rand
	tel *telemetry.CoreMetrics
	// eng is this core's private pipeline engine: measurement scratch is
	// reused across measure/replay calls, and cores are built per worker,
	// so ownership composes with -parallel.
	eng *pipeline.Engine

	aud      *invariant.Auditor
	audLabel string
}

// New builds an InO core.
func New(h *mem.Hierarchy, rng *xrand.Rand) *Core {
	return &Core{Mem: h, rng: rng, eng: pipeline.NewEngine()}
}

// AttachTelemetry resolves this core's counters in reg under prefix (e.g.
// "core0.ino"). A nil registry detaches instrumentation; detached is the
// default and costs nothing on the measurement path.
func (c *Core) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	c.tel = telemetry.NewCoreMetrics(reg, prefix)
}

// AttachAudit threads the invariant auditor (DESIGN.md §11) into every
// pipeline measurement this core makes — plain in-order and OinO replay
// alike; label locates violations (e.g. "core0.ino"). Nil detaches.
func (c *Core) AttachAudit(a *invariant.Auditor, label string) {
	c.aud = a
	c.audLabel = label
}

// record feeds a finished pipeline measurement into the attached counters.
func (c *Core) record(res *pipeline.Result) {
	if c.tel == nil {
		return
	}
	c.tel.Measures.Inc()
	c.tel.MeasuredCycles.Add(int64(res.Cycles))
	c.tel.StallData.Add(int64(res.StallDataCycles))
	c.tel.StallFU.Add(int64(res.StallFUCycles))
	c.tel.StallFetch.Add(int64(res.StallFetchCycles))
}

// MeasureIters is the default iteration count per measurement.
const MeasureIters = 8

// SquashRefillCycles is the pipeline flush-and-refill cost when an OinO
// trace misspeculates and restarts in program order.
const SquashRefillCycles = isa.InOPipelineDepth

// CommitOverheadCycles is charged once per replayed iteration: OinO traces
// execute atomically, so stores drain from the replay LSQ and commit in
// order at trace boundaries before the next trace block proceeds.
const CommitOverheadCycles = 1.0

// MeasureTrace simulates iters iterations of t in plain in-order mode.
func (c *Core) MeasureTrace(t *trace.Trace, deps *trace.DepGraph, walkers []*mem.Walker, iters int) Result {
	if iters <= 0 {
		iters = MeasureIters
	}
	loadLats, nLoads, nStores := c.resolveMemLats(t, walkers, iters)
	fetchGates := fetchStalls(c.Mem, t, iters)
	req := pipeline.Request{
		Trace:             t,
		Deps:              deps,
		Iterations:        iters,
		Policy:            pipeline.ProgramOrder,
		Width:             isa.IssueWidth,
		MispredictPenalty: isa.InOPipelineDepth,
		LoadLatency:       func(k int) int { return loadLats[k] },
		Mispredicts:       func(int) bool { return c.rng.Bool(t.MispredictRate) },
		FetchGate:         func(it int) int { return fetchGates[it] },
		Audit:             c.aud,
		AuditLabel:        c.audLabel,
	}
	res := c.eng.Run(req)
	c.record(&res)
	cpi := res.SteadyCyclesPerIter()
	r := Result{
		CyclesPerIter: cpi,
		Events:        c.countEvents(t, &res, iters, nLoads, nStores, false),
	}
	if cpi > 0 {
		r.IPC = float64(len(t.Insts)) / cpi
	}
	return r
}

// MeasureReplay simulates iters iterations of t in OinO mode, replaying the
// memoized schedule. Misspeculating iterations (memory aliases the recorded
// order reordered incorrectly, per t.AliasRate) squash atomically: the work
// is discarded, the pipeline refills, and the iteration re-executes in
// program order. The returned CyclesPerIter folds that penalty in.
func (c *Core) MeasureReplay(t *trace.Trace, deps *trace.DepGraph, sched *trace.Schedule, walkers []*mem.Walker, iters int) Result {
	if iters <= 0 {
		iters = MeasureIters
	}
	if !sched.Replayable() {
		// Hardware could not replay this schedule; fall back to plain InO.
		return c.MeasureTrace(t, deps, walkers, iters)
	}
	span := sched.Span
	if span <= 0 {
		span = 1
	}
	if rem := iters % span; rem != 0 {
		iters += span - rem
	}
	loadLats, nLoads, nStores := c.resolveMemLats(t, walkers, iters)
	req := pipeline.Request{
		Trace:             t,
		Deps:              deps,
		Iterations:        iters,
		Policy:            pipeline.RecordedOrder,
		Order:             sched.Order,
		ProbeSpan:         span,
		Width:             isa.IssueWidth,
		MispredictPenalty: isa.InOPipelineDepth,
		LoadLatency:       func(k int) int { return loadLats[k] },
		// A mispredicted trace-terminating branch redirects the front end
		// like on any in-order core; only memory aliases abort the atomic
		// trace (handled below).
		Mispredicts: func(int) bool { return c.rng.Bool(t.MispredictRate) },
		Audit:       c.aud,
		AuditLabel:  c.audLabel,
	}
	res := c.eng.Run(req)
	c.record(&res)
	replayCPI := res.SteadyCyclesPerIter() + CommitOverheadCycles

	// Alias-squashing iterations pay: the wasted partial replay (half an
	// iteration on average), the refill, and a full program-order re-run.
	squashP := t.AliasRate
	if squashP > 1 {
		squashP = 1
	}
	var inoCPI float64
	if squashP > 0 {
		inoCPI = c.MeasureTrace(t, deps, walkers, iters).CyclesPerIter
	}
	cpi := (1-squashP)*replayCPI + squashP*(replayCPI/2+float64(SquashRefillCycles)+inoCPI)

	ev := c.countEvents(t, &res, iters, nLoads, nStores, true)
	ev.Squashes = uint64(float64(iters)*squashP + 0.5)
	if c.tel != nil {
		c.tel.Replays.Add(int64(iters))
		c.tel.SquashedIters.Add(int64(ev.Squashes))
	}
	r := Result{
		CyclesPerIter: cpi,
		SquashRate:    squashP,
		Events:        ev,
	}
	if cpi > 0 {
		r.IPC = float64(len(t.Insts)) / cpi
	}
	return r
}

// fetchStalls pre-computes per-iteration instruction-fetch stalls; replay
// mode skips this — memoized trace blocks come from the on-core SC.
func fetchStalls(h *mem.Hierarchy, t *trace.Trace, iters int) []int {
	gates := make([]int, iters)
	pc := uint64(t.ID) &^ 0x3f
	for it := range gates {
		gates[it] = h.FetchStall(pc, t.Len()*isa.InstBytes)
	}
	return gates
}

// memOp is one memory instruction of a trace with its walker resolved, so
// the per-iteration latency loop neither rescans non-memory instructions nor
// re-checks the stream bound per dynamic instruction.
type memOp struct {
	load   bool
	stream uint8
	w      *mem.Walker // nil when the stream index is out of range
}

func (c *Core) resolveMemLats(t *trace.Trace, walkers []*mem.Walker, iters int) (lats []int, nLoads, nStores int) {
	loads, stores := t.NumMemOps()
	nLoads = loads * iters
	nStores = stores * iters
	if loads == 0 && stores == 0 {
		return nil, 0, 0
	}
	ops := make([]memOp, 0, loads+stores)
	for _, in := range t.Insts {
		switch in.Op {
		case isa.Load, isa.Store:
			op := memOp{load: in.Op == isa.Load, stream: in.MemStream}
			if int(in.MemStream) < len(walkers) {
				op.w = walkers[in.MemStream]
			}
			ops = append(ops, op)
		}
	}
	lats = make([]int, 0, nLoads)
	for it := 0; it < iters; it++ {
		for _, op := range ops {
			switch {
			case op.load && op.w != nil:
				lats = append(lats, c.Mem.LoadLatency(op.stream, op.w.Next()))
			case op.load:
				lats = append(lats, mem.L1Latency)
			case op.w != nil:
				c.Mem.StoreAccess(op.stream, op.w.Next())
			}
		}
	}
	return lats, nLoads, nStores
}

func (c *Core) countEvents(t *trace.Trace, res *pipeline.Result, iters, nLoads, nStores int, oino bool) energy.Events {
	n := uint64(len(t.Insts)) * uint64(iters)
	var ev energy.Events
	ev.Cycles = uint64(res.Cycles)
	for _, in := range t.Insts {
		var cnt *uint64
		switch in.Op {
		case isa.IntALU, isa.Branch:
			cnt = &ev.IntOps
		case isa.IntMul, isa.IntDiv:
			cnt = &ev.MulDivOps
		case isa.FPAdd, isa.FPMul, isa.FPDiv:
			cnt = &ev.FPOps
		}
		if cnt != nil {
			*cnt += uint64(iters)
		}
		if in.Op == isa.Branch {
			ev.BPredLookups += uint64(iters)
		}
	}
	ev.Decodes = n
	ev.PRFReads = 2 * n
	ev.PRFWrites = n * 3 / 4
	ev.LQOps = uint64(nLoads)
	ev.SQOps = uint64(nStores)
	ev.L1DAccess = uint64(nLoads + nStores)
	if oino {
		// OinO fetches trace blocks from the small SC instead of the L1I,
		// cutting I-cache and branch-prediction activity (Section 5.2).
		ev.SCFetches = n
		ev.L1IAccess = n / 8
		ev.BPredLookups /= 4
	} else {
		ev.Fetches = n
		ev.L1IAccess = n / 2
	}
	return ev
}

// OinOKind returns the energy-model core kind for a measurement: replay
// spans bill OinO coefficients, plain spans bill InO coefficients.
func OinOKind(replay bool) energy.CoreKind {
	if replay {
		return energy.KindOinO
	}
	return energy.KindInO
}
