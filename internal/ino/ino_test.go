package ino

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// blockedTrace: independent mul chains laid out contiguously — the case
// where in-order issue loses badly and schedule replay wins it back.
func blockedTrace(id trace.ID) *trace.Trace {
	t := &trace.Trace{ID: id, Stability: 0.95}
	for c := 0; c < 4; c++ {
		r := isa.Reg(1 + 4*c)
		for k := 0; k < 8; k++ {
			t.Insts = append(t.Insts, isa.Inst{Op: isa.IntMul, Dst: r + isa.Reg(k%4), Src1: r + isa.Reg((k+3)%4)})
		}
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

func cores(seed string) (*ooo.Core, *Core) {
	h := mem.NewHierarchy()
	return ooo.New(h, xrand.NewString(seed+"-o")), New(h, xrand.NewString(seed+"-i"))
}

func TestInOSlowerThanOoO(t *testing.T) {
	tr := blockedTrace(200)
	g := trace.BuildDepGraph(tr)
	co, ci := cores("slow")
	ro := co.MeasureTrace(tr, g, nil, 12)
	ri := ci.MeasureTrace(tr, g, nil, 12)
	if ri.CyclesPerIter <= ro.CyclesPerIter {
		t.Errorf("in-order (%v cyc/iter) should be slower than OoO (%v)", ri.CyclesPerIter, ro.CyclesPerIter)
	}
}

func TestReplayRecoversOoOPerformance(t *testing.T) {
	tr := blockedTrace(201)
	g := trace.BuildDepGraph(tr)
	co, ci := cores("replay")
	ro := co.MeasureTrace(tr, g, nil, 12)
	if !ro.Schedule.Replayable() {
		t.Fatalf("test schedule not replayable: versions=%d mem=%d",
			ro.Schedule.MaxVersions, len(ro.Schedule.MemOrder))
	}
	rr := ci.MeasureReplay(tr, g, ro.Schedule, nil, 12)
	ri := ci.MeasureTrace(tr, g, nil, 12)
	if rr.CyclesPerIter >= ri.CyclesPerIter {
		t.Errorf("replay (%v) should beat plain in-order (%v)", rr.CyclesPerIter, ri.CyclesPerIter)
	}
	rel := ro.CyclesPerIter / rr.CyclesPerIter
	if rel < 0.6 {
		t.Errorf("replay reaches only %.2f of OoO on an ideal trace", rel)
	}
}

func TestReplayFallsBackWhenNotReplayable(t *testing.T) {
	tr := blockedTrace(202)
	g := trace.BuildDepGraph(tr)
	_, ci := cores("fallback")
	bad := &trace.Schedule{TraceID: tr.ID, Span: 1,
		Order: make([]uint16, len(tr.Insts)), MaxVersions: isa.OinOMaxVersions + 1}
	ri := ci.MeasureTrace(tr, g, nil, 12)
	rr := ci.MeasureReplay(tr, g, bad, nil, 12)
	if diff := rr.CyclesPerIter - ri.CyclesPerIter; diff < -1 || diff > 1 {
		t.Errorf("non-replayable schedule should fall back to in-order: %v vs %v",
			rr.CyclesPerIter, ri.CyclesPerIter)
	}
}

func TestAliasSquashPenalty(t *testing.T) {
	tr := blockedTrace(203)
	g := trace.BuildDepGraph(tr)
	co, ci := cores("squash")
	ro := co.MeasureTrace(tr, g, nil, 12)

	clean := ci.MeasureReplay(tr, g, ro.Schedule, nil, 12)
	tr.AliasRate = 0.3
	dirty := ci.MeasureReplay(tr, g, ro.Schedule, nil, 12)
	if dirty.CyclesPerIter <= clean.CyclesPerIter {
		t.Errorf("30%% alias squashes (%v cyc/iter) should cost over clean replay (%v)",
			dirty.CyclesPerIter, clean.CyclesPerIter)
	}
	if dirty.SquashRate < 0.25 || dirty.SquashRate > 0.35 {
		t.Errorf("squash rate %v, want ~0.3", dirty.SquashRate)
	}
	if dirty.Events.Squashes == 0 {
		t.Error("squash events not counted")
	}
}

func TestMispredictSlowsReplayWithoutSquash(t *testing.T) {
	tr := blockedTrace(204)
	g := trace.BuildDepGraph(tr)
	co, ci := cores("misp")
	ro := co.MeasureTrace(tr, g, nil, 12)
	clean := ci.MeasureReplay(tr, g, ro.Schedule, nil, 24)
	tr.MispredictRate = 0.5
	missed := ci.MeasureReplay(tr, g, ro.Schedule, nil, 24)
	if missed.CyclesPerIter <= clean.CyclesPerIter {
		t.Errorf("mispredicting loop exits should add redirect stalls: %v vs %v",
			missed.CyclesPerIter, clean.CyclesPerIter)
	}
	if missed.SquashRate != 0 {
		t.Errorf("branch redirects must not count as atomic-trace squashes (rate %v)", missed.SquashRate)
	}
}

func TestOinOEnergyEvents(t *testing.T) {
	tr := blockedTrace(205)
	g := trace.BuildDepGraph(tr)
	co, ci := cores("energy")
	ro := co.MeasureTrace(tr, g, nil, 12)
	rr := ci.MeasureReplay(tr, g, ro.Schedule, nil, 12)
	ri := ci.MeasureTrace(tr, g, nil, 12)
	if rr.Events.SCFetches == 0 {
		t.Error("OinO mode must fetch from the SC")
	}
	if ri.Events.SCFetches != 0 {
		t.Error("plain InO mode must not fetch from the SC")
	}
	if rr.Events.L1IAccess >= ri.Events.L1IAccess {
		t.Error("OinO mode should cut L1I accesses (trace blocks come from the SC)")
	}
	if rr.Events.BPredLookups >= ri.Events.BPredLookups {
		t.Error("OinO mode should cut branch predictor lookups")
	}
}

func TestOinOKind(t *testing.T) {
	if OinOKind(true).String() != "OinO" || OinOKind(false).String() != "InO" {
		t.Error("OinOKind mapping wrong")
	}
}

func TestLoadLatencyUsesWalkers(t *testing.T) {
	tr := &trace.Trace{ID: 206, Stability: 0.9,
		Streams: []trace.StreamSpec{{Kind: trace.StreamRandom, Base: 0, WorkingSet: 8 << 20}},
		Insts: []isa.Inst{
			{Op: isa.Load, Dst: 1, Src1: isa.NoReg, MemStream: 0},
			{Op: isa.IntALU, Dst: 2, Src1: 1},
			{Op: isa.Branch, Dst: isa.NoReg, Src1: 2},
		}}
	g := trace.BuildDepGraph(tr)
	_, ci := cores("walkers")
	// Without walkers every load is an L1 hit; with a huge random working
	// set, most loads miss.
	fast := ci.MeasureTrace(tr, g, nil, 12)
	ws := []*mem.Walker{mem.NewWalker(tr.Streams[0], xrand.New(8))}
	slow := ci.MeasureTrace(tr, g, ws, 12)
	if slow.CyclesPerIter <= fast.CyclesPerIter+10 {
		t.Errorf("memory-bound trace (%v cyc/iter) should be far slower than L1-hit (%v)",
			slow.CyclesPerIter, fast.CyclesPerIter)
	}
}
