package program

import (
	"testing"

	"repro/internal/ino"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/xrand"
)

// TestReplayQuality verifies the core Mirage premise (Section 1): an InO
// core replaying a memoized OoO schedule reaches a large fraction of OoO
// performance — far above plain in-order execution — on memoizable
// (stable, replayable) traces.
func TestReplayQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("replay sweep is slow")
	}
	var sumRatio, sumInORatio float64
	var count int
	for _, b := range Suite() {
		if b.Params.Category != HPD {
			continue
		}
		var cycO, cycR, cycI, insts float64
		for _, l := range b.Phases[0].Loops {
			if l.Trace.Stability == 0 {
				continue
			}
			h := mem.NewHierarchy()
			co := ooo.New(h, xrand.NewString("rq-ooo"))
			ci := ino.New(h, xrand.NewString("rq-ino"))
			ws := makeWalkers(l.Trace, "rq")
			co.MeasureTrace(l.Trace, l.Deps, ws, 150) // warm
			ro := co.MeasureTrace(l.Trace, l.Deps, ws, 12)
			if !ro.Schedule.Replayable() {
				continue
			}
			rr := ci.MeasureReplay(l.Trace, l.Deps, ro.Schedule, ws, 12)
			ri := ci.MeasureTrace(l.Trace, l.Deps, ws, 12)
			n := float64(l.Trace.Len())
			insts += n
			cycO += ro.CyclesPerIter
			cycR += rr.CyclesPerIter
			cycI += ri.CyclesPerIter
		}
		if insts == 0 {
			continue
		}
		ratio := cycO / cycR  // replay perf relative to OoO
		inoRat := cycO / cycI // plain InO relative to OoO
		t.Logf("%-12s replay/OoO=%.2f  InO/OoO=%.2f", b.Name, ratio, inoRat)
		sumRatio += ratio
		sumInORatio += inoRat
		count++
	}
	avg := sumRatio / float64(count)
	avgInO := sumInORatio / float64(count)
	t.Logf("HPD average: replay=%.2f of OoO (plain InO=%.2f)", avg, avgInO)
	if avg < 0.75 {
		t.Errorf("average replay performance %.2f of OoO; want >= 0.75 (paper: up to 0.90)", avg)
	}
	if avg <= avgInO+0.2 {
		t.Errorf("replay (%.2f) should be far above plain InO (%.2f)", avg, avgInO)
	}
}
