package program

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/ino"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/xrand"
)

// TestPowerCalibration pins per-mode power and per-iteration energy for a
// representative memoizable trace, end-to-end through the real engines:
// the paper reports OoO ~2.1x OinO and OinO ~2.4x InO power, and OinO
// energy well below both alternatives for the same work.
func TestPowerCalibration(t *testing.T) {
	b := ByName("hmmer")
	l := b.Phases[0].Loops[0]
	h := mem.NewHierarchy()
	co := ooo.New(h, xrand.NewString("p-ooo"))
	ci := ino.New(h, xrand.NewString("p-ino"))
	ws := makeWalkers(l.Trace, "p")
	co.MeasureTrace(l.Trace, l.Deps, ws, 150)
	ro := co.MeasureTrace(l.Trace, l.Deps, ws, 24)
	ri := ci.MeasureTrace(l.Trace, l.Deps, ws, 24)
	rr := ci.MeasureReplay(l.Trace, l.Deps, ro.Schedule, ws, 24)

	eO := energy.Compute(energy.KindOoO, ro.Events)
	eI := energy.Compute(energy.KindInO, ri.Events)
	eR := energy.Compute(energy.KindOinO, rr.Events)
	pO := eO.Total() / float64(ro.Events.Cycles)
	pI := eI.Total() / float64(ri.Events.Cycles)
	pR := eR.Total() / float64(rr.Events.Cycles)
	t.Logf("power pJ/cyc: OoO=%.1f InO=%.1f OinO=%.1f | OoO/OinO=%.2f OinO/InO=%.2f OoO/InO=%.2f",
		pO, pI, pR, pO/pR, pR/pI, pO/pI)
	t.Logf("energy/iter: OoO=%.0f InO=%.0f OinO=%.0f | OinO/OoO=%.2f InO/OoO=%.2f",
		eO.Total()/24, eI.Total()/24, eR.Total()/24, eR.Total()/eO.Total(), eI.Total()/eO.Total())
	t.Logf("cyc/iter: OoO=%.1f InO=%.1f OinO=%.1f", ro.CyclesPerIter, ri.CyclesPerIter, rr.CyclesPerIter)

	if r := pO / pR; r < 1.8 || r > 3.5 {
		t.Errorf("OoO/OinO power ratio %.2f outside [1.8, 3.5] (paper: 2.1)", r)
	}
	if r := pR / pI; r < 1.5 || r > 3.0 {
		t.Errorf("OinO/InO power ratio %.2f outside [1.5, 3.0] (paper: 2.4)", r)
	}
	if eR.Total() >= eO.Total() {
		t.Errorf("OinO energy per work (%.0f) must be under OoO (%.0f)", eR.Total(), eO.Total())
	}
	if eR.Total() >= eI.Total() {
		t.Errorf("OinO energy per work (%.0f) should be under plain InO (%.0f)", eR.Total(), eI.Total())
	}
}
