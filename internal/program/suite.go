// Suite definition: the 26 SPEC-CPU2006-named benchmarks from Table 1 with
// per-benchmark parameters chosen to reproduce each program's published
// microarchitectural character (ILP, MLP, branch behaviour, memoizability).
// Calibration tests in this package verify that the generated suite lands
// in the paper's HPD/LPD bands.

package program

import (
	"sort"
	"sync"

	"repro/internal/branch"
)

// suiteParams returns the parameter table. HPD benchmarks get blocked
// chain layouts and/or memory-level parallelism that only dynamic
// reordering extracts; LPD benchmarks get interleaved/serial layouts,
// unpredictable branches or little exploitable ILP.
func suiteParams() []Params {
	predictable := branch.Behaviour{TakenBias: 0.85, Entropy: 0.02, PatternLen: 8}
	moderate := branch.Behaviour{TakenBias: 0.7, Entropy: 0.15, PatternLen: 12}
	unpredictable := branch.Behaviour{TakenBias: 0.55, Entropy: 0.6, PatternLen: 16}

	return []Params{
		// ------------------------- HPD category -------------------------
		{Name: "cactusADM", Category: HPD, NumPhases: 4, PhaseLen: 2_000_000, LoopsPerPhase: 3,
			TraceLenMin: 60, TraceLenMax: 90, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.7, LoadFrac: 0.22, StoreFrac: 0.08, MemProfile: MemL2Fit, RandomAddrFrac: 0.05,
			Branch: predictable, Stability: 0.97, IrregularFrac: 0.05, AliasRate: 0.002},
		{Name: "bwaves", Category: HPD, NumPhases: 4, PhaseLen: 2_500_000, LoopsPerPhase: 3,
			TraceLenMin: 50, TraceLenMax: 80, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.75, LoadFrac: 0.25, StoreFrac: 0.08, MemProfile: MemL2Fit, RandomAddrFrac: 0.1,
			Branch: predictable, Stability: 0.97, IrregularFrac: 0.04, AliasRate: 0.002},
		{Name: "gamess", Category: HPD, NumPhases: 5, PhaseLen: 1_500_000, LoopsPerPhase: 4,
			TraceLenMin: 40, TraceLenMax: 70, Chains: 5, Layout: LayoutBlocked,
			FPFrac: 0.6, MulFrac: 0.1, LoadFrac: 0.2, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.95, IrregularFrac: 0.08, AliasRate: 0.003},
		{Name: "gromacs", Category: HPD, NumPhases: 4, PhaseLen: 2_000_000, LoopsPerPhase: 4,
			TraceLenMin: 45, TraceLenMax: 75, Chains: 5, Layout: LayoutBlocked,
			FPFrac: 0.65, LoadFrac: 0.22, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.95, IrregularFrac: 0.07, AliasRate: 0.003},
		{Name: "h264ref", Category: HPD, NumPhases: 5, PhaseLen: 1_250_000, LoopsPerPhase: 4,
			TraceLenMin: 35, TraceLenMax: 60, Chains: 5, Layout: LayoutBlocked,
			FPFrac: 0.1, MulFrac: 0.15, LoadFrac: 0.3, StoreFrac: 0.1, MemProfile: MemL2Fit, RandomAddrFrac: 0.1,
			Branch: moderate, Stability: 0.92, IrregularFrac: 0.1, AliasRate: 0.01},
		{Name: "hmmer", Category: HPD, NumPhases: 1, PhaseLen: 4_000_000, LoopsPerPhase: 3,
			TraceLenMin: 60, TraceLenMax: 100, Chains: 8, Layout: LayoutBlocked,
			FPFrac: 0.05, MulFrac: 0.1, LoadFrac: 0.25, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.98, IrregularFrac: 0.02, AliasRate: 0.001},
		{Name: "leslie3d", Category: HPD, NumPhases: 4, PhaseLen: 2_000_000, LoopsPerPhase: 3,
			TraceLenMin: 55, TraceLenMax: 85, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.7, LoadFrac: 0.24, StoreFrac: 0.08, MemProfile: MemL2Fit, RandomAddrFrac: 0.05,
			Branch: predictable, Stability: 0.96, IrregularFrac: 0.05, AliasRate: 0.002},
		{Name: "libquantum", Category: HPD, NumPhases: 1, PhaseLen: 4_000_000, LoopsPerPhase: 2,
			TraceLenMin: 30, TraceLenMax: 50, Chains: 4, Layout: LayoutBlocked,
			FPFrac: 0.0, LoadFrac: 0.35, StoreFrac: 0.15, MemProfile: MemBound, RandomAddrFrac: 0.0,
			Branch: predictable, Stability: 0.98, IrregularFrac: 0.02, AliasRate: 0.001},
		{Name: "mcf", Category: HPD, NumPhases: 5, PhaseLen: 1_500_000, LoopsPerPhase: 4,
			TraceLenMin: 30, TraceLenMax: 55, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.0, LoadFrac: 0.3, StoreFrac: 0.08, MemProfile: MemBound, RandomAddrFrac: 0.5,
			// mcf: the OoO wins via MLP around irregular long-latency loads,
			// but those same loads make its schedules unstable (Section 2.2).
			Branch: moderate, Stability: 0.45, IrregularFrac: 0.3, AliasRate: 0.03},
		{Name: "milc", Category: HPD, NumPhases: 4, PhaseLen: 2_000_000, LoopsPerPhase: 3,
			TraceLenMin: 50, TraceLenMax: 80, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.6, LoadFrac: 0.28, StoreFrac: 0.1, MemProfile: MemBound, RandomAddrFrac: 0.05,
			Branch: predictable, Stability: 0.95, IrregularFrac: 0.05, AliasRate: 0.002},
		{Name: "povray", Category: HPD, NumPhases: 5, PhaseLen: 1_250_000, LoopsPerPhase: 4,
			TraceLenMin: 40, TraceLenMax: 65, Chains: 5, Layout: LayoutBlocked,
			FPFrac: 0.55, MulFrac: 0.1, LoadFrac: 0.2, StoreFrac: 0.08, MemProfile: MemL1Fit,
			Branch: moderate, Stability: 0.9, IrregularFrac: 0.12, AliasRate: 0.008},
		{Name: "tonto", Category: HPD, NumPhases: 4, PhaseLen: 1_750_000, LoopsPerPhase: 4,
			TraceLenMin: 45, TraceLenMax: 75, Chains: 5, Layout: LayoutBlocked,
			FPFrac: 0.6, LoadFrac: 0.22, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.94, IrregularFrac: 0.08, AliasRate: 0.004},
		{Name: "zeusmp", Category: HPD, NumPhases: 4, PhaseLen: 2_000_000, LoopsPerPhase: 3,
			TraceLenMin: 55, TraceLenMax: 85, Chains: 6, Layout: LayoutBlocked,
			FPFrac: 0.65, LoadFrac: 0.24, StoreFrac: 0.09, MemProfile: MemL2Fit, RandomAddrFrac: 0.05,
			Branch: predictable, Stability: 0.96, IrregularFrac: 0.05, AliasRate: 0.002},

		// ------------------------- LPD category -------------------------
		{Name: "GemsFDTD", Category: LPD, NumPhases: 2, PhaseLen: 2_000_000, LoopsPerPhase: 3,
			TraceLenMin: 50, TraceLenMax: 80, Chains: 6, Layout: LayoutInterleaved,
			FPFrac: 0.6, LoadFrac: 0.2, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.95, IrregularFrac: 0.06, AliasRate: 0.003},
		{Name: "astar", Category: LPD, NumPhases: 3, PhaseLen: 1_250_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.05, LoadFrac: 0.3, StoreFrac: 0.08, MemProfile: MemL1Fit, RandomAddrFrac: 0.2,
			// astar: data-dependent branches, inherently unmemoizable.
			Branch: unpredictable, Stability: 0.15, IrregularFrac: 0.55, AliasRate: 0.05},
		{Name: "bzip2", Category: LPD, NumPhases: 5, PhaseLen: 900_000, LoopsPerPhase: 3,
			TraceLenMin: 35, TraceLenMax: 60, Chains: 4, Layout: LayoutInterleaved,
			// bzip2: long stable loops separated by sharp phase changes
			// (the Figure 5 case study).
			FPFrac: 0.0, MulFrac: 0.05, LoadFrac: 0.28, StoreFrac: 0.12, MemProfile: MemL1Fit,
			Branch: moderate, Stability: 0.96, IrregularFrac: 0.06, AliasRate: 0.004},
		{Name: "calculix", Category: LPD, NumPhases: 2, PhaseLen: 1_750_000, LoopsPerPhase: 4,
			TraceLenMin: 45, TraceLenMax: 70, Chains: 5, Layout: LayoutInterleaved,
			FPFrac: 0.55, LoadFrac: 0.22, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.93, IrregularFrac: 0.08, AliasRate: 0.004},
		{Name: "dealII", Category: LPD, NumPhases: 3, PhaseLen: 1_250_000, LoopsPerPhase: 4,
			TraceLenMin: 40, TraceLenMax: 65, Chains: 4, Layout: LayoutInterleaved,
			FPFrac: 0.45, LoadFrac: 0.25, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: moderate, Stability: 0.9, IrregularFrac: 0.12, AliasRate: 0.006},
		{Name: "gcc", Category: LPD, NumPhases: 8, PhaseLen: 450_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			// gcc: schedules repeat only over sub-million-cycle windows —
			// rapid phase turnover makes memoization go stale fast
			// (the ping-pong case for the ΔSC-MPKI decay factor).
			FPFrac: 0.0, LoadFrac: 0.3, StoreFrac: 0.12, MemProfile: MemL1Fit, RandomAddrFrac: 0.1,
			Branch: moderate, Stability: 0.85, IrregularFrac: 0.25, AliasRate: 0.01},
		{Name: "gobmk", Category: LPD, NumPhases: 4, PhaseLen: 750_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.0, LoadFrac: 0.26, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: unpredictable, Stability: 0.4, IrregularFrac: 0.4, AliasRate: 0.02},
		{Name: "namd", Category: LPD, NumPhases: 1, PhaseLen: 4_000_000, LoopsPerPhase: 3,
			TraceLenMin: 50, TraceLenMax: 80, Chains: 6, Layout: LayoutInterleaved,
			FPFrac: 0.6, MulFrac: 0.1, LoadFrac: 0.22, StoreFrac: 0.08, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.97, IrregularFrac: 0.03, AliasRate: 0.002},
		{Name: "omnetpp", Category: LPD, NumPhases: 4, PhaseLen: 900_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.0, LoadFrac: 0.32, StoreFrac: 0.1, MemProfile: MemL1Fit, RandomAddrFrac: 0.2,
			Branch: moderate, Stability: 0.7, IrregularFrac: 0.25, AliasRate: 0.015},
		{Name: "perlbench", Category: LPD, NumPhases: 4, PhaseLen: 900_000, LoopsPerPhase: 5,
			TraceLenMin: 30, TraceLenMax: 50, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.0, LoadFrac: 0.28, StoreFrac: 0.12, MemProfile: MemL1Fit,
			Branch: moderate, Stability: 0.8, IrregularFrac: 0.2, AliasRate: 0.01},
		{Name: "sjeng", Category: LPD, NumPhases: 3, PhaseLen: 1_000_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.0, LoadFrac: 0.24, StoreFrac: 0.08, MemProfile: MemL1Fit,
			Branch: unpredictable, Stability: 0.5, IrregularFrac: 0.35, AliasRate: 0.02},
		{Name: "wrf", Category: LPD, NumPhases: 2, PhaseLen: 1_750_000, LoopsPerPhase: 4,
			TraceLenMin: 45, TraceLenMax: 75, Chains: 5, Layout: LayoutInterleaved,
			FPFrac: 0.55, LoadFrac: 0.2, StoreFrac: 0.1, MemProfile: MemL1Fit,
			Branch: predictable, Stability: 0.93, IrregularFrac: 0.08, AliasRate: 0.004},
		{Name: "xalancbmk", Category: LPD, NumPhases: 4, PhaseLen: 900_000, LoopsPerPhase: 5,
			TraceLenMin: 25, TraceLenMax: 45, Chains: 3, Layout: LayoutInterleaved,
			FPFrac: 0.0, LoadFrac: 0.3, StoreFrac: 0.1, MemProfile: MemL1Fit, RandomAddrFrac: 0.15,
			Branch: moderate, Stability: 0.75, IrregularFrac: 0.22, AliasRate: 0.012},
	}
}

// suiteOnce guards the lazily generated suite: experiment jobs resolve
// benchmarks from concurrent goroutines (internal/runner), so generation
// must happen exactly once. Generation is deterministic (each benchmark
// seeds its own xrand stream from its name), so which goroutine wins the
// race to generate changes nothing. The *Benchmark values are shared and
// treated as immutable by every simulation layer.
var (
	suiteOnce  sync.Once
	suiteCache map[string]*Benchmark
)

// Suite generates (and caches) the full benchmark suite. Safe for
// concurrent use.
func Suite() []*Benchmark {
	params := suiteParams()
	suiteOnce.Do(func() {
		suiteCache = make(map[string]*Benchmark, len(params))
		for _, p := range params {
			suiteCache[p.Name] = Generate(p)
		}
	})
	out := make([]*Benchmark, 0, len(params))
	for _, p := range params {
		out = append(out, suiteCache[p.Name])
	}
	return out
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range Suite() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns the suite's benchmark names, sorted.
func Names() []string {
	params := suiteParams()
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// ByCategory returns the names in the given category, sorted.
func ByCategory(c Category) []string {
	var out []string
	for _, p := range suiteParams() {
		if p.Category == c {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}
