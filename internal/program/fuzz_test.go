package program_test

// FuzzProgramGen drives the workload generator with arbitrary parameters
// and checks the structural invariants every consumer of a Benchmark relies
// on: dependence edges point strictly backwards, loop-carried edges stay in
// range, and the OinO replay engine's register-lifetime sweep accepts every
// generated trace without panicking.

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/pipeline"
	"repro/internal/program"
)

// paramsFromBytes derives generator parameters from fuzz input. Values are
// clamped to the bounds the suite itself stays within, but deliberately
// cover the degenerate edges (zero phases, one-instruction traces, empty
// names) so Generate's own normalization is exercised.
func paramsFromBytes(data []byte) program.Params {
	b := func(i int) int {
		if i < len(data) {
			return int(data[i])
		}
		return 0
	}
	frac := func(i int) float64 { return float64(b(i)) / 255 }
	nameLen := b(0) % 65
	if nameLen > len(data) {
		nameLen = len(data)
	}
	tl := 1 + b(4)%300
	return program.Params{
		Name:           string(data[:nameLen]),
		Category:       program.Category(b(1) % 4),
		NumPhases:      b(2) % 5,          // 0 hits the <=0 default path
		LoopsPerPhase:  b(3) % 7,          // 0 likewise
		PhaseLen:       int64(b(2)) * 500, // 0..127500, 0 hits defaults
		TraceLenMin:    tl,
		TraceLenMax:    tl + b(5)%50,
		Chains:         b(6) % 17, // 0 hits the default path
		Layout:         program.Layout(b(7) % 3),
		FPFrac:         frac(8),
		MulFrac:        frac(9) / 2,
		LoadFrac:       frac(10) / 2,
		StoreFrac:      frac(11) / 4,
		MemProfile:     program.MemProfile(b(12) % 4),
		RandomAddrFrac: frac(13),
		Branch: branch.Behaviour{
			TakenBias:  frac(14),
			Entropy:    frac(15),
			PatternLen: b(16) % 32,
		},
		Stability:     frac(17),
		IrregularFrac: frac(18),
		AliasRate:     frac(19) / 10,
	}
}

func FuzzProgramGen(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("mcf-like\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d"))
	f.Fuzz(func(t *testing.T, data []byte) {
		bench := program.Generate(paramsFromBytes(data))
		if bench == nil {
			t.Fatal("Generate returned nil")
		}
		if len(bench.Phases) == 0 {
			t.Fatal("benchmark has no phases")
		}
		if bench.PhaseLen() <= 0 {
			t.Fatalf("non-positive phase span %d", bench.PhaseLen())
		}
		for pi, ph := range bench.Phases {
			for li, loop := range ph.Loops {
				tr, deps := loop.Trace, loop.Deps
				if tr == nil || deps == nil {
					t.Fatalf("phase %d loop %d: nil trace or deps", pi, li)
				}
				n := len(tr.Insts)
				if n == 0 {
					t.Fatalf("phase %d loop %d: empty trace", pi, li)
				}
				if len(deps.Preds) != n || len(deps.CarriedPreds) != n {
					t.Fatalf("phase %d loop %d: dep graph size %d/%d for %d insts",
						pi, li, len(deps.Preds), len(deps.CarriedPreds), n)
				}
				for j := 0; j < n; j++ {
					// In-trace dependences must point strictly backwards:
					// a forward or self edge would deadlock the pipeline
					// engine's ready-list.
					for _, p := range deps.Preds[j] {
						if p < 0 || p >= j {
							t.Fatalf("phase %d loop %d inst %d: pred %d not in [0,%d)",
								pi, li, j, p, j)
						}
					}
					// Loop-carried producers come from the previous
					// iteration, so any in-range index is legal.
					for _, p := range deps.CarriedPreds[j] {
						if p < 0 || p >= n {
							t.Fatalf("phase %d loop %d inst %d: carried pred %d not in [0,%d)",
								pi, li, j, p, n)
						}
					}
				}
				// The replay engine's register-lifetime sweep must accept
				// the trace under the identity schedule.
				order := make([]uint16, n)
				for j := range order {
					order[j] = uint16(j)
				}
				if v := pipeline.MaxLiveVersions(tr, order); v < 1 {
					t.Fatalf("phase %d loop %d: MaxLiveVersions = %d, want >= 1", pi, li, v)
				}
			}
		}
	})
}
