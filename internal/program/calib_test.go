package program

import (
	"testing"

	"repro/internal/ino"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// measureRatio runs every loop of every phase of b on a fresh OoO and a
// fresh InO core and returns the weighted InO/OoO IPC ratio plus raw IPCs.
func measureRatio(tb testing.TB, b *Benchmark) (ratio, ipcOoO, ipcInO float64) {
	tb.Helper()
	var cycO, cycI, insts float64
	for _, ph := range b.Phases {
		for _, l := range ph.Loops {
			hO := mem.NewHierarchy()
			hI := mem.NewHierarchy()
			co := ooo.New(hO, xrand.NewString("calib-ooo-"+b.Name))
			ci := ino.New(hI, xrand.NewString("calib-ino-"+b.Name))
			wO := makeWalkers(l.Trace, "o")
			wI := makeWalkers(l.Trace, "i")
			// Warm the caches over many iterations (steady-state loops have
			// their working sets resident), then measure steady state.
			co.MeasureTrace(l.Trace, l.Deps, wO, 150)
			ci.MeasureTrace(l.Trace, l.Deps, wI, 150)
			ro := co.MeasureTrace(l.Trace, l.Deps, wO, 12)
			ri := ci.MeasureTrace(l.Trace, l.Deps, wI, 12)
			n := float64(l.Trace.Len()) * l.Weight
			insts += n
			cycO += ro.CyclesPerIter * l.Weight
			cycI += ri.CyclesPerIter * l.Weight
		}
	}
	ipcOoO = insts / cycO
	ipcInO = insts / cycI
	return ipcInO / ipcOoO, ipcOoO, ipcInO
}

func makeWalkers(t *trace.Trace, tag string) []*mem.Walker {
	ws := make([]*mem.Walker, len(t.Streams))
	for i, s := range t.Streams {
		ws[i] = mem.NewWalker(s, xrand.NewString(tag))
	}
	return ws
}

// TestSuiteCategoryCalibration verifies the Table 1 classification emerges
// from the generated workloads: HPD benchmarks below the 60% IPC-ratio
// threshold, LPD benchmarks at or above it.
func TestSuiteCategoryCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ratio, ipcO, ipcI := measureRatio(t, b)
			t.Logf("%-12s ratio=%.2f ipcOoO=%.2f ipcInO=%.2f want=%v",
				b.Name, ratio, ipcO, ipcI, b.Params.Category)
			const slack = 0.06
			switch b.Params.Category {
			case HPD:
				if ratio >= 0.60+slack {
					t.Errorf("HPD benchmark %s has IPC ratio %.2f (want < 0.60)", b.Name, ratio)
				}
			case LPD:
				if ratio < 0.60-slack {
					t.Errorf("LPD benchmark %s has IPC ratio %.2f (want >= 0.60)", b.Name, ratio)
				}
			}
		})
	}
}
