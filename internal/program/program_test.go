package program

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 26 {
		t.Fatalf("suite has %d benchmarks, want the 26 of Table 1", len(suite))
	}
	hpd, lpd := ByCategory(HPD), ByCategory(LPD)
	if len(hpd) != 13 || len(lpd) != 13 {
		t.Errorf("category sizes %d/%d, want 13/13", len(hpd), len(lpd))
	}
	for _, want := range []string{"hmmer", "mcf", "bzip2", "gcc", "astar", "libquantum"} {
		if ByName(want) == nil {
			t.Errorf("benchmark %q missing", want)
		}
	}
	if ByName("doom") != nil {
		t.Error("phantom benchmark resolved")
	}
}

func TestGeneratedTracesValid(t *testing.T) {
	for _, b := range Suite() {
		for pi, ph := range b.Phases {
			if len(ph.Loops) == 0 {
				t.Errorf("%s phase %d has no loops", b.Name, pi)
			}
			for _, l := range ph.Loops {
				if err := l.Trace.Validate(); err != nil {
					t.Errorf("%s: %v", b.Name, err)
				}
				if l.Weight <= 0 {
					t.Errorf("%s: non-positive loop weight", b.Name)
				}
				if l.Deps == nil {
					t.Errorf("%s: missing dependence graph", b.Name)
				}
				if n := l.Trace.Len(); n < b.Params.TraceLenMin || n > b.Params.TraceLenMax {
					t.Errorf("%s: trace length %d outside [%d, %d]",
						b.Name, n, b.Params.TraceLenMin, b.Params.TraceLenMax)
				}
				if l.Trace.Insts[l.Trace.Len()-1].Op != isa.Branch {
					t.Errorf("%s: trace does not end in a backward branch", b.Name)
				}
			}
		}
	}
}

func TestPhasesOrdered(t *testing.T) {
	for _, b := range Suite() {
		last := int64(-1)
		for _, ph := range b.Phases {
			if ph.StartInst <= last {
				t.Errorf("%s: phase starts not strictly increasing", b.Name)
			}
			last = ph.StartInst
		}
		if b.Phases[0].StartInst != 0 {
			t.Errorf("%s: first phase starts at %d", b.Name, b.Phases[0].StartInst)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	b := ByName("bzip2")
	if got := b.PhaseAt(0); got != 0 {
		t.Errorf("PhaseAt(0) = %d", got)
	}
	second := b.Phases[1].StartInst
	if got := b.PhaseAt(second); got != 1 {
		t.Errorf("PhaseAt(start of phase 1) = %d", got)
	}
	if got := b.PhaseAt(second - 1); got != 0 {
		t.Errorf("PhaseAt(just before phase 1) = %d", got)
	}
	// Execution wraps around after the program restarts.
	if got := b.PhaseAt(b.PhaseLen()); got != 0 {
		t.Errorf("PhaseAt(wrap) = %d", got)
	}
}

func TestIrregularWeightShare(t *testing.T) {
	b := ByName("astar") // IrregularFrac 0.55
	for pi, ph := range b.Phases {
		var wIrr, wAll float64
		for _, l := range ph.Loops {
			wAll += l.Weight
			if l.Trace.Stability == 0 {
				wIrr += l.Weight
			}
		}
		if wIrr == 0 {
			continue // a phase may draw no irregular traces
		}
		share := wIrr / wAll
		if share < 0.4 || share > 0.7 {
			t.Errorf("astar phase %d irregular share %.2f, want ~0.55", pi, share)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := suiteParams()[0]
	a, b := Generate(p), Generate(p)
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("phase counts differ")
	}
	for i := range a.Phases {
		for j := range a.Phases[i].Loops {
			ta, tb := a.Phases[i].Loops[j].Trace, b.Phases[i].Loops[j].Trace
			if ta.ID != tb.ID || ta.Len() != tb.Len() || ta.MispredictRate != tb.MispredictRate {
				t.Fatalf("generation not deterministic at phase %d loop %d", i, j)
			}
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	b := Generate(Params{Name: "tiny"})
	if len(b.Phases) == 0 || len(b.Phases[0].Loops) == 0 {
		t.Fatal("defaulted generation produced nothing")
	}
	if b.PhaseLen() <= 0 {
		t.Error("no total length")
	}
}

func TestSharedStreamPool(t *testing.T) {
	// Traces of one benchmark must draw from a shared pool of streams —
	// the combined footprint is bounded by the pool, not by trace count.
	b := ByName("bzip2")
	bases := map[uint64]bool{}
	for _, ph := range b.Phases {
		for _, l := range ph.Loops {
			for _, s := range l.Trace.Streams {
				bases[s.Base] = true
			}
		}
	}
	if len(bases) > 4 {
		t.Errorf("bzip2 touches %d distinct stream regions, want <= pool size 4", len(bases))
	}
}

func TestRegisterVersionsBounded(t *testing.T) {
	// The generator's register rotation keeps every trace within the OinO
	// PRF version budget for the common case (see the replayability test
	// for the end-to-end check through real schedules).
	for _, b := range Suite() {
		for _, ph := range b.Phases {
			for _, l := range ph.Loops {
				for _, in := range l.Trace.Insts {
					for _, r := range []isa.Reg{in.Dst, in.Src1, in.Src2} {
						if r != isa.NoReg && !r.Valid() {
							t.Fatalf("%s: register %d invalid", b.Name, r)
						}
					}
				}
			}
		}
	}
}

func TestMemProfiles(t *testing.T) {
	check := func(name string, minWS, maxWS uint64) {
		b := ByName(name)
		for _, ph := range b.Phases {
			for _, l := range ph.Loops {
				for _, s := range l.Trace.Streams {
					if s.WorkingSet < minWS || s.WorkingSet > maxWS {
						t.Errorf("%s stream working set %d outside [%d, %d]",
							name, s.WorkingSet, minWS, maxWS)
					}
				}
			}
		}
	}
	check("hmmer", 1, 32<<10)          // L1-resident
	check("cactusADM", 64<<10, 1<<20)  // L2-resident
	check("libquantum", 4<<20, 32<<20) // memory-bound
}

func TestCategoriesMatchTable1(t *testing.T) {
	wantHPD := map[string]bool{
		"cactusADM": true, "bwaves": true, "gamess": true, "gromacs": true,
		"h264ref": true, "hmmer": true, "leslie3d": true, "libquantum": true,
		"mcf": true, "milc": true, "povray": true, "tonto": true, "zeusmp": true,
	}
	for _, b := range Suite() {
		if got := b.Params.Category == HPD; got != wantHPD[b.Name] {
			t.Errorf("%s classified %v, Table 1 says HPD=%v", b.Name, b.Params.Category, wantHPD[b.Name])
		}
	}
}

func TestMispredictRatesReflectBehaviour(t *testing.T) {
	stable := ByName("hmmer")
	chaotic := ByName("astar")
	avg := func(b *Benchmark) float64 {
		var sum float64
		var n int
		for _, ph := range b.Phases {
			for _, l := range ph.Loops {
				sum += l.Trace.MispredictRate
				n++
			}
		}
		return sum / float64(n)
	}
	if avg(stable) >= avg(chaotic) {
		t.Errorf("hmmer mispredicts (%.3f) should be below astar (%.3f)", avg(stable), avg(chaotic))
	}
}

func TestStreamSpecsValid(t *testing.T) {
	for _, b := range Suite() {
		for _, ph := range b.Phases {
			for _, l := range ph.Loops {
				for si, s := range l.Trace.Streams {
					if s.WorkingSet == 0 {
						t.Errorf("%s stream %d: zero working set", b.Name, si)
					}
					if s.Kind == trace.StreamStrided && s.Stride == 0 {
						t.Errorf("%s stream %d: strided with zero stride", b.Name, si)
					}
				}
			}
		}
	}
}
