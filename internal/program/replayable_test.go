package program

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/xrand"
)

// TestReplayableFraction verifies that the generated suite's stable traces
// overwhelmingly produce schedules the OinO hardware can actually replay
// (PRF-version and LSQ bounds) — the precondition for the memoization wins
// of Section 5.
func TestReplayableFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("replayability sweep is slow")
	}
	totalOK, totalAll := 0, 0
	for _, b := range Suite() {
		tot, ok, badV, badL := 0, 0, 0, 0
		for _, ph := range b.Phases {
			for _, l := range ph.Loops {
				if l.Trace.Stability == 0 {
					continue
				}
				h := mem.NewHierarchy()
				co := ooo.New(h, xrand.NewString("diag"))
				ws := makeWalkers(l.Trace, "diag")
				co.MeasureTrace(l.Trace, l.Deps, ws, 100)
				r := co.MeasureTrace(l.Trace, l.Deps, ws, 12)
				tot++
				if r.Schedule.Replayable() {
					ok++
				} else {
					if r.Schedule.MaxVersions > 4 {
						badV++
					}
					if len(r.Schedule.MemOrder)/r.Schedule.Span > 32 {
						badL++
					}
				}
			}
		}
		t.Logf("%-12s replayable %d/%d (versions-limited %d, lsq-limited %d)", b.Name, ok, tot, badV, badL)
		totalOK += ok
		totalAll += tot
	}
	if frac := float64(totalOK) / float64(totalAll); frac < 0.85 {
		t.Errorf("only %.0f%% of stable traces are replayable; want >= 85%%", frac*100)
	}
}
