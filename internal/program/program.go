// Package program generates the synthetic workload suite standing in for
// SPEC CPU2006 (Section 4.1). Each benchmark is a phase sequence of loop
// traces produced from per-benchmark microarchitectural parameters — ILP
// structure, memory behaviour, branch predictability, schedule stability and
// phase dynamics — calibrated so that the suite reproduces the paper's
// HPD/LPD classification (Table 1) and memoizability profile (Figure 2).
//
// The substitution is sound because every Mirage Cores result depends on
// these distributional properties of the workloads, not on SPEC semantics;
// see DESIGN.md §2.
package program

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Category is the paper's benchmark classification (Table 1).
type Category uint8

const (
	// HPD benchmarks run at under 60% of OoO IPC on the InO.
	HPD Category = iota
	// LPD benchmarks run at 60% or more of OoO IPC on the InO.
	LPD
)

// String implements fmt.Stringer.
func (c Category) String() string {
	if c == HPD {
		return "HPD"
	}
	return "LPD"
}

// Layout is how a trace's dependence chains are laid out in program order.
type Layout uint8

const (
	// LayoutInterleaved round-robins independent chains: the static order
	// already exposes the ILP, so the InO keeps up (LPD-style code).
	LayoutInterleaved Layout = iota
	// LayoutBlocked emits each chain contiguously: only dynamic reordering
	// across chains extracts the ILP (HPD-style code).
	LayoutBlocked
	// LayoutSerial is a single long dependence chain: nobody can help it.
	LayoutSerial
)

// MemProfile coarsely describes a benchmark's data footprint.
type MemProfile uint8

const (
	// MemL1Fit working sets live in the L1.
	MemL1Fit MemProfile = iota
	// MemL2Fit working sets miss the L1 but hit the 2MB L2.
	MemL2Fit
	// MemBound working sets miss the L2; MLP is the performance lever.
	MemBound
)

// Params are the generator knobs for one benchmark.
type Params struct {
	Name     string
	Category Category // intended classification, verified by tests

	// Phase structure.
	NumPhases     int
	LoopsPerPhase int
	// PhaseLen is the mean phase length in instructions.
	PhaseLen int64

	// Trace shape.
	TraceLenMin, TraceLenMax int
	Chains                   int
	Layout                   Layout

	// Operation mix (fractions of non-memory, non-branch instructions).
	FPFrac, MulFrac float64
	// Memory behaviour.
	LoadFrac, StoreFrac float64
	MemProfile          MemProfile
	RandomAddrFrac      float64 // fraction of streams that are pointer-chasing

	// Control behaviour fed to the branch predictor model.
	Branch branch.Behaviour

	// Memoization behaviour.
	Stability     float64 // mean schedule stability across traces
	IrregularFrac float64 // phase weight carried by unstable, non-loop code
	AliasRate     float64 // replay misspeculation probability
}

// Loop is one weighted trace inside a phase.
type Loop struct {
	Trace  *trace.Trace
	Deps   *trace.DepGraph
	Weight float64
}

// Phase is a stable region of execution: a set of loops with weights.
type Phase struct {
	// StartInst is the retired-instruction count at which the phase begins.
	StartInst int64
	Loops     []Loop
}

// Benchmark is one generated application.
type Benchmark struct {
	Name     string
	Params   Params
	Phases   []Phase
	totalLen int64
}

// PhaseAt returns the phase index active at the given instruction count.
// Execution past the last phase boundary wraps around (applications restart
// when they finish early, per Section 4.1).
func (b *Benchmark) PhaseAt(inst int64) int {
	if b.totalLen > 0 {
		inst %= b.totalLen
	}
	idx := 0
	for i := range b.Phases {
		if b.Phases[i].StartInst <= inst {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// PhaseLen returns the total instruction span of one pass over all phases.
func (b *Benchmark) PhaseLen() int64 { return b.totalLen }

// Generate builds the benchmark for p, deterministically from its name.
func Generate(p Params) *Benchmark {
	rng := xrand.NewString("bench:" + p.Name)
	if p.NumPhases <= 0 {
		p.NumPhases = 1
	}
	if p.LoopsPerPhase <= 0 {
		p.LoopsPerPhase = 4
	}
	if p.TraceLenMin <= 0 {
		p.TraceLenMin = 30
	}
	if p.TraceLenMax < p.TraceLenMin {
		p.TraceLenMax = p.TraceLenMin + 40
	}
	if p.Chains <= 0 {
		p.Chains = 4
	}
	if p.PhaseLen <= 0 {
		p.PhaseLen = 2_000_000
	}

	b := &Benchmark{Name: p.Name, Params: p}
	var nextID trace.ID = trace.ID(xrand.NewString(p.Name).Uint64() << 16)
	pool := genStreamPool(p, rng)
	start := int64(0)
	for ph := 0; ph < p.NumPhases; ph++ {
		phase := Phase{StartInst: start}
		for l := 0; l < p.LoopsPerPhase; l++ {
			irregular := rng.Float64() < p.IrregularFrac
			t := genTrace(p, nextID, irregular, pool, rng)
			nextID++
			phase.Loops = append(phase.Loops, Loop{
				Trace:  t,
				Deps:   trace.BuildDepGraph(t),
				Weight: 0.5 + rng.Float64(),
			})
		}
		// Irregular code carries its configured share of the phase weight.
		normalizeIrregularWeight(&phase, p.IrregularFrac)
		b.Phases = append(b.Phases, phase)
		// Phase lengths vary ±50% around the mean.
		span := p.PhaseLen/2 + int64(rng.Float64()*float64(p.PhaseLen))
		start += span
	}
	b.totalLen = start
	return b
}

// normalizeIrregularWeight rescales loop weights so unstable traces carry
// exactly the irregular fraction of the phase's execution.
func normalizeIrregularWeight(ph *Phase, irregularFrac float64) {
	var wIrr, wReg float64
	for _, l := range ph.Loops {
		if l.Trace.Stability == 0 {
			wIrr += l.Weight
		} else {
			wReg += l.Weight
		}
	}
	if wIrr == 0 || wReg == 0 {
		return
	}
	scaleIrr := irregularFrac / wIrr
	scaleReg := (1 - irregularFrac) / wReg
	for i := range ph.Loops {
		if ph.Loops[i].Trace.Stability == 0 {
			ph.Loops[i].Weight *= scaleIrr
		} else {
			ph.Loops[i].Weight *= scaleReg
		}
	}
}

// genStreamPool builds the benchmark's shared data structures: a small pool
// of address streams that all of its loops walk. Loops of one program touch
// the same arrays and heaps, so the benchmark's combined footprint — not
// one loop's — is what must fit each cache level.
func genStreamPool(p Params, rng *xrand.Rand) []trace.StreamSpec {
	const poolSize = 4
	base := xrand.NewString("streams:"+p.Name).Uint64() & 0x3fffffffffff
	pool := make([]trace.StreamSpec, poolSize)
	for s := range pool {
		spec := trace.StreamSpec{
			Base:   base + uint64(s)<<32,
			Stride: 8,
		}
		switch p.MemProfile {
		case MemL1Fit:
			spec.WorkingSet = 6 << 10
		case MemL2Fit:
			// Dense walk over an L2-resident set: most accesses share a
			// line with their predecessor, so the InO's stall-on-use cost
			// stays moderate; random streams (below) defeat that.
			spec.WorkingSet = 256 << 10
			spec.Stride = 8
		case MemBound:
			// Streaming over a memory-resident set: the stride prefetcher
			// catches the pattern, so strided streams mostly pay L2 latency
			// while random streams pay full memory latency.
			spec.WorkingSet = 8 << 20
			spec.Stride = 16
		}
		if rng.Float64() < p.RandomAddrFrac {
			spec.Kind = trace.StreamRandom
		}
		pool[s] = spec
	}
	return pool
}

// genTrace builds one trace per the benchmark parameters.
func genTrace(p Params, id trace.ID, irregular bool, pool []trace.StreamSpec, rng *xrand.Rand) *trace.Trace {
	n := p.TraceLenMin + rng.Intn(p.TraceLenMax-p.TraceLenMin+1)
	t := &trace.Trace{ID: id}

	// This trace walks a random subset of the benchmark's shared streams.
	nStreams := 1 + rng.Intn(3)
	if nStreams > len(pool) {
		nStreams = len(pool)
	}
	first := rng.Intn(len(pool))
	for s := 0; s < nStreams; s++ {
		t.Streams = append(t.Streams, pool[(first+s)%len(pool)])
	}

	chains := p.Chains
	if p.Layout == LayoutSerial {
		chains = 1
	}
	// Register allocation: each chain rotates through a window of registers
	// (as an unrolling compiler would), plus a shared induction register
	// carrying the loop. Wider rotation keeps the number of live renamed
	// versions per architectural register within the OinO PRF bound.
	const rInd = isa.Reg(0)

	type chainState struct {
		regs []isa.Reg
		idx  int
		fp   bool
	}
	cs := make([]chainState, chains)
	nFP := 0
	for c := range cs {
		if rng.Float64() < p.FPFrac {
			cs[c].fp = true
			nFP++
		}
	}
	nInt := chains - nFP
	intPer, fpPer := regsPerChain(isa.NumIntRegs-1, nInt), regsPerChain(isa.NumFPRegs, nFP)
	nextInt, nextFP := isa.Reg(1), isa.Reg(isa.NumIntRegs)
	for c := range cs {
		if cs[c].fp {
			for k := 0; k < fpPer; k++ {
				cs[c].regs = append(cs[c].regs, nextFP)
				nextFP++
			}
		} else {
			for k := 0; k < intPer; k++ {
				cs[c].regs = append(cs[c].regs, nextInt)
				nextInt++
			}
		}
	}

	// Instruction 0: induction update (loop-carried serial dependence).
	t.Insts = append(t.Insts, isa.Inst{Op: isa.IntALU, Dst: rInd, Src1: rInd})

	body := n - 2 // minus induction op and terminating branch
	emitOne := func(c int) {
		st := &cs[c]
		cur := st.regs[st.idx]
		next := st.regs[(st.idx+1)%len(st.regs)]
		in := isa.Inst{Src1: cur, Dst: next}
		r := rng.Float64()
		switch {
		case r < p.LoadFrac:
			in.Op = isa.Load
			in.Src1 = rInd // address from induction
			in.MemStream = uint8(rng.Intn(nStreams))
			// The loaded value feeds the chain: Dst stays st.alt, and the
			// chain's next op consumes it (stall-on-use pressure point).
		case r < p.LoadFrac+p.StoreFrac:
			in.Op = isa.Store
			in.Src1 = cur
			in.Src2 = rInd
			in.Dst = isa.NoReg
			in.MemStream = uint8(rng.Intn(nStreams))
		default:
			if st.fp {
				in.Op = isa.FPMul
				if rng.Float64() < 0.5 {
					in.Op = isa.FPAdd
				}
			} else {
				in.Op = isa.IntALU
				if rng.Float64() < p.MulFrac {
					in.Op = isa.IntMul
				}
			}
		}
		if in.Dst != isa.NoReg {
			st.idx = (st.idx + 1) % len(st.regs)
		}
		t.Insts = append(t.Insts, in)
	}

	switch p.Layout {
	case LayoutBlocked, LayoutSerial:
		per := body / chains
		for c := 0; c < chains; c++ {
			lim := per
			if c == chains-1 {
				lim = body - per*(chains-1)
			}
			for k := 0; k < lim; k++ {
				emitOne(c)
			}
		}
	default: // LayoutInterleaved
		for k := 0; k < body; k++ {
			emitOne(k % chains)
		}
	}

	// Terminating backward branch on the induction variable.
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: rInd})

	// Control behaviour -> concrete mispredict rate via the real predictor.
	t.MispredictRate = branch.MeasureMispredictRate(p.Branch, uint64(id), rng.Fork("br"))

	if irregular {
		t.Stability = 0
		t.MispredictRate = clamp01(t.MispredictRate*2 + 0.02)
	} else {
		t.Stability = clamp01(p.Stability + 0.1*(rng.Float64()-0.5))
	}
	t.AliasRate = p.AliasRate * rng.Float64() * 2
	if t.AliasRate > 1 {
		t.AliasRate = 1
	}
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("program: generated invalid trace: %v", err))
	}
	return t
}

// regsPerChain splits a register bank across chains, keeping the rotation
// window in [2, 5] registers per chain.
func regsPerChain(bank, chains int) int {
	if chains <= 0 {
		return 2
	}
	per := bank / chains
	if per > 5 {
		per = 5
	}
	if per < 2 {
		per = 2
	}
	return per
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
