package core

import (
	"context"
	"testing"

	"repro/internal/program"
)

func tiny(topo Topology, mix []string) Config {
	return Config{
		Topology:       topo,
		Benchmarks:     mix,
		TargetInsts:    300_000,
		IntervalCycles: 20_000,
		Seed:           "core-test",
	}
}

func TestNewArbiter(t *testing.T) {
	for _, p := range []Policy{PolicySCMPKI, PolicyMaxSTP, PolicySCMPKIMaxSTP, PolicyFair, PolicySCMPKIFair} {
		a, err := NewArbiter(p)
		if err != nil || a == nil {
			t.Errorf("policy %q: %v", p, err)
		}
	}
	if _, err := NewArbiter("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunMixValidation(t *testing.T) {
	if _, err := RunMix(context.Background(), Config{Topology: TopologyHomoInO}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RunMix(context.Background(), tiny(TopologyHomoInO, []string{"not-a-benchmark"})); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunMix(context.Background(), Config{Topology: Topology(99), Benchmarks: []string{"bzip2"}}); err == nil {
		t.Error("unknown topology accepted")
	}
	// Mirage clusters keep one producer: NumOoO > 1 must be rejected.
	cfg := tiny(TopologyMirage, []string{"bzip2", "gcc"})
	cfg.NumOoO = 2
	if _, err := RunMix(context.Background(), cfg); err == nil {
		t.Error("multi-producer Mirage accepted")
	}
}

func TestTopologyStrings(t *testing.T) {
	for _, topo := range []Topology{TopologyMirage, TopologyTraditional, TopologyHomoInO, TopologyHomoOoO} {
		if topo.String() == "Topology?" {
			t.Errorf("topology %d unnamed", topo)
		}
	}
}

func TestAreaOrdering(t *testing.T) {
	n := 8
	inO := Area(TopologyHomoInO, n)
	mirage := Area(TopologyMirage, n)
	trad := Area(TopologyTraditional, n)
	ooo := Area(TopologyHomoOoO, n)
	if !(inO < trad && trad < mirage && mirage < ooo) {
		t.Errorf("area ordering violated: InO=%.1f trad=%.1f mirage=%.1f OoO=%.1f",
			inO, trad, mirage, ooo)
	}
	if AreaK(TopologyTraditional, 5, 3) <= AreaK(TopologyTraditional, 5, 1) {
		t.Error("extra OoO cores must add area")
	}
}

func TestRandomMixes(t *testing.T) {
	hpd := map[string]bool{}
	for _, n := range program.ByCategory(program.HPD) {
		hpd[n] = true
	}
	for _, mix := range RandomMixes(MixHPD, 8, 3, "t") {
		if len(mix) != 8 {
			t.Fatalf("mix size %d", len(mix))
		}
		for _, name := range mix {
			if !hpd[name] {
				t.Errorf("HPD mix contains %s", name)
			}
		}
	}
	for _, mix := range RandomMixes(MixLPD, 4, 2, "t") {
		for _, name := range mix {
			if hpd[name] {
				t.Errorf("LPD mix contains %s", name)
			}
		}
	}
	// Determinism: same seed, same mixes.
	a := RandomMixes(MixRandom, 6, 2, "same")
	b := RandomMixes(MixRandom, 6, 2, "same")
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
}

func TestRunMixHomoInO(t *testing.T) {
	mr, err := RunMix(context.Background(), tiny(TopologyHomoInO, []string{"bzip2", "namd"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.PerAppIPC) != 2 {
		t.Fatalf("per-app IPC count %d", len(mr.PerAppIPC))
	}
	for i, ipc := range mr.PerAppIPC {
		if ipc <= 0 || ipc > 3 {
			t.Errorf("app %d IPC %v", i, ipc)
		}
	}
	if mr.OoOActiveFrac != 0 {
		t.Error("Homo-InO reports OoO activity")
	}
	if mr.EnergyPJ <= 0 || mr.AreaMM2 <= 0 {
		t.Error("missing energy/area")
	}
}

func TestOoOReference(t *testing.T) {
	ref, err := OoOReference(context.Background(), []string{"hmmer", "astar"}, 300_000, "ref-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 2 {
		t.Fatalf("ref count %d", len(ref))
	}
	if ref[0] <= ref[1] {
		t.Errorf("hmmer OoO IPC (%v) should beat astar (%v)", ref[0], ref[1])
	}
}

func TestCompareProducesAllConfigs(t *testing.T) {
	mix := []string{"hmmer", "bzip2", "gcc"}
	cmp, err := Compare(context.Background(), mix, Config{TargetInsts: 300_000, IntervalCycles: 20_000, Seed: "cmp"}, ArbitratorSet)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HomoOoO == nil || cmp.HomoInO == nil {
		t.Fatal("missing homogeneous baselines")
	}
	if cmp.HomoOoO.STP != 1 {
		t.Errorf("Homo-OoO STP %v, want 1 by definition", cmp.HomoOoO.STP)
	}
	for _, pt := range ArbitratorSet {
		mr := cmp.ByPolicy[pt.Policy]
		if mr == nil {
			t.Fatalf("policy %s missing", pt.Policy)
		}
		if mr.STP <= 0 {
			t.Errorf("policy %s STP %v", pt.Policy, mr.STP)
		}
	}
	if cmp.HomoInO.STP >= 1 {
		t.Errorf("Homo-InO STP %v should be under 1", cmp.HomoInO.STP)
	}
}

func TestRunMixDeterministic(t *testing.T) {
	cfg := tiny(TopologyMirage, []string{"bzip2", "hmmer"})
	cfg.Policy = PolicySCMPKI
	a, err := RunMix(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerAppIPC {
		if a.PerAppIPC[i] != b.PerAppIPC[i] {
			t.Errorf("IPC differs across identical runs: %v vs %v", a.PerAppIPC, b.PerAppIPC)
		}
	}
	if a.EnergyPJ != b.EnergyPJ {
		t.Error("energy differs across identical runs")
	}
}
