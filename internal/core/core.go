// Package core is the top-level Mirage Cores library: it assembles
// workloads, cluster configurations, arbitration policies and baselines
// into the system evaluated in the paper, and exposes the entry points the
// examples, experiments and benchmarks build on.
//
// The central object is Config: an n-InO-per-OoO cluster description plus a
// workload mix. RunMix simulates it; Baselines simulates the homogeneous
// reference CMPs; CompareArbitrators sweeps scheduling policies on the same
// mix.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/invariant"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// Policy names an arbitration policy.
type Policy string

// The arbitration policies evaluated in Section 5.
const (
	PolicySCMPKI       Policy = "SC-MPKI"
	PolicyMaxSTP       Policy = "maxSTP"
	PolicySCMPKIMaxSTP Policy = "SC-MPKI+maxSTP"
	PolicyFair         Policy = "Fair"
	PolicySCMPKIFair   Policy = "SC-MPKI-fair"
	// PolicySoftwareSCMPKI is SC-MPKI arbitration in the OS layer
	// (Section 3.2.4): re-evaluated only at timeslice granularity.
	PolicySoftwareSCMPKI Policy = "software-SC-MPKI"
)

// SoftwarePollIntervals is how many hardware intervals one OS timeslice
// spans for PolicySoftwareSCMPKI (the paper's ~10ms vs 1M-cycle intervals).
const SoftwarePollIntervals = 10

// NewArbiter constructs the named policy.
func NewArbiter(p Policy) (arbiter.Arbiter, error) {
	switch p {
	case PolicySCMPKI:
		return arbiter.NewSCMPKI(), nil
	case PolicyMaxSTP:
		return arbiter.NewMaxSTP(), nil
	case PolicySCMPKIMaxSTP:
		return arbiter.NewSCMPKIMaxSTP(), nil
	case PolicyFair:
		return arbiter.NewFair(), nil
	case PolicySCMPKIFair:
		return arbiter.NewSCMPKIFair(), nil
	case PolicySoftwareSCMPKI:
		return arbiter.NewSoftware(arbiter.NewSCMPKI(), SoftwarePollIntervals), nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", p)
}

// Topology selects the CMP style.
type Topology uint8

const (
	// TopologyMirage is n InO (OinO-capable) cores plus 1 producer OoO.
	TopologyMirage Topology = iota
	// TopologyTraditional is n InO cores plus 1 OoO, no memoization.
	TopologyTraditional
	// TopologyHomoInO is n plain InO cores.
	TopologyHomoInO
	// TopologyHomoOoO is one OoO core per application.
	TopologyHomoOoO
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopologyMirage:
		return "Mirage"
	case TopologyTraditional:
		return "Traditional"
	case TopologyHomoInO:
		return "Homo-InO"
	case TopologyHomoOoO:
		return "Homo-OoO"
	}
	return "Topology?"
}

// Config describes one simulation: a topology, a workload mix, a policy and
// scale knobs.
type Config struct {
	Topology Topology
	// Benchmarks name the workload mix (one application per InO core).
	Benchmarks []string
	// Policy selects the arbitrator for Het topologies.
	Policy Policy

	// NumOoO is the OoO core count for TopologyTraditional (default 1);
	// e.g. the 5:3 Kumar-style CMP of Figure 14 uses NumOoO=3.
	NumOoO int

	// IntervalCycles, TargetInsts and SCCapacityBytes override the scaled
	// defaults (see cluster.Config); zero keeps defaults.
	IntervalCycles  int64
	TargetInsts     int64
	SCCapacityBytes int
	// NoWarmup disables the warmup phase (timeline experiments).
	NoWarmup bool
	// PingPongEvery forces migrations every N intervals (Figure 3b).
	PingPongEvery int
	// BroadcastSC enables the Section 6 multithreaded extension: the
	// producer's schedules broadcast to every consumer SC, so one
	// memoization pass serves homogeneous threads cluster-wide.
	BroadcastSC bool
	// Seed names the deterministic random stream. Seeding is per-job: a
	// simulation derives every random decision it makes from this name
	// alone (via internal/xrand), and RunMix shares no mutable state
	// between calls, so a batch of simulations produces bit-identical
	// results whether the batch runs serially or on concurrent goroutines
	// (DESIGN.md §8). Helpers that launch several runs (Compare,
	// RunMixWithBaseline) derive distinct sub-seeds per run from this name.
	Seed string
	// Parallel is the worker budget for helpers that launch multiple
	// simulations from one call — Compare and RunMixWithBaseline fan their
	// independent RunMix invocations out to an internal/runner pool.
	// 0 or 1 keeps those helpers serial (the default); RunMix itself is
	// always a single simulation regardless. Results are identical at any
	// setting; only wall-clock time changes.
	Parallel int
	// Telemetry, when non-nil, receives the run's metrics, per-interval
	// arbitration time-series and trace events (see internal/telemetry).
	// It applies to this configuration's own run only — baseline/reference
	// runs stay uninstrumented. A Telemetry may be shared by concurrent
	// runs: counters and histograms accumulate totals race-free; see
	// DESIGN.md §8 for the gauge/trace-ordering caveats.
	Telemetry *telemetry.Telemetry
	// Audit enables the invariant audit (DESIGN.md §11): cheap checks
	// threaded through the pipeline engine, the cores, the arbitration loop
	// and the energy accounting. Any violation fails the run with a
	// structured error; violation counts also land in Telemetry (when
	// attached) under audit.violations*. Off by default — the checks
	// roughly double the measurement-path cost.
	Audit bool
}

// MixResult is a simulated mix outcome with derived metrics.
type MixResult struct {
	Config  Config
	Cluster *cluster.Result
	// PerAppIPC is each application's end-to-end IPC.
	PerAppIPC []float64
	// STP is the mean speedup versus each app alone on an OoO
	// (populated by RunMixWithBaseline / experiment harnesses).
	STP float64
	// EnergyPJ is total energy; AreaMM2 the CMP area.
	EnergyPJ float64
	AreaMM2  float64
	// OoOActiveFrac is the fraction of wall cycles the OoO was powered.
	OoOActiveFrac float64
}

// resolveMix maps benchmark names to generated workloads.
func resolveMix(names []string) ([]*program.Benchmark, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: empty workload mix")
	}
	out := make([]*program.Benchmark, len(names))
	for i, n := range names {
		b := program.ByName(n)
		if b == nil {
			return nil, fmt.Errorf("core: unknown benchmark %q", n)
		}
		out[i] = b
	}
	return out, nil
}

// clusterConfig lowers a Config to the cluster layer.
func (c Config) clusterConfig(apps []*program.Benchmark) (cluster.Config, error) {
	cc := cluster.Config{
		Apps:            apps,
		NumOoO:          c.NumOoO,
		IntervalCycles:  c.IntervalCycles,
		TargetInsts:     c.TargetInsts,
		SCCapacityBytes: c.SCCapacityBytes,
		NoWarmup:        c.NoWarmup,
		PingPongEvery:   c.PingPongEvery,
		BroadcastSC:     c.BroadcastSC,
		Seed:            c.Seed + ":" + string(c.Policy),
		Telemetry:       c.Telemetry,
	}
	switch c.Topology {
	case TopologyMirage:
		cc.HasOoO = true
		cc.Memoize = true
	case TopologyTraditional:
		cc.HasOoO = true
	case TopologyHomoInO:
		// defaults
	case TopologyHomoOoO:
		cc.AllOoO = true
	default:
		return cc, fmt.Errorf("core: unknown topology %d", c.Topology)
	}
	if cc.HasOoO {
		pol := c.Policy
		if pol == "" {
			pol = PolicySCMPKI
		}
		arb, err := NewArbiter(pol)
		if err != nil {
			return cc, err
		}
		cc.Arbiter = arb
	}
	return cc, nil
}

// RunMix simulates one configuration. The context is checked on entry only:
// a single simulation is the unit of cancellation granularity (runs cannot
// be interrupted mid-flight), so ctx ending before the call starts returns
// ctx.Err() and a context that ends mid-run lets the run finish. Helpers
// that launch several runs (Compare, RunMixWithBaseline) stop scheduling
// further runs once ctx ends.
func RunMix(ctx context.Context, cfg Config) (*MixResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	apps, err := resolveMix(cfg.Benchmarks)
	if err != nil {
		return nil, err
	}
	cc, err := cfg.clusterConfig(apps)
	if err != nil {
		return nil, err
	}
	var aud *invariant.Auditor
	if cfg.Audit {
		aud = invariant.New(cfg.Telemetry.Reg())
		cc.Audit = aud
	}
	cl, err := cluster.New(cc)
	if err != nil {
		return nil, err
	}
	res, err := cl.Run()
	if err != nil {
		return nil, err
	}
	if err := aud.Err(); err != nil {
		return nil, fmt.Errorf("core: %s/%s seed %q: %w", cfg.Topology, cfg.Policy, cfg.Seed, err)
	}
	mr := &MixResult{Config: cfg, Cluster: res, EnergyPJ: res.TotalEnergyPJ}
	for _, a := range res.Apps {
		mr.PerAppIPC = append(mr.PerAppIPC, a.IPC)
	}
	numOoO := cfg.NumOoO
	if numOoO <= 0 {
		numOoO = 1
	}
	mr.AreaMM2 = AreaK(cfg.Topology, len(apps), numOoO)
	if res.RunCycles > 0 {
		mr.OoOActiveFrac = float64(res.OoOActiveCycles) / float64(res.RunCycles)
	}
	if cfg.Topology == TopologyHomoOoO {
		mr.OoOActiveFrac = 1
	}
	return mr, nil
}

// Area returns the CMP area (mm^2) of a topology with n applications.
func Area(t Topology, n int) float64 { return AreaK(t, n, 1) }

// AreaK is Area with an explicit OoO count for traditional topologies.
func AreaK(t Topology, n, numOoO int) float64 {
	switch t {
	case TopologyMirage:
		return energy.ClusterArea(1, 0, n)
	case TopologyTraditional:
		return energy.ClusterArea(numOoO, n, 0)
	case TopologyHomoInO:
		return energy.ClusterArea(0, n, 0)
	case TopologyHomoOoO:
		return energy.ClusterArea(n, 0, 0)
	}
	return 0
}

// OoOReference runs each benchmark alone on a private OoO core and returns
// per-app reference IPCs — the denominator of every speedup in Section 5.
func OoOReference(ctx context.Context, names []string, targetInsts int64, seed string) ([]float64, error) {
	return OoOReferenceCfg(ctx, Config{
		Benchmarks:  names,
		TargetInsts: targetInsts,
		Seed:        seed,
	})
}

// OoOReferenceCfg is OoOReference deriving the reference run from a full
// base Config, so run-wide modes that are not part of the reference's
// identity — today the invariant audit — carry over to it. The reference
// stays uninstrumented and unaffected by base's topology/policy; its seed
// is base.Seed + ":ref" exactly as OoOReference's always was.
func OoOReferenceCfg(ctx context.Context, base Config) ([]float64, error) {
	cfg := Config{
		Topology:    TopologyHomoOoO,
		Benchmarks:  base.Benchmarks,
		TargetInsts: base.TargetInsts,
		Seed:        base.Seed + ":ref",
		Audit:       base.Audit,
	}
	mr, err := RunMix(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return mr.PerAppIPC, nil
}

// workers lowers a Config.Parallel knob to a runner worker count: 0 and 1
// both mean serial, anything larger is a bound on concurrent simulations.
func workers(parallel int) int {
	if parallel <= 1 {
		return 1
	}
	return parallel
}

// RunMixWithBaseline runs cfg and fills STP against the Homo-OoO reference.
// The two simulations are independent (distinct seeds, no shared state); with
// cfg.Parallel > 1 they run concurrently and the result is unchanged.
func RunMixWithBaseline(ctx context.Context, cfg Config) (*MixResult, error) {
	var (
		mr  *MixResult
		ref []float64
	)
	jobs := []runner.Job[struct{}]{
		{Name: "mix:" + cfg.Seed, Run: func() (struct{}, error) {
			var err error
			mr, err = RunMix(context.Background(), cfg)
			return struct{}{}, err
		}},
		{Name: "ref:" + cfg.Seed, Run: func() (struct{}, error) {
			var err error
			ref, err = OoOReferenceCfg(context.Background(), cfg)
			return struct{}{}, err
		}},
	}
	if _, err := runner.Run(ctx, workers(cfg.Parallel), jobs); err != nil {
		var je *runner.JobError
		if errors.As(err, &je) {
			return nil, je.Err
		}
		return nil, err
	}
	mr.STP = stats.STP(mr.PerAppIPC, ref)
	return mr, nil
}

// CompareArbitrators runs the same mix under each named policy/topology
// pair and returns results keyed by policy (plus the homogeneous
// references). This is the engine behind Figures 7, 8 and 9b.
type Comparison struct {
	Mix      []string
	RefIPC   []float64 // per-app Homo-OoO IPC
	HomoInO  *MixResult
	HomoOoO  *MixResult
	ByPolicy map[Policy]*MixResult
}

// ArbitratorSet is the per-figure policy lineup: SC-MPKI and
// SC-MPKI+maxSTP on Mirage hardware, maxSTP on a traditional Het-CMP.
var ArbitratorSet = []struct {
	Policy   Policy
	Topology Topology
}{
	{PolicySCMPKI, TopologyMirage},
	{PolicySCMPKIMaxSTP, TopologyMirage},
	{PolicyMaxSTP, TopologyTraditional},
}

// FairSet is the Figure 12/13 lineup.
var FairSet = []struct {
	Policy   Policy
	Topology Topology
}{
	{PolicySCMPKIFair, TopologyMirage},
	{PolicyFair, TopologyTraditional},
	{PolicyMaxSTP, TopologyTraditional},
	{PolicySCMPKI, TopologyMirage},
}

// Compare runs the standard arbitrator line-up on one mix. The reference,
// Homo-InO and per-policy runs are independent simulations with disjoint
// seeds, so with base.Parallel > 1 they fan out to a worker pool; STPs are
// derived afterwards in the fixed serial order against the collated
// reference IPCs, keeping the Comparison bit-identical at any parallelism.
func Compare(ctx context.Context, mix []string, base Config, set []struct {
	Policy   Policy
	Topology Topology
}) (*Comparison, error) {
	cmp := &Comparison{Mix: mix, ByPolicy: make(map[Policy]*MixResult)}

	refCfg := base
	refCfg.Topology = TopologyHomoOoO
	refCfg.Benchmarks = mix
	refCfg.Policy = ""
	inoCfg := refCfg
	inoCfg.Topology = TopologyHomoInO

	cfgs := []Config{refCfg, inoCfg}
	for _, pt := range set {
		cfg := base
		cfg.Benchmarks = mix
		cfg.Topology = pt.Topology
		cfg.Policy = pt.Policy
		cfgs = append(cfgs, cfg)
	}
	results, err := runner.Map(ctx, workers(base.Parallel), cfgs,
		func(i int, cfg Config) string {
			return fmt.Sprintf("compare:%s:%s:%s", cfg.Seed, cfg.Topology, cfg.Policy)
		},
		func(i int, cfg Config) (*MixResult, error) { return RunMix(context.Background(), cfg) })
	if err != nil {
		var je *runner.JobError
		if errors.As(err, &je) {
			return nil, je.Err
		}
		return nil, err
	}

	homoOoO := results[0]
	cmp.HomoOoO = homoOoO
	cmp.RefIPC = homoOoO.PerAppIPC
	homoOoO.STP = 1

	homoInO := results[1]
	homoInO.STP = stats.STP(homoInO.PerAppIPC, cmp.RefIPC)
	cmp.HomoInO = homoInO

	for si, pt := range set {
		mr := results[2+si]
		mr.STP = stats.STP(mr.PerAppIPC, cmp.RefIPC)
		cmp.ByPolicy[pt.Policy] = mr
	}
	return cmp, nil
}

// MixKind selects how RandomMixes composes workloads (Section 4.1: 10 mixes
// per single category plus 22 random mixes across categories).
type MixKind uint8

const (
	// MixHPD draws only from the HPD category.
	MixHPD MixKind = iota
	// MixLPD draws only from the LPD category.
	MixLPD
	// MixRandom draws from the whole suite.
	MixRandom
)

// RandomMixes builds `count` workload mixes of `size` applications each.
// Mix composition depends only on (kind, size, count, seed) — callers can
// materialise the same mix list before fanning simulations out in parallel.
func RandomMixes(kind MixKind, size, count int, seed string) [][]string {
	var pool []string
	switch kind {
	case MixHPD:
		pool = program.ByCategory(program.HPD)
	case MixLPD:
		pool = program.ByCategory(program.LPD)
	default:
		pool = program.Names()
	}
	rng := xrand.NewString("mix:" + seed)
	mixes := make([][]string, count)
	for m := range mixes {
		mix := make([]string, size)
		for i := range mix {
			mix[i] = pool[rng.Intn(len(pool))]
		}
		mixes[m] = mix
	}
	return mixes
}
