package core

import (
	"context"
	"testing"
)

// TestMirageShape8to1 checks the paper's headline ordering on one random
// 8-app mix: Homo-InO < maxSTP (traditional) < SC-MPKI (Mirage) <= Homo-OoO,
// with Mirage recovering most of the OoO performance at lower energy.
func TestMirageShape8to1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mix simulation is slow")
	}
	mix := []string{"hmmer", "bzip2", "astar", "milc", "gcc", "namd", "h264ref", "omnetpp"}
	base := Config{
		TargetInsts:    1_200_000,
		IntervalCycles: 50_000,
		Seed:           "smoke",
	}
	cmp, err := Compare(context.Background(), mix, base, ArbitratorSet)
	if err != nil {
		t.Fatal(err)
	}
	stpInO := cmp.HomoInO.STP
	stpMaxSTP := cmp.ByPolicy[PolicyMaxSTP].STP
	stpMirage := cmp.ByPolicy[PolicySCMPKI].STP
	t.Logf("STP: HomoInO=%.2f maxSTP=%.2f Mirage/SC-MPKI=%.2f SC-MPKI+maxSTP=%.2f",
		stpInO, stpMaxSTP, stpMirage, cmp.ByPolicy[PolicySCMPKIMaxSTP].STP)
	t.Logf("energy rel Homo-OoO: InO=%.2f maxSTP=%.2f Mirage=%.2f",
		cmp.HomoInO.EnergyPJ/cmp.HomoOoO.EnergyPJ,
		cmp.ByPolicy[PolicyMaxSTP].EnergyPJ/cmp.HomoOoO.EnergyPJ,
		cmp.ByPolicy[PolicySCMPKI].EnergyPJ/cmp.HomoOoO.EnergyPJ)
	t.Logf("OoO active frac: Mirage=%.2f maxSTP=%.2f",
		cmp.ByPolicy[PolicySCMPKI].OoOActiveFrac,
		cmp.ByPolicy[PolicyMaxSTP].OoOActiveFrac)

	if stpMirage <= stpMaxSTP {
		t.Errorf("Mirage SC-MPKI STP %.2f should beat traditional maxSTP %.2f", stpMirage, stpMaxSTP)
	}
	if stpMaxSTP <= stpInO {
		t.Errorf("maxSTP STP %.2f should beat Homo-InO %.2f", stpMaxSTP, stpInO)
	}
	if stpMirage > 1.0 {
		t.Errorf("Mirage STP %.2f should not exceed Homo-OoO", stpMirage)
	}
	eMirage := cmp.ByPolicy[PolicySCMPKI].EnergyPJ / cmp.HomoOoO.EnergyPJ
	if eMirage >= 1 {
		t.Errorf("Mirage energy ratio %.2f should be well under Homo-OoO", eMirage)
	}
}
