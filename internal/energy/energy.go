// Package energy is the McPAT-substitute power, energy and area model.
// Core engines count microarchitectural events (Events); this package turns
// them into per-structure dynamic energy plus leakage, and provides the area
// model behind Figure 6 and the power breakdown behind Figure 9a.
//
// Absolute numbers are synthetic; the model is calibrated to the ratios the
// paper reports: InO ~1/5 the power and under 1/2 the area of the OoO, OinO
// dynamic power 2.4x InO, OoO 2.1x OinO, +10% leakage from the SC, +14%
// dynamic from the bigger PRF and +5.5% from the replay LSQ.
package energy

import (
	"fmt"
	"math"
)

// Structure identifies a hardware block for the Figure 9a breakdown.
type Structure uint8

const (
	ALUs Structure = iota
	BPred
	CDB // common data bus / bypass network
	DCache
	ICache
	InstBuf
	Decoder
	LQ
	SQ
	PRF
	Rename
	ROB
	Scheduler
	SchedCache
	NumStructures
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	names := [...]string{
		"ALUs", "BPred", "CDB", "D$", "I$", "InstBuff", "Decoder",
		"LQ", "SQ", "PRF", "Rename", "ROB", "Scheduler", "Sched$",
	}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Structure(%d)", uint8(s))
}

// Events counts the microarchitectural activity of one simulated span.
// Core engines fill these in; Compute turns them into Joules.
type Events struct {
	Cycles uint64 // active cycles of the core

	IntOps    uint64 // integer ALU / branch executions
	MulDivOps uint64
	FPOps     uint64

	BPredLookups uint64
	Fetches      uint64 // instructions fetched from the L1I path
	SCFetches    uint64 // instructions fetched from the Schedule Cache
	SCWrites     uint64 // schedule bytes written into the SC
	Decodes      uint64

	RenameOps uint64 // OoO register renames
	ROBWrites uint64 // OoO dispatches
	SchedOps  uint64 // OoO scheduler wakeup/select events
	PRFReads  uint64
	PRFWrites uint64
	LQOps     uint64
	SQOps     uint64
	L1DAccess uint64
	L1IAccess uint64
	L2Access  uint64
	CDBBcasts uint64 // result broadcasts
	Squashes  uint64 // pipeline / trace squashes
}

// Add accumulates o into e.
func (e *Events) Add(o Events) {
	e.Cycles += o.Cycles
	e.IntOps += o.IntOps
	e.MulDivOps += o.MulDivOps
	e.FPOps += o.FPOps
	e.BPredLookups += o.BPredLookups
	e.Fetches += o.Fetches
	e.SCFetches += o.SCFetches
	e.SCWrites += o.SCWrites
	e.Decodes += o.Decodes
	e.RenameOps += o.RenameOps
	e.ROBWrites += o.ROBWrites
	e.SchedOps += o.SchedOps
	e.PRFReads += o.PRFReads
	e.PRFWrites += o.PRFWrites
	e.LQOps += o.LQOps
	e.SQOps += o.SQOps
	e.L1DAccess += o.L1DAccess
	e.L1IAccess += o.L1IAccess
	e.L2Access += o.L2Access
	e.CDBBcasts += o.CDBBcasts
	e.Squashes += o.Squashes
}

// CoreKind selects which structure set and coefficients apply.
type CoreKind uint8

const (
	// KindOoO is the 3-wide out-of-order producer core.
	KindOoO CoreKind = iota
	// KindInO is the plain in-order core (no OinO structures active).
	KindInO
	// KindOinO is the in-order core executing in OinO (schedule replay)
	// mode: the expanded PRF, replay LSQ and SC are active.
	KindOinO
)

// String implements fmt.Stringer.
func (k CoreKind) String() string {
	switch k {
	case KindOoO:
		return "OoO"
	case KindInO:
		return "InO"
	case KindOinO:
		return "OinO"
	}
	return "CoreKind?"
}

// Coefficients: dynamic energy per event in picojoules, chosen so that the
// paper's power ratios emerge at typical activity factors (see the
// calibration test in this package).
type coeff struct {
	perEvent [NumStructures]float64 // pJ per event
	leakage  [NumStructures]float64 // pJ per cycle (leakage power proxy)
}

var coeffs = map[CoreKind]coeff{
	KindOoO: {
		perEvent: [NumStructures]float64{
			ALUs:       6.0,
			BPred:      4.0,
			CDB:        9.0,
			DCache:     22.0,
			ICache:     16.0,
			InstBuf:    3.0,
			Decoder:    5.0,
			LQ:         10.0,
			SQ:         8.0,
			PRF:        9.0,
			Rename:     12.0,
			ROB:        16.0,
			Scheduler:  20.0,
			SchedCache: 0,
		},
		leakage: [NumStructures]float64{
			ALUs: 10, BPred: 4, CDB: 6, DCache: 18, ICache: 14, InstBuf: 2,
			Decoder: 3, LQ: 7, SQ: 6, PRF: 10, Rename: 7, ROB: 14,
			Scheduler: 16, SchedCache: 0,
		},
	},
	KindInO: {
		perEvent: [NumStructures]float64{
			ALUs:       6.0,
			BPred:      4.0,
			CDB:        2.0,
			DCache:     22.0,
			ICache:     16.0,
			InstBuf:    2.0,
			Decoder:    5.0,
			LQ:         2.0,
			SQ:         2.0,
			PRF:        4.0,
			Rename:     0,
			ROB:        0,
			Scheduler:  0,
			SchedCache: 0,
		},
		leakage: [NumStructures]float64{
			ALUs: 7, BPred: 3, CDB: 1.5, DCache: 13, ICache: 10, InstBuf: 1,
			Decoder: 2, LQ: 1, SQ: 1, PRF: 3, SchedCache: 0,
		},
	},
	KindOinO: {
		perEvent: [NumStructures]float64{
			ALUs:       6.0,
			BPred:      4.0,
			CDB:        2.0,
			DCache:     22.0,
			ICache:     16.0,
			InstBuf:    2.0,
			Decoder:    5.0,
			LQ:         5.0, // replay LSQ active (+5.5% dynamic per paper)
			SQ:         4.0,
			PRF:        6.5, // 128-entry versioned PRF (+14% dynamic)
			Rename:     0,
			ROB:        0,
			Scheduler:  0,
			SchedCache: 3.5, // fetching trace blocks from the small 8KB SC
		},
		leakage: [NumStructures]float64{
			ALUs: 7, BPred: 3, CDB: 1.5, DCache: 13, ICache: 10, InstBuf: 1,
			Decoder: 2, LQ: 2, SQ: 1.8, PRF: 4.5,
			SchedCache: 3.5, // +10% leakage from the SC
		},
	},
}

// Breakdown is per-structure energy in picojoules.
type Breakdown [NumStructures]float64

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Valid reports whether every component is finite and non-negative — the
// well-formedness half of the audit's energy-closure invariant (DESIGN.md
// §11): a NaN or negative component would vanish into an otherwise
// plausible Total.
func (b Breakdown) Valid() bool {
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}

// Compute converts events into a per-structure energy breakdown (pJ) for a
// core of the given kind.
func Compute(kind CoreKind, ev Events) Breakdown {
	c := coeffs[kind]
	var b Breakdown
	act := func(s Structure, n uint64) { b[s] += c.perEvent[s] * float64(n) }

	act(ALUs, ev.IntOps+ev.MulDivOps*3+ev.FPOps*3)
	act(BPred, ev.BPredLookups)
	act(CDB, ev.CDBBcasts)
	act(DCache, ev.L1DAccess)
	act(ICache, ev.L1IAccess)
	act(InstBuf, ev.Fetches+ev.SCFetches)
	act(Decoder, ev.Decodes)
	act(LQ, ev.LQOps)
	act(SQ, ev.SQOps)
	act(PRF, ev.PRFReads+ev.PRFWrites)
	act(Rename, ev.RenameOps)
	act(ROB, ev.ROBWrites*2) // write at dispatch, read at commit
	act(Scheduler, ev.SchedOps)
	act(SchedCache, ev.SCFetches+ev.SCWrites)

	for s := Structure(0); s < NumStructures; s++ {
		b[s] += c.leakage[s] * float64(ev.Cycles)
	}
	return b
}

// IdleLeakagePJ returns leakage energy for a powered-on but idle core over
// the given cycles. A power-gated core consumes zero (Section 4.2 assumes
// instantaneous power gating of the OoO).
func IdleLeakagePJ(kind CoreKind, cycles uint64) float64 {
	c := coeffs[kind]
	var t float64
	for s := Structure(0); s < NumStructures; s++ {
		t += c.leakage[s]
	}
	return t * float64(cycles)
}

// Area model (mm^2), including private L1s and, for OinO, the SC plus the
// expanded PRF and replay LSQ. Chosen to reproduce Figure 6:
// a traditional 4:1 Het-CMP is ~1.55x a 4:0 Homo-InO, and the OinO
// additions cost ~23% more of that baseline.
const (
	// AreaOoO is the OoO core plus its private L1 caches.
	AreaOoO = 2.86
	// AreaInO is the plain InO core plus its private L1 caches.
	AreaInO = 1.30
	// AreaOinO adds the 8KB SC, expanded PRF and replay LSQ to an InO.
	AreaOinO = AreaInO + 0.30
)

// ClusterArea returns the area of a CMP built from the given core counts.
func ClusterArea(nOoO, nInO, nOinO int) float64 {
	return float64(nOoO)*AreaOoO + float64(nInO)*AreaInO + float64(nOinO)*AreaOinO
}
