package energy

import (
	"math"
	"testing"
)

// typicalEvents approximates one thousand instructions of steady execution
// on each core kind, with the activity factors the engines produce.
func typicalEvents(kind CoreKind) Events {
	const n = 1000
	ev := Events{
		IntOps:       n * 6 / 10,
		FPOps:        n / 10,
		MulDivOps:    n / 20,
		BPredLookups: n / 10,
		Decodes:      n,
		PRFReads:     2 * n,
		PRFWrites:    3 * n / 4,
		LQOps:        n / 4,
		SQOps:        n / 10,
		L1DAccess:    n / 3,
	}
	switch kind {
	case KindOoO:
		ev.Cycles = n * 10 / 25 // IPC 2.5
		ev.Fetches = n
		ev.L1IAccess = n / 2
		ev.RenameOps = n
		ev.ROBWrites = n
		ev.SchedOps = n
		ev.CDBBcasts = 3 * n / 4
	case KindInO:
		ev.Cycles = n * 10 / 13 // IPC 1.3
		ev.Fetches = n
		ev.L1IAccess = n / 2
	case KindOinO:
		ev.Cycles = n * 10 / 23 // IPC 2.3 (near-OoO replay)
		ev.SCFetches = n
		ev.L1IAccess = n / 8
		ev.BPredLookups = n / 40
	}
	return ev
}

func power(kind CoreKind) float64 {
	ev := typicalEvents(kind)
	return Compute(kind, ev).Total() / float64(ev.Cycles)
}

// TestPowerRatios pins the model to the paper's reported relationships:
// OoO ~2.1x OinO power, OinO ~2.4x InO power, OoO ~5x InO power (Fig 1,
// Section 5.2). Bands are generous: the exact ratio depends on workload
// activity factors.
func TestPowerRatios(t *testing.T) {
	pO, pI, pR := power(KindOoO), power(KindInO), power(KindOinO)
	t.Logf("power pJ/cyc: OoO=%.1f InO=%.1f OinO=%.1f (OoO/OinO=%.2f OinO/InO=%.2f OoO/InO=%.2f)",
		pO, pI, pR, pO/pR, pR/pI, pO/pI)
	if r := pO / pR; r < 1.8 || r > 3.2 {
		t.Errorf("OoO/OinO power ratio %.2f outside [1.8, 3.2] (paper: 2.1)", r)
	}
	if r := pR / pI; r < 1.6 || r > 3.0 {
		t.Errorf("OinO/InO power ratio %.2f outside [1.6, 3.0] (paper: 2.4)", r)
	}
	if r := pO / pI; r < 4.0 || r > 7.0 {
		t.Errorf("OoO/InO power ratio %.2f outside [4, 7] (paper: ~5)", r)
	}
}

// TestOoOOnlyStructures: InO and OinO must bill nothing to rename, ROB or
// scheduler — they do not have them (the heart of the energy win).
func TestOoOOnlyStructures(t *testing.T) {
	for _, kind := range []CoreKind{KindInO, KindOinO} {
		ev := typicalEvents(kind)
		ev.RenameOps = 500 // even if misreported, coefficients are zero
		ev.ROBWrites = 500
		ev.SchedOps = 500
		b := Compute(kind, ev)
		if b[Rename] != 0 || b[ROB] != 0 || b[Scheduler] != 0 {
			t.Errorf("%v bills OoO-only structures: rename=%v rob=%v sched=%v",
				kind, b[Rename], b[ROB], b[Scheduler])
		}
	}
}

// TestOinOSurcharges: the OinO structures must cost something relative to
// plain InO (bigger PRF, replay LSQ, SC), per Section 3.3.2.
func TestOinOSurcharges(t *testing.T) {
	ev := typicalEvents(KindInO)
	bI := Compute(KindInO, ev)
	evR := ev
	evR.SCFetches = ev.Fetches
	evR.Fetches = 0
	bR := Compute(KindOinO, evR)
	if bR[PRF] <= bI[PRF] {
		t.Errorf("versioned PRF (%.0f) should cost more than InO PRF (%.0f)", bR[PRF], bI[PRF])
	}
	if bR[LQ] <= bI[LQ] {
		t.Errorf("replay LSQ (%.0f) should cost more than InO LQ (%.0f)", bR[LQ], bI[LQ])
	}
	if bR[SchedCache] == 0 {
		t.Error("SC fetches must consume energy in OinO mode")
	}
	if bI[SchedCache] != 0 {
		t.Error("plain InO mode must not bill the SC")
	}
}

func TestBreakdownTotal(t *testing.T) {
	var b Breakdown
	b[ALUs] = 2.5
	b[ROB] = 1.5
	if b.Total() != 4 {
		t.Errorf("total %v", b.Total())
	}
}

func TestComputeLinearInEvents(t *testing.T) {
	ev := typicalEvents(KindOoO)
	double := ev
	double.Cycles *= 2
	double.IntOps *= 2
	double.FPOps *= 2
	double.MulDivOps *= 2
	double.BPredLookups *= 2
	double.Fetches *= 2
	double.Decodes *= 2
	double.RenameOps *= 2
	double.ROBWrites *= 2
	double.SchedOps *= 2
	double.PRFReads *= 2
	double.PRFWrites *= 2
	double.LQOps *= 2
	double.SQOps *= 2
	double.L1DAccess *= 2
	double.L1IAccess *= 2
	double.CDBBcasts *= 2
	e1 := Compute(KindOoO, ev).Total()
	e2 := Compute(KindOoO, double).Total()
	if math.Abs(e2-2*e1) > 1e-6*e1 {
		t.Errorf("energy not linear: %v vs 2x%v", e2, e1)
	}
}

func TestEventsAdd(t *testing.T) {
	a := Events{Cycles: 5, IntOps: 2, SCFetches: 1, Squashes: 3}
	a.Add(Events{Cycles: 7, IntOps: 4, SCFetches: 9, Squashes: 1})
	if a.Cycles != 12 || a.IntOps != 6 || a.SCFetches != 10 || a.Squashes != 4 {
		t.Errorf("Add result %+v", a)
	}
}

func TestIdleLeakageOrdering(t *testing.T) {
	const cyc = 1000
	lO := IdleLeakagePJ(KindOoO, cyc)
	lI := IdleLeakagePJ(KindInO, cyc)
	lR := IdleLeakagePJ(KindOinO, cyc)
	if !(lO > lR && lR > lI) {
		t.Errorf("leakage ordering wrong: OoO=%v OinO=%v InO=%v", lO, lR, lI)
	}
	// The SC adds roughly 10% leakage to the InO (Section 3.3.2).
	if r := lR / lI; r < 1.02 || r > 1.5 {
		t.Errorf("OinO/InO leakage ratio %.2f, want modest increase", r)
	}
}

// TestAreaModel pins the Figure 6 relationships: a traditional 4:1 Het-CMP
// is ~1.55x the area of 4 InO cores, and the OinO structures add ~23% more
// of that baseline; InO is under half the OoO.
func TestAreaModel(t *testing.T) {
	if AreaInO >= AreaOoO/2 {
		t.Errorf("InO area %.2f not under half of OoO %.2f", AreaInO, AreaOoO)
	}
	base := ClusterArea(0, 4, 0)
	trad := ClusterArea(1, 4, 0)
	mirage := ClusterArea(1, 0, 4)
	if r := trad / base; r < 1.45 || r > 1.65 {
		t.Errorf("4:1 traditional / 4:0 InO = %.2f, want ~1.55", r)
	}
	if d := (mirage - trad) / base; d < 0.15 || d > 0.35 {
		t.Errorf("OinO additions cost %.2f of baseline, want ~0.23", d)
	}
	// Mirage 8:1 is ~65-80% of 8 OoO cores (paper: 74-75%).
	if r := ClusterArea(1, 0, 8) / ClusterArea(8, 0, 0); r < 0.6 || r > 0.85 {
		t.Errorf("Mirage 8:1 area ratio %.2f", r)
	}
}

func TestStructureStrings(t *testing.T) {
	for s := Structure(0); s < NumStructures; s++ {
		if s.String() == "" {
			t.Errorf("structure %d unnamed", s)
		}
	}
	if Structure(99).String() != "Structure(99)" {
		t.Error("unknown structure formatting")
	}
	for _, k := range []CoreKind{KindOoO, KindInO, KindOinO} {
		if k.String() == "CoreKind?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
