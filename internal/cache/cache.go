// Package cache implements the set-associative caches used by the memory
// hierarchy: plain LRU caches for the L1s and an L2 with a stride
// prefetcher, matching Table 2 of the paper.
package cache

import (
	"fmt"

	"repro/internal/telemetry"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int
}

// Stats accumulates access counters for a cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Prefetches uint64
	// PrefetchHits counts demand accesses that hit a prefetched line.
	PrefetchHits uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag        uint64
	valid      bool
	lastUse    uint64
	prefetched bool
}

// Cache is a set-associative, write-allocate, LRU cache model. It tracks
// presence only (no data), which is all the timing model needs.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	tick     uint64
	stats    Stats
}

// New builds a cache from cfg. It panics on non-power-of-two geometry since
// configurations are compile-time constants in this simulator.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Assoc
	if nSets == 0 {
		nSets = 1
	}
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nSets))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, nSets),
		setShift: shift,
		setMask:  uint64(nSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the current counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RegisterTelemetry publishes this cache's counters as snapshot-time gauges
// under prefix (e.g. "core0.l1d"). Values are read when the registry is
// snapshotted, so registration costs nothing on the access path. A nil
// registry is a no-op.
func (c *Cache) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+".accesses", func() float64 { return float64(c.stats.Accesses) })
	reg.RegisterFunc(prefix+".misses", func() float64 { return float64(c.stats.Misses) })
	reg.RegisterFunc(prefix+".miss_rate", func() float64 { return c.stats.MissRate() })
	reg.RegisterFunc(prefix+".evictions", func() float64 { return float64(c.stats.Evictions) })
	reg.RegisterFunc(prefix+".prefetches", func() float64 { return float64(c.stats.Prefetches) })
	reg.RegisterFunc(prefix+".prefetch_hits", func() float64 { return float64(c.stats.PrefetchHits) })
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & c.setMask), blk >> 0
}

// Access touches addr. It returns true on a hit. On a miss the line is
// allocated (evicting LRU).
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lastUse = c.tick
			if lines[i].prefetched {
				c.stats.PrefetchHits++
				lines[i].prefetched = false
			}
			return true
		}
	}
	c.stats.Misses++
	c.fill(set, tag, false)
	return false
}

// Probe reports whether addr is resident without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Prefetch inserts addr if absent, marking it as prefetched.
func (c *Cache) Prefetch(addr uint64) {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return
		}
	}
	c.tick++
	c.stats.Prefetches++
	c.fill(set, tag, true)
}

func (c *Cache) fill(set int, tag uint64, prefetched bool) {
	lines := c.sets[set]
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			goto place
		}
		if lines[i].lastUse < lines[victim].lastUse {
			victim = i
		}
	}
	c.stats.Evictions++
place:
	lines[victim] = line{tag: tag, valid: true, lastUse: c.tick, prefetched: prefetched}
}

// Flush invalidates all contents (used when an application migrates away
// from a core: the paper models cold L1s on arrival at the new core).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Occupancy returns the number of valid lines (for warmup-cost modeling).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.valid {
				n++
			}
		}
	}
	return n
}

// LineBytes returns the block size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// StridePrefetcher is a simple per-stream stride prefetcher attached to the
// L2 (Table 2: "2 MB Shared L2 Cache with stride prefetcher"). It watches
// miss addresses, detects constant strides and prefetches ahead.
type StridePrefetcher struct {
	target *Cache
	// Degree is how many lines ahead to prefetch once a stride locks.
	Degree  int
	entries [16]strideEntry
}

type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int8
	valid    bool
	streamID uint8
}

// NewStridePrefetcher attaches a prefetcher to target.
func NewStridePrefetcher(target *Cache, degree int) *StridePrefetcher {
	if degree <= 0 {
		degree = 2
	}
	return &StridePrefetcher{target: target, Degree: degree}
}

// Observe notifies the prefetcher of a demand access on a stream. streamID
// stands in for the PC-based table index a hardware prefetcher would use.
func (p *StridePrefetcher) Observe(streamID uint8, addr uint64) {
	idx := int(streamID) % len(p.entries)
	e := &p.entries[idx]
	if !e.valid || e.streamID != streamID {
		*e = strideEntry{lastAddr: addr, valid: true, streamID: streamID}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf >= 2 {
		next := int64(addr)
		for i := 0; i < p.Degree; i++ {
			next += e.stride
			if next > 0 {
				p.target.Prefetch(uint64(next))
			}
		}
	}
}

// Reset clears learned strides (on migration).
func (p *StridePrefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
}
