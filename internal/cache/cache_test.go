package cache

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 2})
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1030) {
		t.Error("same-line access should hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats %+v, want 3 accesses 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets x 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived eviction")
	}
	if !c.Probe(d) {
		t.Error("newly filled line absent")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := smallCache()
	c.Access(0)
	before := c.Stats()
	c.Probe(0)
	c.Probe(4096)
	if c.Stats() != before {
		t.Error("Probe changed statistics")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	if c.Occupancy() != 8 {
		t.Errorf("occupancy %d, want 8", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Errorf("occupancy after flush %d", c.Occupancy())
	}
	if c.Probe(0) {
		t.Error("line survived flush")
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := smallCache()
	err := quick.Check(func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Occupancy() <= 16 // 1024/64 lines
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPrefetchMarksLines(t *testing.T) {
	c := smallCache()
	c.Prefetch(0x2000)
	if !c.Probe(0x2000) {
		t.Error("prefetched line absent")
	}
	if !c.Access(0x2000) {
		t.Error("access to prefetched line should hit")
	}
	s := c.Stats()
	if s.Prefetches != 1 || s.PrefetchHits != 1 {
		t.Errorf("prefetch stats %+v", s)
	}
	// Prefetching a resident line is a no-op.
	c.Prefetch(0x2000)
	if c.Stats().Prefetches != 1 {
		t.Error("duplicate prefetch counted")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := smallCache()
	c.Access(0x40)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if !c.Probe(0x40) {
		t.Error("contents lost on stat reset")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("zero-access miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate %v", s.MissRate())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Assoc: 2},
		{Name: "badline", SizeBytes: 1024, LineBytes: 48, Assoc: 2},
		{Name: "badsets", SizeBytes: 64 * 6, LineBytes: 64, Assoc: 2},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStridePrefetcherLocksOn(t *testing.T) {
	target := New(Config{Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitLatency: 15})
	p := NewStridePrefetcher(target, 2)
	// Constant stride of 64: after confidence builds, subsequent lines
	// should already be resident.
	addr := uint64(0x10000)
	for i := 0; i < 6; i++ {
		p.Observe(3, addr)
		addr += 64
	}
	if !target.Probe(addr) || !target.Probe(addr+64) {
		t.Error("prefetcher did not run ahead of a constant stride")
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	target := New(Config{Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitLatency: 15})
	p := NewStridePrefetcher(target, 2)
	addrs := []uint64{0x1000, 0x9040, 0x2480, 0xff80, 0x0300, 0x7777}
	for _, a := range addrs {
		p.Observe(5, a)
	}
	if n := target.Stats().Prefetches; n > 2 {
		t.Errorf("random stream triggered %d prefetches", n)
	}
}

func TestStridePrefetcherReset(t *testing.T) {
	target := New(Config{Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitLatency: 15})
	p := NewStridePrefetcher(target, 2)
	for i := 0; i < 4; i++ {
		p.Observe(1, uint64(i*64))
	}
	p.Reset()
	before := target.Stats().Prefetches
	p.Observe(1, 0x8000) // first observation after reset: no stride known
	if target.Stats().Prefetches != before {
		t.Error("reset prefetcher still prefetching")
	}
}

func TestConfigAccessors(t *testing.T) {
	c := smallCache()
	if c.Config().SizeBytes != 1024 || c.LineBytes() != 64 {
		t.Error("config accessors wrong")
	}
}
