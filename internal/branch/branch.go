// Package branch implements the branch predictors used by both cores (a
// gshare/bimodal tournament) and the measurement harness the workload
// generator uses to turn a trace's control-flow behaviour into a concrete
// misprediction rate.
package branch

import "repro/internal/xrand"

// Predictor is a tournament predictor: gshare and bimodal components with a
// chooser table, as found in cores of the A15 class the paper models.
type Predictor struct {
	historyBits int
	history     uint32
	gshare      []int8
	bimodal     []int8
	chooser     []int8
}

// NewPredictor builds a predictor with 2^historyBits-entry tables.
func NewPredictor(historyBits int) *Predictor {
	if historyBits <= 0 || historyBits > 20 {
		historyBits = 12
	}
	n := 1 << historyBits
	p := &Predictor{
		historyBits: historyBits,
		gshare:      make([]int8, n),
		bimodal:     make([]int8, n),
		chooser:     make([]int8, n),
	}
	// Weakly-taken initial state.
	for i := range p.gshare {
		p.gshare[i] = 2
		p.bimodal[i] = 2
		p.chooser[i] = 2
	}
	return p
}

func counterTaken(c int8) bool { return c >= 2 }

func bump(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predict returns the prediction for the branch at pc and updates all
// state with the actual outcome, returning whether the prediction was
// correct.
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	mask := uint32(len(p.gshare) - 1)
	bi := uint32(pc>>2) & mask
	gi := (uint32(pc>>2) ^ p.history) & mask

	gPred := counterTaken(p.gshare[gi])
	bPred := counterTaken(p.bimodal[bi])
	var pred bool
	if counterTaken(p.chooser[bi]) {
		pred = gPred
	} else {
		pred = bPred
	}

	// Update chooser toward the component that was right (when they differ).
	if gPred != bPred {
		p.chooser[bi] = bump(p.chooser[bi], gPred == taken)
	}
	p.gshare[gi] = bump(p.gshare[gi], taken)
	p.bimodal[bi] = bump(p.bimodal[bi], taken)
	p.history = ((p.history << 1) | b2u(taken)) & mask
	return pred == taken
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Reset clears history but keeps table sizes (migration cold-start).
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.gshare {
		p.gshare[i] = 2
		p.bimodal[i] = 2
		p.chooser[i] = 2
	}
}

// Behaviour describes the control-flow character of a trace's branches; the
// workload generator feeds it to MeasureMispredictRate to obtain the
// concrete rate stored on the trace.
type Behaviour struct {
	// TakenBias is the probability a data-dependent branch is taken.
	TakenBias float64
	// Entropy in [0,1]: 0 = perfectly repeating pattern (loop back-edges),
	// 1 = coin flips with TakenBias (data-dependent branches, e.g. astar).
	Entropy float64
	// PatternLen is the period of the repeating component.
	PatternLen int
}

// MeasureMispredictRate trains a predictor on iterations of synthetic branch
// outcomes with the given behaviour and returns the steady-state
// misprediction rate. This is how "gobmk has unpredictable branches"
// becomes a number in this simulator.
func MeasureMispredictRate(b Behaviour, pc uint64, rng *xrand.Rand) float64 {
	if b.PatternLen <= 0 {
		b.PatternLen = 8
	}
	pred := NewPredictor(12)
	pattern := make([]bool, b.PatternLen)
	for i := range pattern {
		pattern[i] = rng.Bool(b.TakenBias)
	}
	const warm, measure = 2000, 8000
	wrong := 0
	for i := 0; i < warm+measure; i++ {
		var taken bool
		if rng.Bool(b.Entropy) {
			taken = rng.Bool(b.TakenBias)
		} else {
			taken = pattern[i%b.PatternLen]
		}
		ok := pred.Predict(pc, taken)
		if i >= warm && !ok {
			wrong++
		}
	}
	return float64(wrong) / float64(measure)
}
