package branch

import (
	"testing"

	"repro/internal/xrand"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := NewPredictor(12)
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x400, true) && i > 10 {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	p := NewPredictor(12)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !p.Predict(0x800, taken) && i > 200 {
			wrong++
		}
	}
	if rate := float64(wrong) / 1800; rate > 0.05 {
		t.Errorf("gshare failed to learn T/NT pattern: %.2f mispredict rate", rate)
	}
}

func TestLongPatternLearned(t *testing.T) {
	p := NewPredictor(12)
	pattern := []bool{true, true, false, true, false, false, true, true}
	wrong := 0
	for i := 0; i < 4000; i++ {
		taken := pattern[i%len(pattern)]
		if !p.Predict(0xc00, taken) && i > 1000 {
			wrong++
		}
	}
	if rate := float64(wrong) / 3000; rate > 0.05 {
		t.Errorf("period-8 pattern mispredict rate %.2f", rate)
	}
}

func TestResetClearsHistory(t *testing.T) {
	p := NewPredictor(10)
	for i := 0; i < 500; i++ {
		p.Predict(0x100, false)
	}
	p.Reset()
	// After reset the initial state is weakly-taken: a not-taken branch
	// should mispredict again at first.
	if p.Predict(0x100, false) {
		t.Error("predictor retained not-taken bias through Reset")
	}
}

func TestBadHistoryBitsDefaulted(t *testing.T) {
	p := NewPredictor(0)
	if len(p.gshare) != 1<<12 {
		t.Errorf("default table size %d, want 4096", len(p.gshare))
	}
	p = NewPredictor(30)
	if len(p.gshare) != 1<<12 {
		t.Errorf("oversized tables not clamped: %d", len(p.gshare))
	}
}

func TestMeasureMispredictRateOrdering(t *testing.T) {
	rng := xrand.NewString("branch-test")
	predictable := MeasureMispredictRate(Behaviour{TakenBias: 0.9, Entropy: 0.02, PatternLen: 8}, 0x10, rng.Fork("a"))
	moderate := MeasureMispredictRate(Behaviour{TakenBias: 0.7, Entropy: 0.2, PatternLen: 12}, 0x10, rng.Fork("b"))
	chaotic := MeasureMispredictRate(Behaviour{TakenBias: 0.5, Entropy: 0.9, PatternLen: 16}, 0x10, rng.Fork("c"))
	t.Logf("mispredict rates: predictable=%.3f moderate=%.3f chaotic=%.3f", predictable, moderate, chaotic)
	if !(predictable < moderate && moderate < chaotic) {
		t.Errorf("rates not ordered by entropy: %.3f %.3f %.3f", predictable, moderate, chaotic)
	}
	if predictable > 0.05 {
		t.Errorf("low-entropy behaviour mispredicts at %.3f", predictable)
	}
	if chaotic < 0.2 {
		t.Errorf("high-entropy behaviour mispredicts at only %.3f", chaotic)
	}
}

func TestMeasureMispredictRateBounds(t *testing.T) {
	rng := xrand.NewString("bounds")
	for _, b := range []Behaviour{
		{TakenBias: 0, Entropy: 0},
		{TakenBias: 1, Entropy: 1},
		{TakenBias: 0.5, Entropy: 0.5, PatternLen: 0}, // PatternLen defaulted
	} {
		r := MeasureMispredictRate(b, 0x20, rng.Fork("x"))
		if r < 0 || r > 1 {
			t.Errorf("rate %v out of [0,1] for %+v", r, b)
		}
	}
}

func TestMeasureDeterministic(t *testing.T) {
	b := Behaviour{TakenBias: 0.7, Entropy: 0.3, PatternLen: 8}
	r1 := MeasureMispredictRate(b, 0x30, xrand.New(9))
	r2 := MeasureMispredictRate(b, 0x30, xrand.New(9))
	if r1 != r2 {
		t.Errorf("measurement not deterministic: %v vs %v", r1, r2)
	}
}
