// The fleet coordinator: one miraged process that owns no simulations but
// shards canonical job keys across N worker miraged instances over plain
// HTTP. Requests with a derivable canonical key route to the key's owner on
// a consistent-hash ring; slow owners get hedged to the next distinct
// replica after a latency budget learned from the coordinator's own p99;
// dead or draining workers leave the ring within one probe interval. The
// coordinator derives keys with the same exported helpers the workers
// validate with (internal/server), so routing, cache peering and the
// workers' caches all agree on what "the same job" means.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"log/slog"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// maxBodyBytes mirrors the worker-side request body bound: the coordinator
// buffers at most this much (plus one byte, so oversized bodies still reach
// a worker and fail there with the canonical 400).
const maxBodyBytes = 1 << 20

// Config parameterizes a Coordinator.
type Config struct {
	// Workers are the base URLs of the miraged workers (e.g.
	// "http://127.0.0.1:8081"). At least one is required.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring
	// (default 64).
	VNodes int
	// Scales resolve sweep/figure scale names during key derivation; nil
	// installs server.DefaultScales(). They must match the workers' —
	// a coordinator and its workers disagreeing on scales shards
	// equivalent requests to different owners.
	Scales map[string]experiments.Scale
	// ProbeInterval is the health-poll period (default 1s); it also bounds
	// each individual probe request.
	ProbeInterval time.Duration
	// HedgeMin and HedgeMax clamp the hedge budget — the time the
	// coordinator waits on the owner before re-issuing to the next replica.
	// The budget itself is the coordinator's own observed p99 proxy
	// latency; before any history exists it sits at HedgeMax. Defaults
	// 100ms and 10s.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// MaxAttempts bounds how many distinct replicas one request may try
	// (hedges plus failovers; 0 = every healthy worker).
	MaxAttempts int
	// Client performs worker requests and health probes; nil uses a
	// dedicated client with sane connection reuse.
	Client *http.Client
	// Telemetry instruments the coordinator (nil allocates fresh);
	// /v1/metrics exports it.
	Telemetry *telemetry.Telemetry
	// Logger receives the coordinator's structured log: one line per
	// proxied request plus ring re-shard events. nil disables logging.
	Logger *slog.Logger
}

// Coordinator is the fleet front end. Create with New, then Start the
// health prober; it implements http.Handler.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	prober *prober
	client *http.Client
	tel    *telemetry.Telemetry
	reg    *telemetry.Registry
	logger *slog.Logger
	lat    *telemetry.Histogram
	mux    *http.ServeMux
}

// New builds a Coordinator from cfg, applying defaults for zero fields.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Workers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	for _, w := range cfg.Workers {
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("worker %q: URL must start with http:// or https://", w)
		}
		if strings.HasSuffix(w, "/") {
			return nil, fmt.Errorf("worker %q: URL must not end with /", w)
		}
	}
	if cfg.Scales == nil {
		cfg.Scales = server.DefaultScales()
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 100 * time.Millisecond
	}
	if cfg.HedgeMax < cfg.HedgeMin {
		cfg.HedgeMax = 10 * time.Second
		if cfg.HedgeMax < cfg.HedgeMin {
			cfg.HedgeMax = cfg.HedgeMin
		}
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   ring,
		client: cfg.Client,
		tel:    cfg.Telemetry,
		reg:    cfg.Telemetry.Reg(),
		logger: cfg.Logger,
	}
	c.lat = c.reg.Histogram("fleet.proxy.latency_us")
	c.prober = newProber(ring, c.client, cfg.ProbeInterval, cfg.Logger, c.reg)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/run", c.handleRun)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	c.mux.HandleFunc("GET /v1/figures/{id}", c.handleFigure)
	c.mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	c.mux.HandleFunc("/", c.handleFallback)
	return c, nil
}

// Start launches the background health prober. Close stops it.
func (c *Coordinator) Start() { c.prober.start() }

// Close halts the health prober and waits for it.
func (c *Coordinator) Close() { c.prober.stop() }

// Ring exposes the hash ring (tests and the fleet e2e assert on it).
func (c *Coordinator) Ring() *Ring { return c.ring }

// ProbeOnce runs one synchronous health sweep (tests; the smoke script's
// kill-recover assertions stay deterministic through the background loop).
func (c *Coordinator) ProbeOnce(ctx context.Context) { c.prober.probeOnce(ctx) }

// Telemetry returns the coordinator's telemetry.
func (c *Coordinator) Telemetry() *telemetry.Telemetry { return c.tel }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// readBody buffers the request body up to the worker-side bound plus one
// byte (so a too-large body still forwards and fails validation there).
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req server.RunRequest
	key := ""
	if json.Unmarshal(body, &req) == nil {
		key, _ = server.CanonicalRunKey(&req)
	}
	c.proxy(w, r, "run", key, body)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req server.SweepRequest
	key := ""
	if json.Unmarshal(body, &req) == nil {
		key, _ = server.CanonicalSweepKey(&req, c.cfg.Scales)
	}
	c.proxy(w, r, "sweep", key, body)
}

func (c *Coordinator) handleFigure(w http.ResponseWriter, r *http.Request) {
	key, _ := server.CanonicalFigureKey(r.PathValue("id"), r.URL.Query().Get("scale"), c.cfg.Scales)
	c.proxy(w, r, "figure", key, nil)
}

// handleFallback proxies everything else — debug endpoints, unknown paths —
// to one deterministic healthy worker, no hedging. Fleet-internal paths are
// refused outright: /internal/* is the workers' peering surface, and
// proxying it would hand any client a read (and probe) oracle over every
// worker's cache and store.
func (c *Coordinator) handleFallback(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/internal/") {
		c.reg.Counter("fleet.requests.internal_refused").Inc()
		c.writeError(w, http.StatusNotFound, "fleet-internal endpoints are not proxied")
		return
	}
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
		b, err := readBody(r)
		if err != nil {
			c.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
			return
		}
		body = b
	}
	c.proxy(w, r, "fallback", "", body)
}

// handleHealthz reports the coordinator's own health: ok while at least one
// worker is in rotation, 503 otherwise (the coordinator can serve nothing).
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workers := c.ring.Workers()
	healthy := c.ring.Healthy()
	resp := struct {
		Status         string   `json:"status"`
		Role           string   `json:"role"`
		HealthyWorkers []string `json:"healthy_workers"`
		TotalWorkers   int      `json:"total_workers"`
	}{"ok", "coordinator", healthy, len(workers)}
	w.Header().Set("Content-Type", "application/json")
	if len(healthy) == 0 {
		resp.Status = "no-healthy-workers"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(resp)
}

// handleMetrics exports the coordinator's own telemetry (the workers serve
// their own /v1/metrics directly).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	var err error
	if r.URL.Query().Get("format") == "prometheus" {
		err = c.tel.WritePrometheus(&buf)
	} else {
		err = c.tel.WriteMetrics(&buf)
	}
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, "metrics render failed")
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	_, _ = w.Write(buf.Bytes())
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// hedgeBudget is how long to wait on the current attempt before re-issuing
// to the next replica: the coordinator's own observed p99 proxy latency,
// clamped to [HedgeMin, HedgeMax]. With no history yet it sits at HedgeMax
// (hedge late rather than double the fleet's load while cold).
func (c *Coordinator) hedgeBudget() time.Duration {
	p99 := time.Duration(c.lat.Quantile(0.99)) * time.Microsecond
	if p99 < c.cfg.HedgeMin {
		if c.lat.Count() == 0 {
			return c.cfg.HedgeMax
		}
		return c.cfg.HedgeMin
	}
	if p99 > c.cfg.HedgeMax {
		return c.cfg.HedgeMax
	}
	return p99
}

// workerResponse is a fully buffered reply from one worker.
type workerResponse struct {
	status int
	header http.Header
	body   []byte
}

// attemptResult is one settled attempt: a buffered response or a transport
// error.
type attemptResult struct {
	worker  string
	attempt int
	resp    *workerResponse
	err     error
}

// retryable reports whether a worker's reply should move the request to the
// next replica: transport errors (worker died mid-request) and 502/503
// (worker draining or its own upstream broken). Everything else — including
// 4xx, 429 and 504 — is the canonical answer for this request and is
// returned to the client as-is.
func retryable(res attemptResult) bool {
	if res.err != nil {
		return true
	}
	return res.resp.status == http.StatusBadGateway || res.resp.status == http.StatusServiceUnavailable
}

// proxy routes one request: key != "" shards it (owner first, hedge to the
// next distinct replicas after the latency budget); key == "" routes
// deterministically by method+path+body hash with failover but no hedging,
// so the owner-of-record worker produces the canonical response (typically
// a validation error body).
func (c *Coordinator) proxy(w http.ResponseWriter, r *http.Request, route, key string, body []byte) {
	c.reg.Counter("fleet.requests").Inc()
	c.reg.Counter("fleet.requests." + route).Inc()
	hedge := key != ""
	ringKey := key
	if ringKey == "" {
		ringKey = fmt.Sprintf("fallback|%s|%s|%d", r.Method, r.URL.Path, hash64(string(body)))
	}
	replicas := c.ring.Replicas(ringKey, c.cfg.MaxAttempts)
	if len(replicas) == 0 {
		c.reg.Counter("fleet.requests.no_workers").Inc()
		c.writeError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	start := time.Now()
	res, hedged := c.race(r, replicas, key, body, hedge)
	dur := time.Since(start)
	if res.resp == nil {
		// The client going away (or its deadline firing) is not a worker
		// outage: attribute it as a cancellation — nginx's 499 convention,
		// log/metrics only, nobody is left to read a body — instead of
		// polluting the unreachable counter the fleet alerts on.
		if r.Context().Err() != nil {
			c.reg.Counter("fleet.requests.client_cancelled").Inc()
			c.logProxy(r, route, key, res.worker, res.attempt, hedged, server.StatusClientClosedRequest, dur)
			return
		}
		// Every replica failed at the transport layer.
		c.reg.Counter("fleet.requests.unreachable").Inc()
		c.writeError(w, http.StatusBadGateway, "all workers unreachable: "+res.err.Error())
		c.logProxy(r, route, key, res.worker, res.attempt, hedged, http.StatusBadGateway, dur)
		return
	}
	c.lat.Observe(dur.Microseconds())
	copyHeaders(w.Header(), res.resp.header)
	w.Header().Set("X-Mirage-Shard", res.worker)
	if res.attempt > 0 {
		w.Header().Set("X-Mirage-Hedged", strconv.Itoa(res.attempt))
	}
	w.WriteHeader(res.resp.status)
	_, _ = w.Write(res.resp.body)
	c.logProxy(r, route, key, res.worker, res.attempt, hedged, res.resp.status, dur)
}

// race runs the hedged attempt loop: attempt 0 goes to the owner; each
// retryable failure fails over immediately, and (when hedging) each expiry
// of the latency budget launches the next replica concurrently. The first
// final (non-retryable) response wins and every other attempt is cancelled.
// When all replicas fail, the last worker-shaped failure (502/503) is
// returned so the client sees the worker's own body; with only transport
// errors, resp is nil.
func (c *Coordinator) race(r *http.Request, replicas []string, key string, body []byte, hedge bool) (res attemptResult, hedges int) {
	ctx, cancelAll := context.WithCancel(r.Context())
	defer cancelAll()
	results := make(chan attemptResult, len(replicas))
	launch := func(i int) {
		go func() {
			resp, err := c.attempt(ctx, r, replicas[i], replicas[0], i, body)
			results <- attemptResult{worker: replicas[i], attempt: i, resp: resp, err: err}
		}()
	}
	budget := c.hedgeBudget()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	if !hedge {
		timer.Stop()
	}
	launch(0)
	next, pending := 1, 1
	var lastFail attemptResult
	lastFail.err = fmt.Errorf("no attempt completed")
	for {
		select {
		case got := <-results:
			pending--
			if !retryable(got) {
				return got, hedges
			}
			if got.err != nil {
				c.reg.Counter("fleet.proxy.transport_errors").Inc()
			}
			if got.resp != nil || lastFail.resp == nil {
				lastFail = got
			}
			if next < len(replicas) {
				c.reg.Counter("fleet.failovers").Inc()
				launch(next)
				next++
				pending++
				if hedge {
					// Pre-Go-1.23 timer semantics: the timer may have fired
					// while this failover was being handled, leaving a stale
					// tick in timer.C that Reset does not clear — drain it or
					// the next select launches one premature hedge.
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					timer.Reset(budget)
				}
			} else if pending == 0 {
				return lastFail, hedges
			}
		case <-timer.C:
			if next < len(replicas) {
				c.reg.Counter("fleet.hedges").Inc()
				hedges++
				launch(next)
				next++
				pending++
				timer.Reset(budget)
			}
		case <-ctx.Done():
			return attemptResult{worker: replicas[0], err: ctx.Err()}, hedges
		}
	}
}

// attempt issues one worker request and buffers the reply. Non-owner
// attempts (i > 0) carry X-Mirage-Owner naming the key's owner — the
// worker's peering hook asks the owner for the bytes before simulating —
// and X-Mirage-Hedge with the attempt number for the worker's access log.
// Client-supplied X-Mirage-* headers are stripped before forwarding: they
// are fleet-internal routing metadata, and a forged X-Mirage-Owner would
// point the worker's peer fetch at an attacker-chosen URL whose reply gets
// cached and persisted as the canonical result for the key.
func (c *Coordinator) attempt(ctx context.Context, r *http.Request, worker, owner string, i int, body []byte) (*workerResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, worker+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	stripMirageHeaders(req.Header)
	if i > 0 {
		req.Header.Set("X-Mirage-Owner", owner)
		req.Header.Set("X-Mirage-Hedge", strconv.Itoa(i))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &workerResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// hopHeaders are not forwarded in either direction.
var hopHeaders = map[string]bool{
	"Connection":        true,
	"Keep-Alive":        true,
	"Te":                true,
	"Trailer":           true,
	"Transfer-Encoding": true,
	"Upgrade":           true,
	"Content-Length":    true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// stripMirageHeaders drops every X-Mirage-* header from an outbound worker
// request; only the coordinator itself may stamp fleet routing metadata.
func stripMirageHeaders(h http.Header) {
	for k := range h {
		if strings.HasPrefix(http.CanonicalHeaderKey(k), "X-Mirage-") {
			h.Del(k)
		}
	}
}

// logProxy emits the coordinator's one access-log line per request.
func (c *Coordinator) logProxy(r *http.Request, route, key, worker string, attempt, hedges, status int, dur time.Duration) {
	if c.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("worker", worker),
		slog.Int("status", status),
		slog.Int("attempt", attempt),
		slog.Int("hedges", hedges),
		slog.Int64("dur_us", dur.Microseconds()),
	}
	if key != "" {
		attrs = append(attrs, slog.String("key", key))
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		attrs = append(attrs, slog.String("request_id", id))
	}
	c.logger.LogAttrs(context.Background(), slog.LevelInfo, "proxy", attrs...)
}
