// Health-driven ring membership: the coordinator polls every worker's
// /v1/healthz and takes non-200 responders out of rotation. A worker that
// starts draining (503 since the drain fix) or dies (transport error)
// stops owning keys within one probe interval; when it comes back its disk
// store gives it warm re-entry, so returning a member to the ring is cheap.

package fleet

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"log/slog"

	"repro/internal/telemetry"
)

// prober owns the background health loop. Construct via the Coordinator;
// tests drive probeOnce directly for determinism.
type prober struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration
	logger   *slog.Logger
	reg      *telemetry.Registry

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newProber(ring *Ring, client *http.Client, interval time.Duration, logger *slog.Logger, reg *telemetry.Registry) *prober {
	return &prober{
		ring:     ring,
		client:   client,
		interval: interval,
		logger:   logger,
		reg:      reg,
		done:     make(chan struct{}),
	}
}

// start launches the poll loop; stop (idempotent) halts it and waits.
func (p *prober) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.done:
				return
			case <-t.C:
				p.probeOnce(context.Background())
			}
		}
	}()
}

func (p *prober) stop() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

// probeOnce checks every configured worker concurrently and applies the
// verdicts to the ring, logging each transition as a re-shard.
func (p *prober) probeOnce(ctx context.Context) {
	workers := p.ring.Workers()
	verdicts := make([]bool, len(workers)) // true = healthy
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			verdicts[i] = p.healthy(ctx, w)
		}(i, w)
	}
	wg.Wait()
	healthy := 0
	for _, ok := range verdicts {
		if ok {
			healthy++
		}
	}
	for i, w := range workers {
		if !p.ring.SetDown(w, !verdicts[i]) {
			continue
		}
		// Membership changed: the ring just re-sharded around this worker.
		p.reg.Counter("fleet.ring.reshards").Inc()
		if p.logger != nil {
			p.logger.Info("ring re-shard",
				"worker", w, "healthy", verdicts[i],
				"healthy_workers", healthy, "total_workers", len(workers))
		}
	}
	p.reg.Gauge("fleet.workers.healthy").Set(float64(healthy))
	p.reg.Gauge("fleet.workers.total").Set(float64(len(workers)))
}

// healthy is one probe: 200 from /v1/healthz within the probe interval.
// Any transport error or other status (including the 503 a draining worker
// returns) is unhealthy.
func (p *prober) healthy(ctx context.Context, worker string) bool {
	pctx, cancel := context.WithTimeout(ctx, p.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.reg.Counter("fleet.probe.errors").Inc()
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}
