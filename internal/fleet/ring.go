// Consistent-hash ring over the fleet's workers. Canonical job keys map to
// an owner plus an ordered list of distinct fallback replicas; when a
// worker leaves (health probe failure) or returns, only the keys adjacent
// to its virtual nodes move — the rest of the fleet's cache placement is
// undisturbed, which is the whole point of hashing consistently instead of
// key mod N.

package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVNodes is the virtual-node count per worker: enough that key
// ownership spreads within a few percent of even across a small fleet.
const defaultVNodes = 64

// point is one virtual node: a position on the 64-bit hash circle owned by
// a worker.
type point struct {
	hash   uint64
	worker string
}

// Ring is a consistent-hash ring with health-driven membership. All methods
// are safe for concurrent use; SetDown rebuilds the point table, the read
// side pays one RLock and a binary search.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	workers []string // every configured member, in config order
	down    map[string]bool
	points  []point // sorted virtual nodes of healthy members only
}

// NewRing builds a ring over workers (all initially healthy). vnodes <= 0
// selects the default.
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet ring needs at least one worker")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("fleet ring worker URL is empty")
		}
		if seen[w] {
			return nil, fmt.Errorf("fleet ring worker %q listed twice", w)
		}
		seen[w] = true
	}
	r := &Ring{
		vnodes:  vnodes,
		workers: append([]string(nil), workers...),
		down:    make(map[string]bool, len(workers)),
	}
	r.rebuildLocked()
	return r, nil
}

// hash64 hashes a string onto the ring circle. Raw FNV-1a is unusable
// here: its final step is one multiply by a 40-bit prime, so strings that
// differ only in trailing bytes differ only in their low ~48 bits and
// cluster on a sliver of the 2^64 circle (canonical job keys differ almost
// entirely in trailing bytes). The Murmur3-style finalizer avalanches
// every input bit across the full word, restoring uniform placement.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rebuildLocked recomputes the sorted point table from the healthy members.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for _, w := range r.workers {
		if r.down[w] {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", w, i)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// SetDown marks a worker's health, reporting whether the ring changed (the
// caller logs re-shards only on transitions). Unknown workers are ignored.
func (r *Ring) SetDown(worker string, down bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	known := false
	for _, w := range r.workers {
		if w == worker {
			known = true
			break
		}
	}
	if !known || r.down[worker] == down {
		return false
	}
	r.down[worker] = down
	r.rebuildLocked()
	return true
}

// Workers returns every configured member in config order.
func (r *Ring) Workers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.workers...)
}

// Healthy returns the members currently in rotation, in config order.
func (r *Ring) Healthy() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.workers))
	for _, w := range r.workers {
		if !r.down[w] {
			out = append(out, w)
		}
	}
	return out
}

// Down reports whether a worker is currently out of rotation.
func (r *Ring) Down(worker string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.down[worker]
}

// Replicas returns up to n distinct healthy workers for key, in ring order
// starting at the key's successor point. Replicas(key, 1)[0] is the key's
// owner; later entries are the hedge/failover order. n <= 0 means every
// healthy worker. An empty result means the fleet has no healthy members.
func (r *Ring) Replicas(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	healthy := 0
	for _, w := range r.workers {
		if !r.down[w] {
			healthy++
		}
	}
	if n <= 0 || n > healthy {
		n = healthy
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// Owner returns the healthy worker owning key, or ("", false) when the
// fleet has no healthy members.
func (r *Ring) Owner(key string) (string, bool) {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return "", false
	}
	return reps[0], true
}
