package fleet

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, workers []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(workers, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty worker list: want error")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Fatal("duplicate worker: want error")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty worker URL: want error")
	}
}

func TestRingReplicasDistinctAndStable(t *testing.T) {
	workers := []string{"http://w1", "http://w2", "http://w3"}
	r := mustRing(t, workers, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("run|seed=%d", i)
		reps := r.Replicas(key, 0)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", key, len(reps))
		}
		seen := map[string]bool{}
		for _, w := range reps {
			if seen[w] {
				t.Fatalf("key %q: duplicate replica %q in %v", key, w, reps)
			}
			seen[w] = true
		}
		// Deterministic: the same key always maps identically.
		again := r.Replicas(key, 0)
		for j := range reps {
			if reps[j] != again[j] {
				t.Fatalf("key %q: replicas unstable: %v vs %v", key, reps, again)
			}
		}
		if owner, ok := r.Owner(key); !ok || owner != reps[0] {
			t.Fatalf("key %q: Owner %q/%v, want %q", key, owner, ok, reps[0])
		}
	}
}

func TestRingSpreadsOwnership(t *testing.T) {
	r := mustRing(t, []string{"http://w1", "http://w2", "http://w3"}, 0)
	byOwner := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("run|seed=%d", i))
		byOwner[owner]++
	}
	if len(byOwner) != 3 {
		t.Fatalf("only %d workers own keys: %v", len(byOwner), byOwner)
	}
	for w, n := range byOwner {
		// Loose bound: each worker owns a real share, not a sliver.
		if n < keys/10 {
			t.Fatalf("worker %s owns %d/%d keys — ring badly unbalanced: %v", w, n, keys, byOwner)
		}
	}
}

// TestRingMinimalDisruption is the consistency property: taking one worker
// down moves only the keys it owned; every key owned by a surviving worker
// keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	r := mustRing(t, []string{"http://w1", "http://w2", "http://w3"}, 0)
	const keys = 200
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("run|seed=%d", i)
		before[k], _ = r.Owner(k)
	}
	if !r.SetDown("http://w2", true) {
		t.Fatal("SetDown reported no change")
	}
	if r.SetDown("http://w2", true) {
		t.Fatal("repeated SetDown reported a change")
	}
	moved := 0
	for k, owner := range before {
		now, ok := r.Owner(k)
		if !ok {
			t.Fatalf("key %q lost its owner", k)
		}
		if owner == "http://w2" {
			moved++
			if now == "http://w2" {
				t.Fatalf("key %q still owned by downed worker", k)
			}
		} else if now != owner {
			t.Fatalf("key %q moved %s -> %s though its owner stayed healthy", k, owner, now)
		}
	}
	if moved == 0 {
		t.Fatal("downed worker owned no keys; test proves nothing")
	}
	// Recovery restores the exact original placement.
	r.SetDown("http://w2", false)
	for k, owner := range before {
		if now, _ := r.Owner(k); now != owner {
			t.Fatalf("after recovery key %q owned by %s, want %s", k, now, owner)
		}
	}
	if got := len(r.Healthy()); got != 3 {
		t.Fatalf("healthy = %d after recovery, want 3", got)
	}
}

func TestRingAllDown(t *testing.T) {
	r := mustRing(t, []string{"http://w1", "http://w2"}, 0)
	r.SetDown("http://w1", true)
	r.SetDown("http://w2", true)
	if reps := r.Replicas("run|x", 0); reps != nil {
		t.Fatalf("all-down replicas = %v, want nil", reps)
	}
	if _, ok := r.Owner("run|x"); ok {
		t.Fatal("all-down Owner reported ok")
	}
	// Unknown workers never change the ring.
	if r.SetDown("http://stranger", true) {
		t.Fatal("SetDown on unknown worker reported a change")
	}
}
