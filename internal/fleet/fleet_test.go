// Coordinator unit tests over httptest workers: shard routing, failover,
// hedging, health-driven eviction, and header attribution. The full-stack
// fleet e2e (real miraged workers, chaos faults, byte-identical sweeps)
// lives in internal/chaos.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"log/slog"
)

// fakeWorker is a minimal miraged stand-in: healthz plus an echo of which
// worker served, with pluggable per-request behaviour.
type fakeWorker struct {
	name    string
	srv     *httptest.Server
	healthy atomic.Bool
	served  atomic.Int64
	// handle, when set, overrides the default echo response.
	handle atomic.Pointer[http.HandlerFunc]

	mu   sync.Mutex
	reqs []*http.Request
}

func newFakeWorker(t *testing.T, name string) *fakeWorker {
	t.Helper()
	w := &fakeWorker{name: name}
	w.healthy.Store(true)
	w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			if !w.healthy.Load() {
				rw.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprint(rw, `{"status": "ok"}`)
			return
		}
		w.served.Add(1)
		w.mu.Lock()
		w.reqs = append(w.reqs, r.Clone(context.Background()))
		w.mu.Unlock()
		if h := w.handle.Load(); h != nil {
			(*h)(rw, r)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"worker": %q}`, w.name)
	}))
	t.Cleanup(w.srv.Close)
	return w
}

func (w *fakeWorker) lastReq(t *testing.T) *http.Request {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.reqs) == 0 {
		t.Fatal("worker served no requests")
	}
	return w.reqs[len(w.reqs)-1]
}

func newTestFleet(t *testing.T, workers []*fakeWorker, opt func(*Config)) *Coordinator {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	cfg := Config{Workers: urls, ProbeInterval: 50 * time.Millisecond}
	if opt != nil {
		opt(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func servedBy(rec *httptest.ResponseRecorder) string {
	var r struct {
		Worker string `json:"worker"`
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &r)
	return r.Worker
}

func post(c *Coordinator, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	return rec
}

func TestCoordinatorShardsDeterministically(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	c := newTestFleet(t, ws, nil)
	byWorker := map[string]bool{}
	for i := 0; i < 30; i++ {
		body := fmt.Sprintf(`{"mix": ["hmmer"], "seed": "shard-%d"}`, i)
		first := post(c, "/v1/run", body)
		if first.Code != 200 {
			t.Fatalf("status %d: %s", first.Code, first.Body.Bytes())
		}
		w := servedBy(first)
		byWorker[w] = true
		if w == "" {
			t.Fatalf("request %d: no worker attribution in %s", i, first.Body.Bytes())
		}
		if shard := first.Header().Get("X-Mirage-Shard"); shard == "" {
			t.Fatal("response missing X-Mirage-Shard")
		}
		// The same body routes to the same worker, every time.
		for j := 0; j < 3; j++ {
			if again := servedBy(post(c, "/v1/run", body)); again != w {
				t.Fatalf("key routed to %s then %s", w, again)
			}
		}
	}
	if len(byWorker) < 2 {
		t.Fatalf("30 distinct keys all landed on %v — ring not spreading", byWorker)
	}
}

func TestCoordinatorFailsOverOn503AndTransportError(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	c := newTestFleet(t, ws, nil)
	// Every worker but w3 refuses with 503 (draining shape): whatever the
	// owner is, the request must end on a 200 from some worker.
	refuse := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(rw, `{"error": "server is draining"}`)
	})
	ws[0].handle.Store(&refuse)
	ws[1].handle.Store(&refuse)
	rec := post(c, "/v1/run", `{"mix": ["hmmer"], "seed": "failover"}`)
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200 via failover: %s", rec.Code, rec.Body.Bytes())
	}
	if got := servedBy(rec); got != "w3" {
		t.Fatalf("served by %s, want w3", got)
	}

	// Transport-level death: kill w3's listener too and the coordinator
	// reports the last worker-shaped failure (the 503), not a hang.
	ws[2].srv.CloseClientConnections()
	ws[2].srv.Close()
	rec = post(c, "/v1/run", `{"mix": ["hmmer"], "seed": "failover-2"}`)
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusBadGateway {
		t.Fatalf("all-failed status %d, want 503 or 502: %s", rec.Code, rec.Body.Bytes())
	}
}

func TestCoordinatorHedgesSlowOwner(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	release := make(chan struct{})
	stall := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(rw, `{"worker": "stalled"}`)
	})
	// Stall every worker except one fast responder; whoever owns the key,
	// hedging must reach the fast worker.
	fastIdx := 2
	for i, w := range ws {
		if i != fastIdx {
			w.handle.Store(&stall)
		}
	}
	defer close(release)
	c := newTestFleet(t, ws, func(cfg *Config) {
		cfg.HedgeMin = 20 * time.Millisecond
		cfg.HedgeMax = 20 * time.Millisecond
	})
	body := `{"mix": ["hmmer"], "seed": "hedge-me"}`
	start := time.Now()
	rec := post(c, "/v1/run", body)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if got := servedBy(rec); got != ws[fastIdx].name {
		// The fast worker may have been the owner — then no hedge fired.
		// Force the interesting case by checking attribution only when the
		// hedge counter moved.
		t.Fatalf("served by %s, want %s", got, ws[fastIdx].name)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hedge took implausibly long")
	}
	// If the fast worker was not the owner, the response is attributed as
	// hedged and the hedged request carried the owner hint.
	if rec.Header().Get("X-Mirage-Hedged") != "" {
		req := ws[fastIdx].lastReq(t)
		if req.Header.Get("X-Mirage-Owner") == "" {
			t.Fatal("hedged request missing X-Mirage-Owner")
		}
		if req.Header.Get("X-Mirage-Hedge") == "" {
			t.Fatal("hedged request missing X-Mirage-Hedge")
		}
		if c.reg.Counter("fleet.hedges").Value() == 0 {
			t.Fatal("fleet.hedges counter did not move")
		}
	}
}

func TestProberEvictsAndRestores(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	var logBuf bytes.Buffer
	logMu := &sync.Mutex{}
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: logMu, w: &logBuf}, nil))
	c := newTestFleet(t, ws, func(cfg *Config) { cfg.Logger = logger })
	c.ProbeOnce(context.Background())
	if got := len(c.Ring().Healthy()); got != 3 {
		t.Fatalf("healthy = %d, want 3", got)
	}

	ws[1].healthy.Store(false) // draining: healthz now 503
	c.ProbeOnce(context.Background())
	if c.Ring().Down(ws[0].srv.URL) || !c.Ring().Down(ws[1].srv.URL) || c.Ring().Down(ws[2].srv.URL) {
		t.Fatalf("eviction state wrong: healthy=%v", c.Ring().Healthy())
	}
	for i := 0; i < 20; i++ {
		rec := post(c, "/v1/run", fmt.Sprintf(`{"mix": ["hmmer"], "seed": "evict-%d"}`, i))
		if rec.Code != 200 {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
		if got := servedBy(rec); got == "w2" {
			t.Fatal("evicted worker served a request")
		}
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "ring re-shard") {
		t.Fatalf("eviction did not log a ring re-shard:\n%s", logged)
	}

	// Recovery: the worker re-enters on the next probe.
	ws[1].healthy.Store(true)
	c.ProbeOnce(context.Background())
	if got := len(c.Ring().Healthy()); got != 3 {
		t.Fatalf("healthy = %d after recovery, want 3", got)
	}
	if c.reg.Counter("fleet.ring.reshards").Value() != 2 {
		t.Fatalf("reshards = %d, want 2 (evict + restore)", c.reg.Counter("fleet.ring.reshards").Value())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestCoordinatorPassesThroughValidationErrors: a body whose key cannot be
// derived still routes (deterministically, unhedged) and the worker's
// response comes back verbatim.
func TestCoordinatorPassesThroughValidationErrors(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	reject := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(rw, `{"error": "unknown benchmark \"nope\""}`)
	})
	for _, w := range ws {
		w.handle.Store(&reject)
	}
	c := newTestFleet(t, ws, nil)
	body := `{"mix": ["nope"]}`
	rec := post(c, "/v1/run", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want the worker's 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unknown benchmark") {
		t.Fatalf("worker error body not passed through: %s", rec.Body.Bytes())
	}
	// Deterministic: repeats land on the same worker.
	first := ws[0].served.Load() + ws[1].served.Load()
	if first != 1 {
		t.Fatalf("validation-failure request hit %d workers, want exactly 1", first)
	}
	for i := 0; i < 5; i++ {
		post(c, "/v1/run", body)
	}
	if ws[0].served.Load() != 0 && ws[1].served.Load() != 0 {
		t.Fatal("unkeyed fallback routing is not deterministic")
	}
}

func TestCoordinatorHealthz(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	c := newTestFleet(t, ws, nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var h struct {
		Status         string   `json:"status"`
		Role           string   `json:"role"`
		HealthyWorkers []string `json:"healthy_workers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "coordinator" || len(h.HealthyWorkers) != 2 {
		t.Fatalf("healthz body = %+v", h)
	}

	for _, w := range ws {
		w.healthy.Store(false)
	}
	c.ProbeOnce(context.Background())
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-workers healthz status %d, want 503", rec.Code)
	}
	// And simulation requests fail fast with a clean 503.
	if rec := post(c, "/v1/run", `{"mix": ["hmmer"]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-workers run status %d, want 503", rec.Code)
	}
}

// TestCoordinatorStripsClientMirageHeaders: X-Mirage-* is fleet-internal
// routing metadata. A client smuggling X-Mirage-Owner through the proxy
// would point the worker's peer fetch at an attacker URL, so the
// coordinator must drop the whole header family while still forwarding
// ordinary headers.
func TestCoordinatorStripsClientMirageHeaders(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1")}
	c := newTestFleet(t, ws, nil)
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"mix": ["hmmer"]}`))
	req.Header.Set("X-Mirage-Owner", "http://evil.example")
	req.Header.Set("X-Mirage-Hedge", "7")
	req.Header.Set("X-Request-ID", "keep-me")
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	got := ws[0].lastReq(t)
	for _, h := range []string{"X-Mirage-Owner", "X-Mirage-Hedge"} {
		if v := got.Header.Get(h); v != "" {
			t.Fatalf("client-supplied %s forwarded to the worker (= %q)", h, v)
		}
	}
	if got.Header.Get("X-Request-ID") != "keep-me" {
		t.Fatal("ordinary client header was not forwarded")
	}
}

// TestCoordinatorRefusesInternalPaths: /internal/* is the workers' peering
// surface; the coordinator must not hand clients a proxy into it.
func TestCoordinatorRefusesInternalPaths(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	c := newTestFleet(t, ws, nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/internal/peer/cache?key=run%7Cx", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if n := ws[0].served.Load() + ws[1].served.Load(); n != 0 {
		t.Fatalf("internal path reached %d worker(s)", n)
	}
	if c.reg.Counter("fleet.requests.internal_refused").Value() != 1 {
		t.Fatal("refusal not counted")
	}
}

// TestCoordinatorClientCancelNotUnreachable: a client disconnecting while
// every worker is still thinking is a cancellation, not a fleet outage —
// it must land in the client_cancelled counter and a 499 log line, never
// in fleet.requests.unreachable.
func TestCoordinatorClientCancelNotUnreachable(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1")}
	release := make(chan struct{})
	defer close(release) // unblock the handler before cleanup closes the server
	stall := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// Drain the body: with unread request data the net/http server skips
		// the background read that detects the client closing, and the
		// handler would never observe the coordinator's cancellation.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	})
	ws[0].handle.Store(&stall)
	c := newTestFleet(t, ws, nil)
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"mix": ["hmmer"]}`)).WithContext(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if got := c.reg.Counter("fleet.requests.client_cancelled").Value(); got != 1 {
		t.Fatalf("client_cancelled = %d, want 1", got)
	}
	if got := c.reg.Counter("fleet.requests.unreachable").Value(); got != 0 {
		t.Fatalf("unreachable = %d, want 0 — client cancel misattributed as outage", got)
	}
}

func TestCoordinatorMetrics(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w1")}
	c := newTestFleet(t, ws, nil)
	if rec := post(c, "/v1/run", `{"mix": ["hmmer"]}`); rec.Code != 200 {
		t.Fatalf("run status %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "fleet.requests") {
		t.Fatalf("metrics missing fleet counters: %s", rec.Body.Bytes())
	}
}
