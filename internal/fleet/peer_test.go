// NewPeerFetch unit tests: the owner URL arrives in a client-forgeable
// header, so fetches must stay inside the configured fleet allowlist and
// carry the shared peering secret.

package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

func TestPeerFetchAllowlist(t *testing.T) {
	var served atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, `{"cached": true}`)
	}))
	defer owner.Close()

	// Owner on the allowlist (with a trailing-slash spelling to normalize).
	fetch := NewPeerFetch(nil, []string{owner.URL + "/"}, "")
	b, ok := fetch(context.Background(), owner.URL, "run|k")
	if !ok || string(b) != `{"cached": true}` {
		t.Fatalf("allowlisted owner: ok=%v body=%s", ok, b)
	}

	// An owner not on the allowlist is refused without any request — this
	// is the SSRF/poisoning guard, so no bytes may flow at all.
	before := served.Load()
	if _, ok := fetch(context.Background(), "http://evil.example", "run|k"); ok {
		t.Fatal("non-allowlisted owner returned bytes")
	}
	if served.Load() != before {
		t.Fatal("non-allowlisted owner was contacted")
	}

	// An empty allowlist fails closed: even the real owner is refused.
	deny := NewPeerFetch(nil, nil, "")
	if _, ok := deny(context.Background(), owner.URL, "run|k"); ok {
		t.Fatal("empty allowlist returned bytes")
	}
	if served.Load() != before {
		t.Fatal("empty allowlist still contacted the owner")
	}
}

func TestPeerFetchSendsAuth(t *testing.T) {
	const secret = "fleet-secret"
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(server.PeerAuthHeader) != secret {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer owner.Close()

	withAuth := NewPeerFetch(nil, []string{owner.URL}, secret)
	if b, ok := withAuth(context.Background(), owner.URL, "run|k"); !ok || string(b) != "ok" {
		t.Fatalf("authed fetch: ok=%v body=%s", ok, b)
	}
	// Missing secret: the owner's 403 is a miss, never a cacheable result.
	without := NewPeerFetch(nil, []string{owner.URL}, "")
	if _, ok := without(context.Background(), owner.URL, "run|k"); ok {
		t.Fatal("unauthenticated fetch against an authed owner reported a hit")
	}
}
