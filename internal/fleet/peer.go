// Worker-side cache peering client. A worker that receives a hedged or
// failed-over request (X-Mirage-Owner set) asks the key's owner for the
// bytes before simulating; the owner answers from its memory or disk tier
// only — it never simulates on a peer's behalf — so peering is strictly
// cheaper than recomputing and each key is simulated at most once
// fleet-wide in the steady state.
//
// The owner URL arrives in a request header, so it is attacker-reachable
// data: a worker only ever fetches from owners on its configured fleet
// allowlist (fail closed — an empty allowlist fetches from nobody), which
// keeps a forged X-Mirage-Owner from turning the peer fetch into an SSRF
// that poisons the cache and result store with attacker-chosen bytes.

package fleet

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/server"
)

// peerFetchTimeout bounds one peer-cache lookup: past it the worker is
// better off simulating than waiting on a struggling owner.
const peerFetchTimeout = 2 * time.Second

// NewPeerFetch returns a server.Config.PeerFetch implementation over
// client (nil uses a dedicated default). peers is the fleet membership
// allowlist — the worker base URLs the coordinator shards over, this
// worker included; an owner hint naming any other URL is refused without
// a request. auth, when non-empty, is sent as the server.PeerAuthHeader
// shared secret (the owning worker must be configured with the same
// value). The returned func GETs the owner's /internal/peer/cache
// endpoint and reports (bytes, true) only on a 200; any error, timeout,
// miss or allowlist refusal means (nil, false) and the caller simulates
// locally.
func NewPeerFetch(client *http.Client, peers []string, auth string) func(ctx context.Context, owner, key string) ([]byte, bool) {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	allowed := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			allowed[p] = true
		}
	}
	return func(ctx context.Context, owner, key string) ([]byte, bool) {
		if !allowed[strings.TrimRight(owner, "/")] {
			return nil, false
		}
		pctx, cancel := context.WithTimeout(ctx, peerFetchTimeout)
		defer cancel()
		u := owner + "/internal/peer/cache?key=" + url.QueryEscape(key)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, false
		}
		if auth != "" {
			req.Header.Set(server.PeerAuthHeader, auth)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return nil, false
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false
		}
		return b, true
	}
}
