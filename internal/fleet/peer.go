// Worker-side cache peering client. A worker that receives a hedged or
// failed-over request (X-Mirage-Owner set) asks the key's owner for the
// bytes before simulating; the owner answers from its memory or disk tier
// only — it never simulates on a peer's behalf — so peering is strictly
// cheaper than recomputing and each key is simulated at most once
// fleet-wide in the steady state.

package fleet

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"time"
)

// peerFetchTimeout bounds one peer-cache lookup: past it the worker is
// better off simulating than waiting on a struggling owner.
const peerFetchTimeout = 2 * time.Second

// NewPeerFetch returns a server.Config.PeerFetch implementation over
// client (nil uses a dedicated default). The returned func GETs the
// owner's /internal/peer/cache endpoint and reports (bytes, true) only on
// a 200; any error, timeout or miss means (nil, false) and the caller
// simulates locally.
func NewPeerFetch(client *http.Client) func(ctx context.Context, owner, key string) ([]byte, bool) {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return func(ctx context.Context, owner, key string) ([]byte, bool) {
		pctx, cancel := context.WithTimeout(ctx, peerFetchTimeout)
		defer cancel()
		u := owner + "/internal/peer/cache?key=" + url.QueryEscape(key)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, false
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return nil, false
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false
		}
		return b, true
	}
}
