// End-to-end tests for the serving observability layer (DESIGN.md §12):
// request IDs, the structured access log, span timelines exported at
// /debug/requests/trace, Prometheus exposition and /debug/statusz.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"repro/internal/core"
	"repro/internal/experiments"
)

// syncBuffer is a goroutine-safe log destination.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines parses every line of the JSON access log.
func logLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not valid JSON: %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// requestLine finds the access-log entry for a request ID.
func requestLine(t *testing.T, b *syncBuffer, id string) map[string]any {
	t.Helper()
	for _, m := range logLines(t, b) {
		if m["msg"] == "request" && m["request_id"] == id {
			return m
		}
	}
	t.Fatalf("no access-log line for request %s in:\n%s", id, b.String())
	return nil
}

// obsTestServer builds a fake-backed server logging JSON into buf.
func obsTestServer(t *testing.T, buf *syncBuffer, opt func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, func(cfg *Config) {
		cfg.Logger = slog.New(slog.NewJSONHandler(buf, nil))
		cfg.Backend = fakeBackend{
			run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
				return fakeMixResult(cfg), nil
			},
			reports: func(ctx context.Context, sc experiments.Scale, ids []string) ([]*experiments.Report, error) {
				var reports []*experiments.Report
				for _, id := range ids {
					reports = append(reports, &experiments.Report{ID: id, Notes: "fake " + id})
				}
				return reports, nil
			},
		}
		if opt != nil {
			opt(cfg)
		}
	})
}

// postWithID is postJSON plus an X-Request-ID header.
func postWithID(t *testing.T, h http.Handler, path, body, id string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	if id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestColdSweepObservability is the acceptance-criteria e2e: one cold
// /v1/sweep must produce (a) an access-log line carrying the request ID with
// cache=miss and role=leader, (b) a span timeline at /debug/requests/trace
// containing admission, simulate and encode spans attributed to that
// request, and (c) a populated per-route latency histogram with a finite p99
// visible in the Prometheus exposition.
func TestColdSweepObservability(t *testing.T) {
	var buf syncBuffer
	srv := obsTestServer(t, &buf, nil)
	const reqID = "e2e-sweep-1"

	rec := postWithID(t, srv, "/v1/sweep", `{"scale":"tiny"}`, reqID)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID echo = %q, want %q", got, reqID)
	}

	// (a) the access-log line.
	line := requestLine(t, &buf, reqID)
	if line["route"] != "sweep" || line["cache"] != "miss" || line["role"] != "leader" {
		t.Errorf("access log = %v, want route=sweep cache=miss role=leader", line)
	}
	if line["status"] != float64(http.StatusOK) {
		t.Errorf("logged status = %v, want 200", line["status"])
	}
	if b, ok := line["bytes"].(float64); !ok || b <= 0 {
		t.Errorf("logged bytes = %v, want > 0", line["bytes"])
	}
	if _, ok := line["queue_wait_us"].(float64); !ok {
		t.Errorf("leader line missing queue_wait_us: %v", line)
	}
	if d, ok := line["deadline_ms"].(float64); !ok || d <= 0 {
		t.Errorf("logged deadline_ms = %v, want > 0", line["deadline_ms"])
	}
	if _, hasFault := line["fault"]; hasFault {
		t.Errorf("fault field on a fault-free request: %v", line)
	}

	// (b) the span timeline.
	trec := get(t, srv, "/debug/requests/trace")
	if trec.Code != http.StatusOK {
		t.Fatalf("trace status = %d", trec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(trec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	spans := map[string]bool{}
	for _, ev := range events {
		args, _ := ev["args"].(map[string]any)
		if args != nil && args["request_id"] == reqID {
			if name, _ := ev["name"].(string); name != "" {
				spans[name] = true
			}
		}
	}
	for _, want := range []string{"request", "admission", "simulate", "encode", "write", "cache_lookup", "singleflight_wait"} {
		if !spans[want] {
			t.Errorf("span %q missing from trace for %s (have %v)", want, reqID, spans)
		}
	}

	// (c) the per-route latency histogram, in Prometheus exposition.
	mrec := get(t, srv, "/v1/metrics?format=prometheus")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", mrec.Code)
	}
	prom := mrec.Body.String()
	if !strings.Contains(prom, "# TYPE server_http_latency_us_sweep histogram") {
		t.Errorf("prometheus exposition missing sweep latency histogram:\n%s", prom)
	}
	if !strings.Contains(prom, "server_http_latency_us_sweep_count 1") {
		t.Errorf("sweep latency histogram not populated:\n%s", prom)
	}
	p99 := srv.reg.Histogram("server.http.latency_us.sweep").Quantile(0.99)
	if p99 <= 0 || math.IsInf(p99, 0) || math.IsNaN(p99) {
		t.Errorf("sweep latency p99 = %v, want finite and > 0", p99)
	}
}

func TestRequestIDGenerationAndValidation(t *testing.T) {
	var buf syncBuffer
	srv := obsTestServer(t, &buf, nil)

	// No header: a 16-hex-char ID is generated and echoed.
	rec := postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, "")
	id := rec.Header().Get("X-Request-ID")
	if len(id) != 16 {
		t.Errorf("generated ID = %q, want 16 hex chars", id)
	}
	for _, c := range id {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("generated ID %q contains non-hex %q", id, c)
		}
	}
	requestLine(t, &buf, id) // it must appear in the log

	// A sane client ID is honored.
	rec = postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, "client-id-42")
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("client ID not honored: %q", got)
	}

	// Hostile IDs (spaces, quotes, overlong) are replaced, not echoed.
	for _, bad := range []string{"has space", `has"quote`, strings.Repeat("x", 65)} {
		rec = postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, bad)
		got := rec.Header().Get("X-Request-ID")
		if got == bad || len(got) != 16 {
			t.Errorf("hostile ID %q: echoed %q, want a generated one", bad, got)
		}
	}
}

func TestAccessLogCacheOutcomes(t *testing.T) {
	var buf syncBuffer
	srv := obsTestServer(t, &buf, nil)
	body := `{"mix":["bzip2"],"seed":"outcomes"}`

	postWithID(t, srv, "/v1/run", body, "first")
	postWithID(t, srv, "/v1/run", body, "second")

	first := requestLine(t, &buf, "first")
	if first["cache"] != "miss" || first["role"] != "leader" {
		t.Errorf("cold request = %v, want cache=miss role=leader", first)
	}
	second := requestLine(t, &buf, "second")
	if second["cache"] != "hit" {
		t.Errorf("repeat request = %v, want cache=hit", second)
	}
	if second["leader"] != "first" {
		t.Errorf("hit line leader = %v, want attribution to %q", second["leader"], "first")
	}
	if _, hasRole := second["role"]; hasRole {
		t.Errorf("hit line has role = %v, want none", second["role"])
	}
}

func TestAccessLogWaiterOutcome(t *testing.T) {
	var buf syncBuffer
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := obsTestServer(t, &buf, func(cfg *Config) {
		cfg.Backend = fakeBackend{
			run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
				close(entered)
				<-release
				return fakeMixResult(cfg), nil
			},
		}
	})
	body := `{"mix":["bzip2"],"seed":"waiter"}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postWithID(t, srv, "/v1/run", body, "leader-req")
	}()
	<-entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		postWithID(t, srv, "/v1/run", body, "waiter-req")
	}()
	// Wait for the second request to register, then give it a beat to join
	// the in-progress flight before letting the backend finish.
	waitFor(t, "both requests in flight", func() bool {
		srv.inflightMu.Lock()
		defer srv.inflightMu.Unlock()
		return len(srv.inflight) == 2
	})
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	leader := requestLine(t, &buf, "leader-req")
	if leader["role"] != "leader" || leader["cache"] != "miss" {
		t.Errorf("leader line = %v", leader)
	}
	waiter := requestLine(t, &buf, "waiter-req")
	if waiter["role"] != "waiter" || waiter["cache"] != "miss" {
		t.Errorf("waiter line = %v, want role=waiter cache=miss", waiter)
	}
	if waiter["leader"] != "leader-req" {
		t.Errorf("waiter leader = %v, want leader-req", waiter["leader"])
	}
}

func TestHealthzFields(t *testing.T) {
	srv := newTestServer(t, nil)
	rec := get(t, srv, "/v1/healthz")
	var h struct {
		Status         string  `json:"status"`
		ActiveRequests int     `json:"active_requests"`
		Draining       bool    `json:"draining"`
		UptimeSeconds  float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" || h.Draining || h.ActiveRequests != 0 {
		t.Errorf("healthz = %+v, want ok/not-draining/0 active", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v, want >= 0", h.UptimeSeconds)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = get(t, srv, "/v1/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Errorf("post-shutdown healthz = %+v, want draining", h)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	var buf syncBuffer
	srv := obsTestServer(t, &buf, nil)
	postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, "")

	// Default: the native JSON dump.
	rec := get(t, srv, "/v1/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q", ct)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Error("default metrics body is not valid JSON")
	}

	// ?format=prometheus selects text exposition.
	rec = get(t, srv, "/v1/metrics?format=prometheus")
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "# TYPE server_requests counter") {
		t.Errorf("missing requests counter:\n%s", out)
	}
	// No duplicate TYPE declarations (a scraper may reject the whole page).
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if seen[line] {
				t.Errorf("duplicate TYPE line %q", line)
			}
			seen[line] = true
		}
	}

	// An Accept header asking for text/plain selects exposition too.
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	arec := httptest.NewRecorder()
	srv.ServeHTTP(arec, req)
	if ct := arec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept negotiation Content-Type = %q", ct)
	}
}

// brokenWriter fails every body write, simulating a client that vanished
// mid-response.
type brokenWriter struct {
	h    http.Header
	code int
}

func (w *brokenWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *brokenWriter) WriteHeader(code int)      { w.code = code }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("client went away") }

func TestMetricsWriteErrorLoggedAndCounted(t *testing.T) {
	var buf syncBuffer
	srv := obsTestServer(t, &buf, nil)
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	srv.ServeHTTP(&brokenWriter{}, req)
	if got := srv.reg.Counter("server.metrics.write_errors").Value(); got != 1 {
		t.Errorf("write_errors counter = %d, want 1", got)
	}
	if !strings.Contains(buf.String(), "metrics write failed") {
		t.Errorf("write failure not logged:\n%s", buf.String())
	}
}

func TestStatusz(t *testing.T) {
	var buf syncBuffer
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := obsTestServer(t, &buf, func(cfg *Config) {
		cfg.Backend = fakeBackend{
			run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
				close(entered)
				<-release
				return fakeMixResult(cfg), nil
			},
		}
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, "statusz-probe")
	}()
	<-entered
	rec := get(t, srv, "/debug/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz status = %d", rec.Code)
	}
	page := rec.Body.String()
	for _, want := range []string{"uptime:", "build:", "draining:", "active_requests:", "cache_entries:", "cache_hit_ratio:", "id=statusz-probe", "route=run"} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz missing %q:\n%s", want, page)
		}
	}
	close(release)
	wg.Wait()

	// After a repeat request the hit ratio becomes visible.
	postWithID(t, srv, "/v1/run", `{"mix":["bzip2"]}`, "")
	page = get(t, srv, "/debug/statusz").Body.String()
	if !strings.Contains(page, "singleflight_hits: 1") {
		t.Errorf("statusz hit accounting:\n%s", page)
	}
}

func TestPprofMountedOnlyWhenEnabled(t *testing.T) {
	srv := newTestServer(t, nil)
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof mounted without EnablePprof: %d", rec.Code)
	}
	srv = newTestServer(t, func(cfg *Config) { cfg.EnablePprof = true })
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof index status = %d, want 200", rec.Code)
	}
}
