// Serving observability (DESIGN.md §12): request IDs, per-request span
// timelines exported as a Chrome trace, the structured JSON access log, and
// the live /debug/statusz page.
//
// Every request gets an ID (X-Request-ID honored when sane, generated
// otherwise) and a reqTrace that rides its context — including into the
// singleflight flight context, which keeps the leader's values — so spans
// recorded on the flight goroutine (admission wait, simulate, encode)
// attach to the leading request. Completed traces are flattened into a
// bounded telemetry.TraceSink ring buffer served at /debug/requests/trace.

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/runner"
)

// maxRequestIDLen bounds client-supplied X-Request-ID values; longer or
// non-printable IDs are replaced with a generated one so log lines and
// trace exports stay parseable.
const maxRequestIDLen = 64

// span is one timed step of a request: admission queue wait, cache lookup,
// singleflight wait, simulate, encode, write.
type span struct {
	name  string
	start time.Time
	dur   time.Duration
	args  map[string]any
}

// reqTrace is the per-request observability record. The handler goroutine
// and the flight goroutine both append to it (the flight context carries
// the leader's trace), so mutable state sits behind a mutex. All methods
// are safe on a nil receiver: internal callers that construct requests
// without the instrument middleware (tests hitting handlers directly)
// simply record nothing.
type reqTrace struct {
	seq   int64
	id    string
	route string
	start time.Time
	// Fleet attribution, copied off the coordinator's request headers at
	// creation (immutable): owner is the X-Mirage-Owner peer-fetch hint,
	// hedge is the X-Mirage-Hedge attempt number on a re-issued request.
	owner string
	hedge string

	mu        sync.Mutex
	key       string
	role      string // "leader", "waiter" or "" (hit / non-simulation route)
	cache     string // "miss", "hit" or "" (non-simulation route)
	leader    string // request ID of the flight leader that computed the result
	fault     string // injected chaos fault kind, if any (MarkFault)
	peer      string // owner URL the bytes were peer-fetched from, if any
	deadline  time.Duration
	queueWait time.Duration
	spans     []span
}

// requestID is the nil-safe accessor for rt.id (immutable after creation).
func (rt *reqTrace) requestID() string {
	if rt == nil {
		return ""
	}
	return rt.id
}

func (rt *reqTrace) addSpan(name string, start time.Time, dur time.Duration, args map[string]any) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.spans = append(rt.spans, span{name: name, start: start, dur: dur, args: args})
	rt.mu.Unlock()
}

func (rt *reqTrace) setKey(key string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.key = key
	rt.mu.Unlock()
}

func (rt *reqTrace) setOutcome(cache, role, leader string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.cache, rt.role, rt.leader = cache, role, leader
	rt.mu.Unlock()
}

func (rt *reqTrace) setDeadline(d time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.deadline = d
	rt.mu.Unlock()
}

func (rt *reqTrace) setQueueWait(d time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.queueWait = d
	rt.mu.Unlock()
}

func (rt *reqTrace) setFault(kind string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.fault = kind
	rt.mu.Unlock()
}

// ownerHint is the nil-safe accessor for the X-Mirage-Owner peer-fetch
// hint the coordinator attached when routing to a non-owner worker.
func (rt *reqTrace) ownerHint() string {
	if rt == nil {
		return ""
	}
	return rt.owner
}

func (rt *reqTrace) setPeer(owner string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.peer = owner
	rt.mu.Unlock()
}

func (rt *reqTrace) faultKind() string {
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.fault
}

// traceCtxKey carries the *reqTrace through the request context and — via
// the singleflight flight context, which keeps values — to the flight
// goroutine.
type traceCtxKey struct{}

func withTrace(ctx context.Context, rt *reqTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, rt)
}

func traceFrom(ctx context.Context) *reqTrace {
	rt, _ := ctx.Value(traceCtxKey{}).(*reqTrace)
	return rt
}

// withSpan times f and records it as a span on the request trace carried by
// ctx (the leader's trace, when called on a flight goroutine).
func withSpan(ctx context.Context, name string, f func() error) error {
	start := time.Now()
	err := f()
	traceFrom(ctx).addSpan(name, start, time.Since(start), nil)
	return err
}

// MarkFault records an injected fault kind against the request trace and
// telemetry registry carried by ctx: the access-log entry for the affected
// request gains a "fault" field and the registry counter
// "server.chaos.faults.<kind>" is incremented. Fault-injecting backends
// (internal/chaos) call this so observability stays truthful under failure;
// it is safe when ctx carries neither a trace nor a registry.
func MarkFault(ctx context.Context, kind string) {
	traceFrom(ctx).setFault(kind)
	runner.RegistryFrom(ctx).Counter("server.chaos.faults." + kind).Inc()
}

// requestIDSeq backs the fallback ID generator; crypto/rand failing is
// practically impossible, but an access log must never lose a request over it.
var requestIDSeq atomic.Int64

// newRequestID generates a 16-hex-character random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestIDSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// incomingRequestID honors a sane client-supplied X-Request-ID (printable
// ASCII, at most maxRequestIDLen, no '"' so log lines stay unambiguous) and
// generates one otherwise.
func incomingRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > maxRequestIDLen {
		return newRequestID()
	}
	for _, c := range id {
		if c < 0x21 || c > 0x7e || c == '"' {
			return newRequestID()
		}
	}
	return id
}

// statusWriter captures the status code and body size for the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// flightInfo is the per-key record linking a flight back to the request
// that led it, so waiters and cache hits can log which leader computed
// their bytes and whether a fault was injected into that flight.
type flightInfo struct {
	mu     sync.Mutex
	leader string
	fault  string

	// LRU bookkeeping through Server.flights (guarded by Server.flightsMu):
	// this map shadows the response cache one record per job key, so without
	// its own bound it re-leaks exactly the zipfian-tail growth the cache's
	// LRU was built to stop.
	key        string
	prev, next *flightInfo
}

func (fi *flightInfo) setLeader(id string) {
	fi.mu.Lock()
	fi.leader = id
	fi.fault = "" // a fresh flight starts fault-free
	fi.mu.Unlock()
}

func (fi *flightInfo) setFault(kind string) {
	if kind == "" {
		return
	}
	fi.mu.Lock()
	fi.fault = kind
	fi.mu.Unlock()
}

func (fi *flightInfo) get() (leader, fault string) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.leader, fi.fault
}

// flightFor returns (lazily creating) the flight record for key, keeping
// the map bounded: records are LRU-ordered and creation past maxFlights
// evicts the coldest. Callers hold their *flightInfo by pointer, so an
// evicted record stays usable for requests already attached to it — a
// later lookup for the same key simply starts a fresh record (at worst one
// waiter logs an empty leader, never a wrong one).
func (s *Server) flightFor(key string) *flightInfo {
	s.flightsMu.Lock()
	defer s.flightsMu.Unlock()
	if s.flights == nil {
		s.flights = make(map[string]*flightInfo)
	}
	fi, ok := s.flights[key]
	if ok {
		s.flightUnlinkLocked(fi)
		s.flightPushFrontLocked(fi)
		return fi
	}
	fi = &flightInfo{key: key}
	s.flights[key] = fi
	s.flightPushFrontLocked(fi)
	for s.maxFlights > 0 && len(s.flights) > s.maxFlights && s.flightTail != nil {
		evict := s.flightTail
		s.flightUnlinkLocked(evict)
		delete(s.flights, evict.key)
	}
	return fi
}

func (s *Server) flightUnlinkLocked(fi *flightInfo) {
	if fi.prev != nil {
		fi.prev.next = fi.next
	} else if s.flightHead == fi {
		s.flightHead = fi.next
	}
	if fi.next != nil {
		fi.next.prev = fi.prev
	} else if s.flightTail == fi {
		s.flightTail = fi.prev
	}
	fi.prev, fi.next = nil, nil
}

func (s *Server) flightPushFrontLocked(fi *flightInfo) {
	fi.prev, fi.next = nil, s.flightHead
	if s.flightHead != nil {
		s.flightHead.prev = fi
	}
	s.flightHead = fi
	if s.flightTail == nil {
		s.flightTail = fi
	}
}

// flightsLen reports the flight-record count (tests assert boundedness).
func (s *Server) flightsLen() int {
	s.flightsMu.Lock()
	defer s.flightsMu.Unlock()
	return len(s.flights)
}

// instrument is the outermost middleware on every route: it assigns the
// request ID, installs the trace into the context, echoes X-Request-ID,
// captures status/bytes, records the per-route latency histogram, flattens
// the span timeline into the bounded trace ring, and emits one structured
// access-log line.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt := &reqTrace{
			seq:   s.reqSeq.Add(1),
			id:    incomingRequestID(r),
			route: route,
			start: time.Now(),
			owner: r.Header.Get("X-Mirage-Owner"),
			hedge: r.Header.Get("X-Mirage-Hedge"),
		}
		w.Header().Set("X-Request-ID", rt.id)
		sw := &statusWriter{ResponseWriter: w}
		s.setInflight(rt, true)
		defer func() {
			s.setInflight(rt, false)
			dur := time.Since(rt.start)
			s.reg.Histogram("server.http.latency_us." + route).Observe(dur.Microseconds())
			s.exportTrace(rt, sw.status(), dur)
			s.logRequest(rt, sw, dur)
		}()
		h(sw, r.WithContext(withTrace(r.Context(), rt)))
	}
}

func (s *Server) setInflight(rt *reqTrace, in bool) {
	s.inflightMu.Lock()
	if in {
		if s.inflight == nil {
			s.inflight = make(map[int64]*reqTrace)
		}
		s.inflight[rt.seq] = rt
	} else {
		delete(s.inflight, rt.seq)
	}
	s.inflightMu.Unlock()
}

// exportTrace flattens a finished request into Chrome trace events on the
// bounded ring: one thread-name metadata event, one enclosing "request"
// span, and one event per recorded step. Timestamps are microseconds since
// server start, so traces from one process line up on a shared timeline.
func (s *Server) exportTrace(rt *reqTrace, status int, dur time.Duration) {
	sink := s.reqSink
	if sink == nil {
		return
	}
	ts := func(at time.Time) int64 { return at.Sub(s.started).Microseconds() }
	tid := int(rt.seq)
	sink.NameThread(tid, fmt.Sprintf("%s %s", rt.id, rt.route))
	rt.mu.Lock()
	args := map[string]any{
		"request_id": rt.id,
		"route":      rt.route,
		"status":     status,
	}
	if rt.cache != "" {
		args["cache"] = rt.cache
	}
	if rt.role != "" {
		args["role"] = rt.role
	}
	if rt.fault != "" {
		args["fault"] = rt.fault
	}
	if rt.peer != "" {
		args["peer"] = rt.peer
	}
	if rt.hedge != "" {
		args["hedge"] = rt.hedge
	}
	spans := append([]span(nil), rt.spans...)
	rt.mu.Unlock()
	sink.Complete("request", "server", ts(rt.start), dur.Microseconds(), tid, args)
	for _, sp := range spans {
		sa := map[string]any{"request_id": rt.id}
		for k, v := range sp.args {
			sa[k] = v
		}
		sink.Complete(sp.name, "server", ts(sp.start), sp.dur.Microseconds(), tid, sa)
	}
}

// logRequest emits the structured access-log line: request ID, route,
// status, cache outcome, queue wait, deadline budget, bytes, and the chaos
// fault kind when one was injected into the serving flight.
func (s *Server) logRequest(rt *reqTrace, sw *statusWriter, dur time.Duration) {
	if s.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("request_id", rt.id),
		slog.String("route", rt.route),
		slog.Int("status", sw.status()),
		slog.Int64("bytes", sw.bytes),
		slog.Int64("dur_us", dur.Microseconds()),
	}
	rt.mu.Lock()
	if rt.key != "" {
		attrs = append(attrs, slog.String("key", rt.key))
	}
	if rt.cache != "" {
		attrs = append(attrs, slog.String("cache", rt.cache))
	}
	if rt.role != "" {
		attrs = append(attrs, slog.String("role", rt.role))
	}
	if rt.leader != "" && rt.leader != rt.id {
		attrs = append(attrs, slog.String("leader", rt.leader))
	}
	if rt.deadline > 0 {
		attrs = append(attrs, slog.Int64("deadline_ms", rt.deadline.Milliseconds()))
	}
	if rt.role == "leader" {
		attrs = append(attrs, slog.Int64("queue_wait_us", rt.queueWait.Microseconds()))
	}
	if rt.fault != "" {
		attrs = append(attrs, slog.String("fault", rt.fault))
	}
	if rt.peer != "" {
		attrs = append(attrs, slog.String("peer", rt.peer))
	}
	if rt.hedge != "" {
		attrs = append(attrs, slog.String("hedge", rt.hedge))
	}
	rt.mu.Unlock()
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}

// handleRequestTrace serves the bounded ring of recent request span
// timelines as a Chrome trace_event JSON array (chrome://tracing, Perfetto).
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reqSink.WriteJSON(w); err != nil {
		s.reg.Counter("server.trace.write_errors").Inc()
		if s.logger != nil {
			s.logger.Error("request trace write failed", "error", err)
		}
	}
}

// buildString summarizes the binary for statusz: module path/version plus
// VCS revision when the build recorded one.
func buildString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	out := bi.Main.Path
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		out += "@" + bi.Main.Version
	}
	rev, modified := "", false
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			rev = st.Value
		case "vcs.modified":
			modified = st.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
		if modified {
			out += " (modified)"
		}
	}
	return out + " " + bi.GoVersion
}

// handleStatusz renders the live serving state: uptime, build info, drain
// state, cache size and hit ratio, and every in-flight request with its
// age, job key, role and the number of requests sharing its flight.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	draining, active := s.draining, s.active
	s.mu.Unlock()

	executed := s.reg.Counter("server.jobs.executed").Value()
	hits := s.reg.Counter("server.singleflight.hits").Value()
	hitRatio := 0.0
	if executed+hits > 0 {
		hitRatio = float64(hits) / float64(executed+hits)
	}

	type row struct {
		seq            int64
		id, route, key string
		role           string
		age            time.Duration
		waiters        int
	}
	s.inflightMu.Lock()
	rows := make([]row, 0, len(s.inflight))
	byKey := make(map[string]int)
	for _, rt := range s.inflight {
		rt.mu.Lock()
		rows = append(rows, row{
			seq: rt.seq, id: rt.id, route: rt.route, key: rt.key,
			role: rt.role, age: now.Sub(rt.start),
		})
		if rt.key != "" {
			byKey[rt.key]++
		}
		rt.mu.Unlock()
	}
	s.inflightMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "miraged statusz\n\n")
	fmt.Fprintf(w, "uptime:            %s\n", now.Sub(s.started).Round(time.Millisecond))
	fmt.Fprintf(w, "build:             %s\n", s.build)
	fmt.Fprintf(w, "draining:          %v\n", draining)
	fmt.Fprintf(w, "active_requests:   %d\n", active)
	fmt.Fprintf(w, "cache_entries:     %d\n", s.cache.Len())
	fmt.Fprintf(w, "cache_bytes:       %d\n", s.cache.Bytes())
	fmt.Fprintf(w, "jobs_executed:     %d\n", executed)
	fmt.Fprintf(w, "singleflight_hits: %d\n", hits)
	fmt.Fprintf(w, "cache_hit_ratio:   %.3f\n", hitRatio)
	if st := s.cfg.Store; st != nil {
		stats := st.Stats()
		fmt.Fprintf(w, "store_entries:     %d\n", st.Len())
		fmt.Fprintf(w, "store_log_bytes:   %d\n", st.LogBytes())
		fmt.Fprintf(w, "store_live_bytes:  %d\n", st.LiveBytes())
		fmt.Fprintf(w, "store_hits:        %d\n", stats.Hits)
		fmt.Fprintf(w, "store_puts:        %d\n", stats.Puts)
		fmt.Fprintf(w, "store_recovered:   %d\n", stats.Recovered)
	}
	fmt.Fprintf(w, "\nin-flight requests (%d):\n", len(rows))
	for _, rw := range rows {
		role := rw.role
		if role == "" {
			role = "-"
		}
		key := rw.key
		if key == "" {
			key = "-"
		}
		// A request counts itself, so "waiters" here is sharers-1.
		waiters := 0
		if rw.key != "" {
			waiters = byKey[rw.key] - 1
		}
		fmt.Fprintf(w, "  #%d id=%s route=%s age=%s role=%s waiters=%d key=%s\n",
			rw.seq, rw.id, rw.route, rw.age.Round(time.Millisecond), role, waiters, key)
	}
}
