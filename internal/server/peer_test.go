// Tests for the fleet-facing surface of the server: the exported canonical
// key helpers (must match what the handlers actually cache under), the
// /internal/peer/cache endpoint, and the PeerFetch hook consulted when a
// request arrives with an X-Mirage-Owner routing hint.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// TestCanonicalRunKeyMatchesHandler pins the exported key derivation to the
// key the /v1/run handler embeds in its response: if they ever drift, the
// coordinator's shard routing and cache peering silently stop lining up with
// what workers cache.
func TestCanonicalRunKeyMatchesHandler(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			return fakeMixResult(cfg), nil
		}}
	})
	body := `{"mix": ["hmmer", "mcf"], "topology": "traditional", "num_ooo": 2, "seed": "fleet"}`
	rec := postJSON(t, srv, "/v1/run", body)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var req RunRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	key, err := CanonicalRunKey(&req)
	if err != nil {
		t.Fatal(err)
	}
	if key != resp.Key {
		t.Fatalf("CanonicalRunKey = %q, handler cached under %q", key, resp.Key)
	}
	// Invalid requests surface the same client-shaped validation error the
	// handler would return.
	if _, err := CanonicalRunKey(&RunRequest{}); err == nil {
		t.Fatal("empty mix: want validation error")
	}
	if _, err := CanonicalRunKey(&RunRequest{Mix: []string{"no-such-bench"}}); err == nil {
		t.Fatal("unknown benchmark: want validation error")
	}
}

// TestCanonicalSweepAndFigureKeys pins the sweep/figure helpers to the
// internal derivations the handlers use.
func TestCanonicalSweepAndFigureKeys(t *testing.T) {
	srv := newTestServer(t, nil)
	scales := map[string]experiments.Scale{"quick": experiments.QuickScale, "tiny": tinyScale}

	j, sc, aerr := srv.validateSweep(&SweepRequest{Scale: "tiny"})
	if aerr != nil {
		t.Fatal(aerr)
	}
	got, err := CanonicalSweepKey(&SweepRequest{Scale: "tiny"}, scales)
	if err != nil {
		t.Fatal(err)
	}
	if got != j.key {
		t.Fatalf("CanonicalSweepKey = %q, handler uses %q", got, j.key)
	}
	if _, err := CanonicalSweepKey(&SweepRequest{Scale: "bogus"}, scales); err == nil {
		t.Fatal("unknown scale: want error")
	}
	if _, err := CanonicalSweepKey(&SweepRequest{TimeoutMS: -1}, scales); err == nil {
		t.Fatal("negative timeout: want error")
	}

	exp, ok := experiments.ByName("figure-7")
	if !ok {
		t.Fatal("figure-7 not registered")
	}
	want := figureKey(exp.Slug, sc)
	got, err = CanonicalFigureKey("figure-7", "tiny", scales)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CanonicalFigureKey = %q, handler uses %q", got, want)
	}
	if _, err := CanonicalFigureKey("no-such-figure", "tiny", scales); err == nil {
		t.Fatal("unknown figure: want error")
	}

	// nil scales means the default registry New installs.
	defKey, err := CanonicalSweepKey(&SweepRequest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(defKey, "scale=quick") {
		t.Fatalf("default scale key = %q, want quick", defKey)
	}
}

// TestPeerCacheEndpoint: the peering endpoint serves settled response bytes
// verbatim from memory, 404s keys it never computed, and never triggers a
// simulation of its own.
func TestPeerCacheEndpoint(t *testing.T) {
	var runs atomic.Int64
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			runs.Add(1)
			return fakeMixResult(cfg), nil
		}}
	})
	rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "peered"}`)
	if rec.Code != 200 {
		t.Fatalf("seed run: status %d", rec.Code)
	}
	want := rec.Body.Bytes()
	key, err := CanonicalRunKey(&RunRequest{Mix: []string{"hmmer"}, Seed: "peered"})
	if err != nil {
		t.Fatal(err)
	}

	peek := get(t, srv, "/internal/peer/cache?key="+url.QueryEscape(key))
	if peek.Code != 200 {
		t.Fatalf("peer cache hit: status %d: %s", peek.Code, peek.Body.Bytes())
	}
	if !strings.EqualFold(peek.Header().Get("X-Cache"), "memory") {
		t.Fatalf("X-Cache = %q, want memory", peek.Header().Get("X-Cache"))
	}
	if string(peek.Body.Bytes()) != string(want) {
		t.Fatalf("peer bytes differ from the original response:\n%s\nvs\n%s", peek.Body.Bytes(), want)
	}

	miss := get(t, srv, "/internal/peer/cache?key="+url.QueryEscape("run|no-such-key"))
	if miss.Code != http.StatusNotFound {
		t.Fatalf("peer cache miss: status %d, want 404", miss.Code)
	}
	if bad := get(t, srv, "/internal/peer/cache"); bad.Code != http.StatusBadRequest {
		t.Fatalf("missing key: status %d, want 400", bad.Code)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("peer endpoint triggered %d simulations, want the original 1", got)
	}
}

// TestPeerCacheAuth: with PeerAuth configured, the peering endpoint serves
// only requests carrying the shared secret — cached result bytes must not
// be readable (or key-probe-able) by arbitrary clients that reach the
// worker's listener.
func TestPeerCacheAuth(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			return fakeMixResult(cfg), nil
		}}
		c.PeerAuth = "fleet-secret"
	})
	rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "authed"}`)
	if rec.Code != 200 {
		t.Fatalf("seed run: status %d", rec.Code)
	}
	key, err := CanonicalRunKey(&RunRequest{Mix: []string{"hmmer"}, Seed: "authed"})
	if err != nil {
		t.Fatal(err)
	}
	path := "/internal/peer/cache?key=" + url.QueryEscape(key)

	peek := func(secret string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		if secret != "" {
			req.Header.Set(PeerAuthHeader, secret)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	if got := peek("").Code; got != http.StatusForbidden {
		t.Fatalf("no secret: status %d, want 403", got)
	}
	if got := peek("wrong").Code; got != http.StatusForbidden {
		t.Fatalf("wrong secret: status %d, want 403", got)
	}
	if got := srv.reg.Counter("server.peer.denied").Value(); got != 2 {
		t.Fatalf("server.peer.denied = %d, want 2", got)
	}
	if rec := peek("fleet-secret"); rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("right secret: status %d body %q, want the cached bytes", rec.Code, rec.Body.Bytes())
	}
}

// TestPeerFetchConsulted: a request carrying an X-Mirage-Owner hint asks the
// configured PeerFetch before simulating; a peer hit serves (and caches) the
// peer's bytes with zero backend work, a peer miss falls through to a normal
// simulation, and requests without the hint never consult the peer.
func TestPeerFetchConsulted(t *testing.T) {
	peerBody := []byte(`{"peer": "bytes"}` + "\n")
	var runs, fetches atomic.Int64
	var hit atomic.Bool
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			runs.Add(1)
			return fakeMixResult(cfg), nil
		}}
		c.PeerFetch = func(ctx context.Context, owner, key string) ([]byte, bool) {
			fetches.Add(1)
			if owner != "http://owner:8080" {
				t.Errorf("PeerFetch owner = %q", owner)
			}
			if !strings.HasPrefix(key, "run|") {
				t.Errorf("PeerFetch key = %q", key)
			}
			if hit.Load() {
				return append([]byte(nil), peerBody...), true
			}
			return nil, false
		}
	})
	withOwner := func(seed string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/run",
			strings.NewReader(fmt.Sprintf(`{"mix": ["hmmer"], "seed": %q}`, seed)))
		req.Header.Set("X-Mirage-Owner", "http://owner:8080")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	// Peer miss: falls through to the local simulation.
	if rec := withOwner("miss-path"); rec.Code != 200 {
		t.Fatalf("peer-miss run: status %d", rec.Code)
	}
	if runs.Load() != 1 || fetches.Load() != 1 {
		t.Fatalf("peer miss: runs=%d fetches=%d, want 1/1", runs.Load(), fetches.Load())
	}

	// Peer hit: the owner's bytes come back verbatim, no local simulation.
	hit.Store(true)
	rec := withOwner("hit-path")
	if rec.Code != 200 {
		t.Fatalf("peer-hit run: status %d", rec.Code)
	}
	if rec.Body.String() != string(peerBody) {
		t.Fatalf("peer-hit body = %s, want the peer's bytes", rec.Body.Bytes())
	}
	if runs.Load() != 1 {
		t.Fatalf("peer hit still simulated locally (runs=%d)", runs.Load())
	}
	if got := srv.reg.Counter("server.peer.hits").Value(); got != 1 {
		t.Fatalf("server.peer.hits = %d, want 1", got)
	}

	// The peer-fetched bytes were cached: a repeat without the hint is a
	// local cache hit and consults nobody.
	before := fetches.Load()
	rec = postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "hit-path"}`)
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q, want 200/hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if rec.Body.String() != string(peerBody) {
		t.Fatalf("repeat served %s, want cached peer bytes", rec.Body.Bytes())
	}
	if fetches.Load() != before {
		t.Fatal("cache hit consulted the peer again")
	}

	// No owner hint: the peer is never consulted even with PeerFetch set.
	before = fetches.Load()
	if rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "local-only"}`); rec.Code != 200 {
		t.Fatalf("local run: status %d", rec.Code)
	}
	if fetches.Load() != before {
		t.Fatal("request without X-Mirage-Owner consulted the peer")
	}
}
