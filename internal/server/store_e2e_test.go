// The warm-start e2e: responses persisted by one server process are served
// byte-identically by the next process from disk, without touching the
// backend. This is the acceptance test for the persistent result store
// (DESIGN.md §13).

package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"log/slog"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/store"
)

// countingBackend is a fake backend that counts how many calls reached the
// simulation layer, so the restart test can prove a disk hit ran nothing.
type countingBackend struct {
	runs    atomic.Int64
	reports atomic.Int64
}

func (b *countingBackend) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	b.runs.Add(1)
	return fakeMixResult(cfg), nil
}

func (b *countingBackend) Reports(ctx context.Context, sc experiments.Scale, ids []string) ([]*experiments.Report, error) {
	b.reports.Add(1)
	out := make([]*experiments.Report, len(ids))
	for i, id := range ids {
		out[i] = &experiments.Report{ID: id, Notes: "counted " + id}
	}
	return out, nil
}

// openStore opens the result store in dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// waitForPuts blocks until the store has absorbed at least n writes.
// Write-through happens on the flight goroutine after the response is
// already on the wire, so the client seeing a 200 does not mean the bytes
// hit the log yet.
func waitForPuts(t *testing.T, st *store.Store, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st.Stats().Puts >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("store absorbed %d puts, want >= %d", st.Stats().Puts, n)
}

// TestRestartServedFromDisk is the warm-start acceptance flow: sweep on a
// store-backed server, tear the server down, build a fresh server over a
// fresh store on the same directory, and require the second fetch to be a
// byte-identical disk hit that never reaches the backend — with the access
// log attributing it as cache=disk.
func TestRestartServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	const body = `{"scale":"tiny"}`

	// First process: cold miss computes, repeat is a memory hit.
	var buf1 syncBuffer
	be1 := &countingBackend{}
	st1 := openStore(t, dir)
	srv1 := newTestServer(t, func(cfg *Config) {
		cfg.Backend = be1
		cfg.Store = st1
		cfg.Logger = slog.New(slog.NewJSONHandler(&buf1, nil))
	})

	rec := postWithID(t, srv1, "/v1/sweep", body, "warm-cold")
	if rec.Code != http.StatusOK {
		t.Fatalf("cold sweep status = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("cold sweep X-Cache = %q, want miss", got)
	}
	want := rec.Body.Bytes()

	rec = postWithID(t, srv1, "/v1/sweep", body, "warm-memhit")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat = %d / X-Cache %q, want 200/hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if got := be1.reports.Load(); got != 1 {
		t.Fatalf("backend ran %d times in process one, want 1", got)
	}

	// The write-through is asynchronous; wait for it before "crashing".
	waitForPuts(t, st1, 1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process: same directory, fresh everything. The backend must
	// never run — a disk hit serves the persisted bytes.
	var buf2 syncBuffer
	be2 := &countingBackend{}
	st2 := openStore(t, dir)
	defer st2.Close()
	srv2 := newTestServer(t, func(cfg *Config) {
		cfg.Backend = be2
		cfg.Store = st2
		cfg.Logger = slog.New(slog.NewJSONHandler(&buf2, nil))
	})

	const diskID = "warm-disk"
	rec = postWithID(t, srv2, "/v1/sweep", body, diskID)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-restart sweep status = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "disk" {
		t.Fatalf("post-restart X-Cache = %q, want disk", got)
	}
	if rec.Body.String() != string(want) {
		t.Fatalf("disk hit is not byte-identical:\n got: %s\nwant: %s", rec.Body, want)
	}
	if got := be2.reports.Load(); got != 0 {
		t.Fatalf("backend ran %d times after restart, want 0 (disk hit)", got)
	}

	// The access log attributes the disk hit.
	line := requestLine(t, &buf2, diskID)
	if line["cache"] != "disk" {
		t.Errorf("access log cache = %v, want disk", line["cache"])
	}
	if _, hasRole := line["role"]; hasRole {
		t.Errorf("disk hit logged a flight role: %v", line)
	}

	// The disk hit seeded the in-memory tier: the next fetch is a plain
	// hit that consults neither disk nor backend.
	hitsBefore := srv2.Telemetry().Reg().Counter("server.store.hits").Value()
	rec = postWithID(t, srv2, "/v1/sweep", body, "warm-memhit-2")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("warmed repeat = %d / X-Cache %q, want 200/hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if got := srv2.Telemetry().Reg().Counter("server.store.hits").Value(); got != hitsBefore {
		t.Errorf("memory hit consulted the store (hits %d -> %d)", hitsBefore, got)
	}
	if got := srv2.Telemetry().Reg().Counter("server.store.served").Value(); got != 1 {
		t.Errorf("server.store.served = %d, want 1", got)
	}
}

// TestRestartRunEndpointServedFromDisk covers the /v1/run path: run job
// keys round-trip through the store the same way sweeps do.
func TestRestartRunEndpointServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	const body = `{"mix": ["hmmer", "bzip2"], "seed": "warm-run"}`

	be1 := &countingBackend{}
	st1 := openStore(t, dir)
	srv1 := newTestServer(t, func(cfg *Config) {
		cfg.Backend = be1
		cfg.Store = st1
	})
	rec := postJSON(t, srv1, "/v1/run", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold run status = %d: %s", rec.Code, rec.Body)
	}
	want := rec.Body.String()
	waitForPuts(t, st1, 1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	be2 := &countingBackend{}
	st2 := openStore(t, dir)
	defer st2.Close()
	srv2 := newTestServer(t, func(cfg *Config) {
		cfg.Backend = be2
		cfg.Store = st2
	})
	rec = postJSON(t, srv2, "/v1/run", body)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "disk" {
		t.Fatalf("post-restart run = %d / X-Cache %q, want 200/disk", rec.Code, rec.Header().Get("X-Cache"))
	}
	if rec.Body.String() != want {
		t.Fatalf("run disk hit not byte-identical:\n got: %s\nwant: %s", rec.Body, want)
	}
	if got := be2.runs.Load(); got != 0 {
		t.Fatalf("backend ran %d times after restart, want 0", got)
	}
}
