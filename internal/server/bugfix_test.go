// Regression tests for the serving-layer bugfixes that rode along with the
// fleet PR: the bounded flight-record map, healthz drain status, flight-
// error-first status attribution in finish, and the stable "apps" shape.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// TestFlightsMapBounded drives >10k one-off job keys through the full
// handler stack and asserts the per-key flight-record map — which shadows
// the response cache for log attribution — stays bounded instead of
// leaking one record per distinct key ever served (the zipfian-tail growth
// PR 7 bounded the cache against).
func TestFlightsMapBounded(t *testing.T) {
	const bound = 256
	srv := newTestServer(t, func(c *Config) {
		c.CacheMaxEntries = bound
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			return fakeMixResult(cfg), nil
		}}
	})
	const keys = 10_050
	for i := 0; i < keys; i++ {
		body := fmt.Sprintf(`{"mix": ["hmmer"], "seed": "oneoff-%d"}`, i)
		if rec := postJSON(t, srv, "/v1/run", body); rec.Code != 200 {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.Bytes())
		}
	}
	if got := srv.flightsLen(); got > bound {
		t.Fatalf("flights map holds %d records after %d one-off keys, want <= %d", got, keys, bound)
	}
	if got := srv.cache.Len(); got > bound {
		t.Fatalf("response cache holds %d entries, want <= %d", got, bound)
	}
	// Recency works: a repeat of the hottest (latest) key still attributes
	// its leader through the surviving record.
	body := fmt.Sprintf(`{"mix": ["hmmer"], "seed": "oneoff-%d"}`, keys-1)
	if rec := postJSON(t, srv, "/v1/run", body); rec.Code != 200 {
		t.Fatalf("repeat of hot key: %d", rec.Code)
	}
}

// TestFinishAttributesFlightErrorFirst is the race-shaped 504 regression:
// a flight that settled with a real simulation error in the same instant
// the request deadline expired must be reported as a 500 naming that
// error — ctx.Err() being DeadlineExceeded by the time finish looks must
// not win the attribution.
func TestFinishAttributesFlightErrorFirst(t *testing.T) {
	srv := newTestServer(t, nil)
	expiredCtx := func() context.Context {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		t.Cleanup(cancel)
		<-ctx.Done() // the deadline has observably fired, as in the race
		return ctx
	}
	canceledCtx := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	simErr := errors.New("disk on fire")
	cases := []struct {
		name     string
		ctx      context.Context
		err      error
		wantCode int
		wantSub  string
	}{
		// The race itself: real flight error + expired deadline → 500.
		{"real error under expired deadline", expiredCtx(), simErr, 500, "disk on fire"},
		// Real flight error + disconnected client → still the flight error.
		{"real error under canceled ctx", canceledCtx(), simErr, 500, "disk on fire"},
		// The flight error wraps the deadline → 504, as before.
		{"deadline error", expiredCtx(), context.DeadlineExceeded, 504, "deadline exceeded"},
		{"joined deadline error", expiredCtx(),
			errors.Join(context.DeadlineExceeded, &runner.Canceled{Completed: 2, Total: 5, Cause: context.Canceled}),
			504, "deadline exceeded"},
		// A cancellation-shaped flight error under an expired deadline is
		// the deadline's doing: fall back to ctx and report 504.
		{"canceled flight under expired deadline", expiredCtx(),
			&runner.Canceled{Completed: 1, Total: 3, Cause: context.Canceled}, 504, "deadline exceeded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			srv.finish(rec, tc.ctx, nil, runner.OutcomeLeader, tc.err)
			if rec.Code != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantCode, rec.Body.Bytes())
			}
			if !strings.Contains(rec.Body.String(), tc.wantSub) {
				t.Fatalf("body %q does not mention %q", rec.Body.String(), tc.wantSub)
			}
		})
	}
	// Client-gone stays a 499 with no body.
	rec := httptest.NewRecorder()
	srv.finish(rec, canceledCtx(), nil, runner.OutcomeLeader, context.Canceled)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("client-gone status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

// TestRunResponseAppsNeverNull pins the response shape: "apps" is a JSON
// array even when the result carries no per-app rows, never null.
func TestRunResponseAppsNeverNull(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			res := fakeMixResult(cfg)
			res.Cluster.Apps = nil // empty mix result
			return res, nil
		}}
	})
	rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"]}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp struct {
		Apps json.RawMessage `json:"apps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(resp.Apps))
	if got != "[]" {
		t.Fatalf(`"apps" encodes as %s, want []`, got)
	}
	if strings.Contains(rec.Body.String(), `"apps": null`) {
		t.Fatalf("response flipped apps to null:\n%s", rec.Body.Bytes())
	}
}

// TestHealthzDrainingStatusCode: see TestGracefulShutdown for the e2e; this
// pins the exact code + body contract the fleet prober keys off.
func TestHealthzDrainingStatusCode(t *testing.T) {
	srv := newTestServer(t, nil)
	if rec := get(t, srv, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy healthz status %d", rec.Code)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, "/v1/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", rec.Code)
	}
	var h struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("draining healthz body no longer JSON: %v: %s", err, rec.Body.Bytes())
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining healthz body = %+v", h)
	}
}
