package server

// FuzzServerDecodeRequest throws arbitrary bytes at the decode/validate
// path of both POST endpoints: whatever the body, the server must never
// panic and never blame itself (5xx). Malformed JSON specifically must be
// rejected with a 4xx. The backend is a fast fake, so any input that does
// validate exercises the full handler (cache, admission, encoding) too.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func FuzzServerDecodeRequest(f *testing.F) {
	f.Add("/v1/run", `{"mix": ["hmmer"]}`)
	f.Add("/v1/run", `{"mix": [`)
	f.Add("/v1/run", `{"mix": ["hmmer"], "topology": "traditional", "num_ooo": 2, "seed": "s"}`)
	f.Add("/v1/run", `{"mix": ["hmmer"]} trailing`)
	f.Add("/v1/run", `null`)
	f.Add("/v1/run", `{"mix": ["hmmer"], "timeout_ms": -5}`)
	f.Add("/v1/sweep", `{"scale": "tiny"}`)
	f.Add("/v1/sweep", "{\"scale\": \"\u0000\"}")
	f.Add("/v1/sweep", `[1,2,3]`)

	srv := newFuzzServer()
	f.Fuzz(func(t *testing.T, path, body string) {
		if path != "/v1/run" && path != "/v1/sweep" {
			path = "/v1/run"
		}
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("%s %q -> %d (server blamed itself):\n%s", path, body, rec.Code, rec.Body.Bytes())
		}
		if !json.Valid([]byte(body)) && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("%s: malformed JSON %q -> %d, want 4xx", path, body, rec.Code)
		}
		if rec.Code >= 400 && !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s %q -> %d with non-JSON error body:\n%s", path, body, rec.Code, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK {
			// Bound cache growth across the fuzz run.
			srv.ResetCache()
		}
	})
}

// newFuzzServer is a server whose backend answers instantly, so fuzz
// throughput measures the decode path rather than simulation time.
func newFuzzServer() *Server {
	return New(Config{
		Scales: map[string]experiments.Scale{
			"quick": experiments.QuickScale,
			"tiny":  tinyScale,
		},
		Backend: fakeBackend{
			run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
				return fakeMixResult(cfg), nil
			},
			reports: func(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
				var out []*experiments.Report
				for _, id := range ids {
					rep := &experiments.Report{ID: id}
					rep.Table.AddRow("fuzz", "fixture")
					out = append(out, rep)
				}
				return out, nil
			},
		},
	})
}
