// Exported canonical job-key derivation. The fleet coordinator
// (internal/fleet) shards requests across workers by the same canonical
// keys the workers themselves cache and persist under, so the key
// derivation — validation, defaults, format strings — is single-sourced
// here and exported read-only. A coordinator that derived keys its own way
// would silently break cache peering the first time the two drifted.

package server

import (
	"fmt"

	"repro/internal/experiments"
)

// DefaultScales returns the scale registry a zero-config Server installs.
// The fleet coordinator uses it to resolve sweep/figure scales exactly as a
// default worker would; mutating the returned map affects only the copy.
func DefaultScales() map[string]experiments.Scale {
	return map[string]experiments.Scale{
		"tiny":  experiments.TinyScale,
		"quick": experiments.QuickScale,
		"full":  experiments.FullScale,
	}
}

// resolveScale is the pure scale lookup behind Server.scale and the
// exported key helpers: apply the default name, reject unknown scales. It
// does NOT stamp server-instance state (parallelism, telemetry) — that
// stays in Server.scale, because neither is part of any job key.
func resolveScale(name string, scales map[string]experiments.Scale) (experiments.Scale, *apiError) {
	if name == "" {
		name = "quick"
	}
	sc, ok := scales[name]
	if !ok {
		return experiments.Scale{}, badRequest("unknown scale %q", name)
	}
	return sc, nil
}

// sweepKey formats the canonical /v1/sweep job key for a resolved scale.
func sweepKey(sc experiments.Scale) string {
	return fmt.Sprintf("sweep|scale=%s|insts=%d|interval=%d|mixes=%d|n=%v",
		sc.Name, sc.TargetInsts, sc.IntervalCycles, sc.MixesPerPoint, sc.NValues)
}

// figureKey formats the canonical /v1/figures/{id} job key for a resolved
// experiment slug and scale.
func figureKey(slug string, sc experiments.Scale) string {
	return fmt.Sprintf("figure|%s|scale=%s|insts=%d|interval=%d|mixes=%d|n=%v",
		slug, sc.Name, sc.TargetInsts, sc.IntervalCycles, sc.MixesPerPoint, sc.NValues)
}

// CanonicalRunKey validates req and returns its canonical job key — the
// exact key a worker serving the request would cache the response under.
// The error, when non-nil, is a client-shaped validation failure; callers
// routing on the key should fall back to deterministic-but-unkeyed routing
// so the worker produces the canonical error body.
func CanonicalRunKey(req *RunRequest) (string, error) {
	key, _, aerr := canonicalRun(req)
	if aerr != nil {
		return "", aerr
	}
	return key, nil
}

// CanonicalSweepKey validates req against scales (nil means
// DefaultScales) and returns its canonical job key.
func CanonicalSweepKey(req *SweepRequest, scales map[string]experiments.Scale) (string, error) {
	if req.TimeoutMS < 0 {
		return "", badRequest("timeout_ms must be >= 0")
	}
	if scales == nil {
		scales = DefaultScales()
	}
	sc, aerr := resolveScale(req.Scale, scales)
	if aerr != nil {
		return "", aerr
	}
	return sweepKey(sc), nil
}

// CanonicalFigureKey validates a figure id and scale name against scales
// (nil means DefaultScales) and returns the canonical job key.
func CanonicalFigureKey(id, scaleName string, scales map[string]experiments.Scale) (string, error) {
	exp, ok := experiments.ByName(id)
	if !ok {
		return "", fmt.Errorf("unknown experiment %q", id)
	}
	if scales == nil {
		scales = DefaultScales()
	}
	sc, aerr := resolveScale(scaleName, scales)
	if aerr != nil {
		return "", aerr
	}
	return figureKey(exp.Slug, sc), nil
}
