// The HTTP server: routing, admission control, singleflight response
// caching, status mapping and graceful shutdown. See DESIGN.md §10.

package server

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// StatusClientClosedRequest is the non-standard status (nginx convention)
// recorded when the client went away before the response was ready. No
// client observes it; it keeps logs and telemetry unambiguous.
const StatusClientClosedRequest = 499

// Admission-control rejections wrap runner.ErrTransient so a rejected
// flight is evicted from the response cache instead of poisoning the key:
// the identical request after the load spike must retry, not replay a 429.
var (
	errSaturated = fmt.Errorf("too many queued jobs: %w", runner.ErrTransient)
	errDraining  = fmt.Errorf("server is draining: %w", runner.ErrTransient)
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Backend runs the simulations; nil selects SimBackend.
	Backend Backend
	// MaxInFlight bounds jobs executing concurrently (default 2). A "job"
	// is a deduplicated unit of simulation work — cache hits and joined
	// flights consume no slot.
	MaxInFlight int
	// MaxQueue bounds jobs waiting for a slot beyond MaxInFlight (default
	// 8); past it requests fail fast with 429.
	MaxQueue int
	// DefaultTimeout applies when a request names none (default 60s);
	// MaxTimeout caps what a request may ask for (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Parallel is the per-simulation worker budget handed to the
	// experiment layer (0 = GOMAXPROCS). Responses are byte-identical at
	// any setting; only latency changes.
	Parallel int
	// Scales are the named experiment scales requests may select; nil
	// installs {"quick", "full"}.
	Scales map[string]experiments.Scale
	// Telemetry instruments the server and every simulation it launches;
	// nil allocates a fresh one. Counters are safe under concurrent
	// requests; /v1/metrics exports them.
	Telemetry *telemetry.Telemetry
	// AbandonGrace is how long a request lingers after its deadline for
	// the flight to surface a partial-result error (default 40ms — the
	// e2e contract returns within 100ms of cancellation).
	AbandonGrace time.Duration
	// Logger receives the structured JSON access log (one line per
	// request) and server-side error events. nil disables logging.
	Logger *slog.Logger
	// TraceEvents bounds the ring buffer of recent request span timelines
	// served at /debug/requests/trace (default 4096; negative disables
	// trace retention entirely).
	TraceEvents int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Store is the optional persistent result store behind the in-memory
	// response cache. When set, response bytes survive restarts: a miss in
	// memory consults the store before admitting a simulation, and every
	// successful flight writes its bytes through. The caller owns the
	// store's lifecycle (Open/Close); nil disables the disk tier.
	Store *store.Store
	// CacheMaxEntries and CacheMaxBytes bound the in-memory response cache
	// (defaults 4096 entries / 256 MiB; negative disables that bound).
	// Without them a long-lived server leaks one encoded response body per
	// distinct job key ever served.
	CacheMaxEntries int
	CacheMaxBytes   int64
	// PeerFetch, when set, lets this worker ask a fleet peer for already-
	// computed response bytes before simulating. It is consulted by the
	// flight leader — after the local memory and disk tiers miss, before
	// admission — only when the request arrived with an X-Mirage-Owner
	// header naming the key's owning worker (the coordinator sets it when
	// hedging or failing over to a non-owner). A (bytes, true) return is
	// cached locally exactly like a computed result; (nil, false) falls
	// through to a normal simulation. Must be safe for concurrent use and
	// respect ctx.
	PeerFetch func(ctx context.Context, owner, key string) ([]byte, bool)
	// PeerAuth, when non-empty, is the fleet's shared peering secret: GET
	// /internal/peer/cache requires the PeerAuthHeader to match it
	// (constant-time) and answers 403 otherwise, so cached and persisted
	// result bytes are not readable — or enumerable — by arbitrary
	// clients that can reach a worker's listener. Every worker in a fleet
	// must share one value (fleet.NewPeerFetch sends it).
	PeerAuth string
}

// PeerAuthHeader carries the shared peering secret (Config.PeerAuth) on
// fleet-internal cache-peering requests.
const PeerAuthHeader = "X-Mirage-Peer-Auth"

// Server is the miraged HTTP API. Create with New; it implements
// http.Handler.
type Server struct {
	cfg     Config
	backend Backend
	tel     *telemetry.Telemetry
	reg     *telemetry.Registry
	mux     *http.ServeMux

	// cache deduplicates work and memoizes encoded response bodies by
	// canonical job key: concurrent identical requests share one flight,
	// later ones are served bytes with zero simulation.
	cache runner.Cache[string, []byte]

	// slots is the admission semaphore (capacity MaxInFlight); queued
	// counts waiters beyond it, bounded by MaxQueue.
	slots  chan struct{}
	queued chan struct{}

	// drainCh is closed exactly once when Shutdown begins, so slot waiters
	// blocked in admit observe the drain without polling the mutex.
	drainCh chan struct{}

	mu       sync.Mutex
	draining bool
	active   int
	idle     chan struct{} // closed when draining and active hits 0

	// Observability state (obs.go): the access logger, request sequence
	// numbers, the bounded ring of recent span timelines, the in-flight
	// request table behind /debug/statusz, and the per-key flight records
	// linking waiters and cache hits back to the leader that computed
	// their bytes.
	logger  *slog.Logger
	started time.Time
	build   string
	reqSeq  atomic.Int64
	reqSink *telemetry.TraceSink

	inflightMu sync.Mutex
	inflight   map[int64]*reqTrace

	flightsMu              sync.Mutex
	flights                map[string]*flightInfo
	flightHead, flightTail *flightInfo // LRU order, most recent first
	maxFlights             int
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		cfg.Backend = SimBackend{}
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.Scales == nil {
		cfg.Scales = DefaultScales()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.AbandonGrace <= 0 {
		cfg.AbandonGrace = 40 * time.Millisecond
	}
	if cfg.TraceEvents == 0 {
		cfg.TraceEvents = 4096
	}
	if cfg.CacheMaxEntries == 0 {
		cfg.CacheMaxEntries = 4096
	}
	if cfg.CacheMaxBytes == 0 {
		cfg.CacheMaxBytes = 256 << 20
	}
	s := &Server{
		cfg:     cfg,
		backend: cfg.Backend,
		tel:     cfg.Telemetry,
		reg:     cfg.Telemetry.Reg(),
		slots:   make(chan struct{}, cfg.MaxInFlight),
		queued:  make(chan struct{}, cfg.MaxQueue),
		drainCh: make(chan struct{}),
		logger:  cfg.Logger,
		started: time.Now(),
		build:   buildString(),
	}
	if cfg.TraceEvents > 0 {
		s.reqSink = telemetry.NewBoundedTraceSink(cfg.TraceEvents)
	}
	s.cache.AbandonGrace = cfg.AbandonGrace
	if cfg.CacheMaxEntries > 0 {
		s.cache.MaxEntries = cfg.CacheMaxEntries
	}
	if cfg.CacheMaxBytes > 0 {
		s.cache.MaxBytes = cfg.CacheMaxBytes
	}
	s.cache.Size = func(b []byte) int64 { return int64(len(b)) }
	// The flight-record map moves in step with the response cache's entry
	// bound; when the cache is explicitly unbounded (negative), the
	// observability shadow map still caps itself — it exists for log
	// attribution, never a reason to hold every key ever served.
	s.maxFlights = cfg.CacheMaxEntries
	if s.maxFlights <= 0 {
		s.maxFlights = 4096
	}
	if cfg.Store != nil {
		s.cache.Backing = &storeAdapter{st: cfg.Store, reg: s.reg, logger: cfg.Logger}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.instrument("run", s.track(s.handleRun)))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.track(s.handleSweep)))
	s.mux.HandleFunc("GET /v1/figures/{id}", s.instrument("figure", s.track(s.handleFigure)))
	s.mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /internal/peer/cache", s.instrument("peercache", s.handlePeerCache))
	s.mux.HandleFunc("GET /debug/statusz", s.instrument("statusz", s.handleStatusz))
	s.mux.HandleFunc("GET /debug/requests/trace", s.instrument("reqtrace", s.handleRequestTrace))
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Telemetry returns the server's telemetry (for embedding callers and
// tests asserting on counters).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// ResetCache drops memoized response bodies and the per-key flight records
// that shadow them (tests and memory bounding).
func (s *Server) ResetCache() {
	s.cache.Reset()
	s.flightsMu.Lock()
	s.flights = nil
	s.flightHead, s.flightTail = nil, nil
	s.flightsMu.Unlock()
}

// ActiveRequests reports requests currently inside simulation handlers.
func (s *Server) ActiveRequests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Shutdown drains the server: new simulation requests are rejected with
// 503, in-flight handlers run to completion, and Shutdown returns once the
// server is idle or ctx ends (returning ctx.Err() with handlers still
// active). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// track wraps a simulation handler with request accounting: the draining
// check, the active-request gauge, and the total-request counter.
func (s *Server) track(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("server.requests").Inc()
		if !s.enter() {
			s.writeError(w, http.StatusServiceUnavailable, "server is draining", nil, 5,
				"server.requests.draining")
			return
		}
		defer s.leave()
		h(w, r)
	}
}

func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	s.reg.Gauge("server.requests.active").Set(float64(s.active))
	return true
}

func (s *Server) leave() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	s.reg.Gauge("server.requests.active").Set(float64(s.active))
	if s.draining && s.active == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// admit acquires an execution slot for a flight leader, or fails fast:
// errDraining when the server is shutting down, errSaturated when both the
// slots and the wait queue are full, ctx.Err() when the flight is
// abandoned while queued. Cache hits never reach admit — only the leader
// of a new flight pays for a slot.
//
// The queued wait selects on drainCh too: checking the draining flag only
// on entry left a TOCTOU hole where a request parked in the queue when
// Shutdown began could still grab a freed slot and start a fresh
// simulation mid-drain.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case <-s.drainCh:
		return nil, errDraining
	default:
	}
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	default:
	}
	select {
	case s.queued <- struct{}{}:
		defer func() { <-s.queued }()
	default:
		return nil, errSaturated
	}
	select {
	case s.slots <- struct{}{}:
		// A drain may have begun while we waited; prefer rejecting over
		// starting new work (the slot goes straight back).
		select {
		case <-s.drainCh:
			<-s.slots
			return nil, errDraining
		default:
		}
		return func() { <-s.slots }, nil
	case <-s.drainCh:
		return nil, errDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// storeAdapter bridges the persistent result store into the cache's
// Backing interface, instrumenting both directions. A failed write-through
// is counted and logged but never surfaces to the request: the response
// was already computed, only its persistence is lost.
type storeAdapter struct {
	st     *store.Store
	reg    *telemetry.Registry
	logger *slog.Logger
}

func (a *storeAdapter) Load(key string) ([]byte, bool) {
	v, ok := a.st.Get(key)
	if ok {
		a.reg.Counter("server.store.hits").Inc()
	} else {
		a.reg.Counter("server.store.misses").Inc()
	}
	return v, ok
}

func (a *storeAdapter) Store(key string, v []byte) {
	if err := a.st.Put(key, v); err != nil {
		a.reg.Counter("server.store.write_errors").Inc()
		if a.logger != nil {
			a.logger.Error("store write failed", "key", key, "error", err)
		}
		return
	}
	a.reg.Counter("server.store.writes").Inc()
}

// requestContext derives the job context: the client's cancellation, the
// effective deadline, and the server's telemetry registry for the runner's
// scheduling counters.
func (s *Server) requestContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := runner.WithTelemetry(r.Context(), s.reg)
	return context.WithTimeout(ctx, timeout)
}

// execute runs one deduplicated job: the first caller per key leads a
// flight (admission slot, then fn), everyone else shares it. The returned
// Outcome is what the access log and singleflight counters are built on;
// execute also records the cache_lookup / singleflight_wait / admission
// spans and links waiters and cache hits back to the leading request via
// the per-key flightInfo.
func (s *Server) execute(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, runner.Outcome, error) {
	rt := traceFrom(ctx)
	rt.setKey(key)
	start := time.Now()
	body, out, err := s.cache.DoContext(ctx, key, func(fctx context.Context) ([]byte, error) {
		// Only the flight leader's fn runs, and fctx kept the leader's
		// context values, so this trace is the leading request's: spans
		// recorded here (admission wait) land on the leader's timeline
		// even though they run on the flight goroutine.
		lrt := traceFrom(fctx)
		fi := s.flightFor(key)
		fi.setLeader(lrt.requestID())
		// Fleet cache peering: when the coordinator routed this request to a
		// non-owner worker (hedge or failover) it names the key's owner in
		// X-Mirage-Owner; ask that owner for the bytes before paying for a
		// slot and a simulation, so each key is computed once fleet-wide.
		// A peer miss (or any fetch failure) falls through to a normal run.
		if owner := lrt.ownerHint(); owner != "" && s.cfg.PeerFetch != nil {
			var b []byte
			var ok bool
			_ = withSpan(fctx, "peer_fetch", func() error {
				b, ok = s.cfg.PeerFetch(fctx, owner, key)
				return nil
			})
			if ok {
				s.reg.Counter("server.peer.hits").Inc()
				lrt.setPeer(owner)
				return b, nil
			}
			s.reg.Counter("server.peer.fetch_misses").Inc()
		}
		s.reg.Histogram("server.admit.queue_depth").Observe(int64(len(s.queued)))
		admitStart := time.Now()
		release, aerr := s.admit(fctx)
		wait := time.Since(admitStart)
		lrt.setQueueWait(wait)
		lrt.addSpan("admission", admitStart, wait, nil)
		s.reg.Histogram("server.admit.queue_wait_us").Observe(wait.Microseconds())
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		s.reg.Counter("server.jobs.executed").Inc()
		b, ferr := fn(fctx)
		// Publish any injected fault before the flight settles (fn return
		// happens-before the waiters' wakeup), so waiters and later cache
		// hits can attribute it in their own log lines.
		fi.setFault(lrt.faultKind())
		return b, ferr
	})
	wait := time.Since(start)
	switch out {
	case runner.OutcomeLeader:
		rt.setOutcome("miss", "leader", rt.requestID())
		rt.addSpan("cache_lookup", start, 0, map[string]any{"outcome": "miss"})
		rt.addSpan("singleflight_wait", start, wait, map[string]any{"role": "leader"})
	case runner.OutcomeWaiter:
		leader, fault := s.flightFor(key).get()
		rt.setOutcome("miss", "waiter", leader)
		if fault != "" {
			rt.setFault(fault)
		}
		rt.addSpan("cache_lookup", start, 0, map[string]any{"outcome": "miss"})
		rt.addSpan("singleflight_wait", start, wait, map[string]any{"role": "waiter", "leader": leader})
	case runner.OutcomeHit:
		leader, fault := s.flightFor(key).get()
		rt.setOutcome("hit", "", leader)
		if fault != "" {
			rt.setFault(fault)
		}
		rt.addSpan("cache_lookup", start, wait, map[string]any{"outcome": "hit"})
	case runner.OutcomeDisk:
		// Served from the persistent store: no leader in this process
		// computed the bytes (they survived a restart).
		rt.setOutcome("disk", "", rt.requestID())
		rt.addSpan("cache_lookup", start, wait, map[string]any{"outcome": "disk"})
	}
	return body, out, err
}

// scale resolves a request's scale name against the registered scales and
// stamps in the server-wide parallelism and telemetry (neither is part of
// any job key: results are bit-identical at any parallelism).
func (s *Server) scale(name string) (experiments.Scale, *apiError) {
	sc, aerr := resolveScale(name, s.cfg.Scales)
	if aerr != nil {
		return experiments.Scale{}, aerr
	}
	sc.Parallel = s.cfg.Parallel
	sc.Telemetry = s.tel
	return sc, nil
}

// --- endpoint handlers ---

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		s.invalid(w, aerr)
		return
	}
	rj, aerr := s.validateRun(&req)
	if aerr != nil {
		s.invalid(w, aerr)
		return
	}
	traceFrom(r.Context()).setDeadline(rj.timeout)
	ctx, cancel := s.requestContext(r, rj.timeout)
	defer cancel()
	body, out, err := s.execute(ctx, rj.key, func(fctx context.Context) ([]byte, error) {
		var mr *core.MixResult
		if err := withSpan(fctx, "simulate", func() (err error) {
			mr, err = s.backend.Run(fctx, rj.cfg)
			return err
		}); err != nil {
			return nil, err
		}
		var body []byte
		err := withSpan(fctx, "encode", func() (err error) {
			body, err = encodeRunResponse(rj, mr)
			return err
		})
		return body, err
	})
	s.finish(w, ctx, body, out, err)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		s.invalid(w, aerr)
		return
	}
	j, sc, aerr := s.validateSweep(&req)
	if aerr != nil {
		s.invalid(w, aerr)
		return
	}
	traceFrom(r.Context()).setDeadline(j.timeout)
	ctx, cancel := s.requestContext(r, j.timeout)
	defer cancel()
	body, out, err := s.execute(ctx, j.key, func(fctx context.Context) ([]byte, error) {
		var reports []*experiments.Report
		if err := withSpan(fctx, "simulate", func() (err error) {
			reports, err = s.backend.Reports(fctx, sc, experiments.SweepIDs)
			return err
		}); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := withSpan(fctx, "encode", func() error {
			return experiments.WriteReportsJSON(&buf, reports)
		}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.finish(w, ctx, body, out, err)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	exp, ok := experiments.ByName(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown experiment %q", r.PathValue("id")), nil, 0,
			"server.requests.invalid")
		return
	}
	q := r.URL.Query()
	var timeoutMS int64
	if v := q.Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.invalid(w, badRequest("invalid timeout_ms %q", v))
			return
		}
		timeoutMS = ms
	}
	sc, aerr := s.scale(q.Get("scale"))
	if aerr != nil {
		s.invalid(w, aerr)
		return
	}
	key := figureKey(exp.Slug, sc)
	timeout := s.timeout(timeoutMS)
	traceFrom(r.Context()).setDeadline(timeout)
	ctx, cancel := s.requestContext(r, timeout)
	defer cancel()
	body, out, err := s.execute(ctx, key, func(fctx context.Context) ([]byte, error) {
		var reports []*experiments.Report
		if err := withSpan(fctx, "simulate", func() (err error) {
			reports, err = s.backend.Reports(fctx, sc, []string{exp.ID})
			return err
		}); err != nil {
			return nil, err
		}
		if len(reports) != 1 {
			return nil, fmt.Errorf("experiment %s yielded %d reports", exp.ID, len(reports))
		}
		var buf bytes.Buffer
		if err := withSpan(fctx, "encode", func() error {
			return reports[0].WriteJSON(&buf)
		}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.finish(w, ctx, body, out, err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	draining, active := s.draining, s.active
	s.mu.Unlock()
	resp := struct {
		Status         string  `json:"status"`
		ActiveRequests int     `json:"active_requests"`
		Draining       bool    `json:"draining"`
		UptimeSeconds  float64 `json:"uptime_seconds"`
	}{status, active, draining, time.Since(s.started).Seconds()}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		// A draining server rejects every job with 503, so health must say
		// so in the status code: load balancers and the fleet prober key on
		// it, and a 200-with-"draining" body kept them routing doomed work
		// here. The JSON body is unchanged for human eyes and old probes.
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(resp)
}

// handlePeerCache is the fleet cache-peering endpoint: a peer worker asks
// whether this worker already holds the response bytes for a canonical job
// key, checking the in-memory cache (settled successes only) and then the
// persistent store. It never simulates, never admits, and never blocks on a
// flight in progress — a peer asking for bytes that are still being
// computed gets a 404 and simulates (or waits) on its own side, which keeps
// the peering path strictly cheap.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	if s.cfg.PeerAuth != "" &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get(PeerAuthHeader)), []byte(s.cfg.PeerAuth)) != 1 {
		s.reg.Counter("server.peer.denied").Inc()
		s.writeError(w, http.StatusForbidden, "peer auth required", nil, 0, "")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		s.invalid(w, badRequest("missing key parameter"))
		return
	}
	body, ok := s.cache.Peek(key)
	src := "memory"
	if !ok && s.cfg.Store != nil {
		body, ok = s.cfg.Store.Get(key)
		src = "disk"
	}
	if !ok {
		s.reg.Counter("server.peer.misses").Inc()
		s.writeError(w, http.StatusNotFound, "key not cached", nil, 0, "")
		return
	}
	s.reg.Counter("server.peer.served").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src)
	_, _ = w.Write(body)
}

// handleMetrics exports the telemetry snapshot: the native JSON dump by
// default, Prometheus text exposition 0.0.4 when the request asks for it
// (`?format=prometheus`, or an Accept header naming text/plain or
// OpenMetrics). The body renders into a buffer first so a render failure
// can still become a clean 500 and the Content-Type commits only once a
// body exists; failures writing to the client are logged and counted, not
// silently dropped.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prom := r.URL.Query().Get("format") == "prometheus"
	if !prom {
		if a := r.Header.Get("Accept"); strings.Contains(a, "text/plain") || strings.Contains(a, "openmetrics") {
			prom = true
		}
	}
	var buf bytes.Buffer
	var err error
	if prom {
		err = s.tel.WritePrometheus(&buf)
	} else {
		err = s.tel.WriteMetrics(&buf)
	}
	if err != nil {
		s.reg.Counter("server.metrics.render_errors").Inc()
		if s.logger != nil {
			s.logger.Error("metrics render failed", "error", err)
		}
		s.writeError(w, http.StatusInternalServerError, "metrics render failed", nil, 0, "")
		return
	}
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.reg.Counter("server.metrics.write_errors").Inc()
		if s.logger != nil {
			s.logger.Error("metrics write failed", "error", err)
		}
	}
}

// --- response writing ---

// errorDetail carries machine-readable failure context; today that is the
// partial-result progress of a cancelled sweep.
type errorDetail struct {
	CompletedJobs int `json:"completed_jobs"`
	TotalJobs     int `json:"total_jobs"`
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error  string       `json:"error"`
	Detail *errorDetail `json:"detail,omitempty"`
}

func (s *Server) invalid(w http.ResponseWriter, aerr *apiError) {
	s.writeError(w, aerr.status, aerr.msg, nil, 0, "server.requests.invalid")
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string, detail *errorDetail, retryAfterSec int, counter string) {
	if counter != "" {
		s.reg.Counter(counter).Inc()
	}
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(errorResponse{Error: msg, Detail: detail})
}

// finish maps an execute result onto the wire. Admission rejections map to
// 429/503 with Retry-After. Cancellation shapes are attributed by the
// flight error FIRST and the request context only as a fallback: a flight
// that settled with a real simulation error in the same instant the
// request deadline expired must surface as a 500 naming that error, not be
// masked into a "deadline exceeded" 504 just because ctx.Err() is already
// non-nil by the time we look. Only when the error itself is (or wraps) a
// context sentinel does ctx decide between deadline (504) and client-gone
// (499).
func (s *Server) finish(w http.ResponseWriter, ctx context.Context, body []byte, out runner.Outcome, err error) {
	if err == nil {
		// OutcomeDisk is Shared() but is a store hit, not a singleflight
		// one: the bytes came off disk, no in-process flight was joined.
		if out == runner.OutcomeDisk {
			s.reg.Counter("server.store.served").Inc()
		} else if out.Shared() {
			s.reg.Counter("server.singleflight.hits").Inc()
		}
		s.reg.Counter("server.requests.ok").Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", cacheLabel(out))
		_ = withSpan(ctx, "write", func() error {
			_, werr := w.Write(body)
			return werr
		})
		return
	}
	switch {
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, errDraining.Error(), nil, 5,
			"server.requests.draining")
	case errors.Is(err, errSaturated):
		s.writeError(w, http.StatusTooManyRequests, errSaturated.Error(), nil, 1,
			"server.requests.saturated")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout,
			"deadline exceeded: "+err.Error(), canceledDetail(err), 0,
			"server.requests.deadline")
	case errors.Is(err, context.Canceled):
		if ctx.Err() == context.DeadlineExceeded {
			// The flight was cancelled on our request's behalf when its
			// deadline fired; report the deadline, not a bare cancellation.
			s.writeError(w, http.StatusGatewayTimeout,
				"deadline exceeded: "+err.Error(), canceledDetail(err), 0,
				"server.requests.deadline")
			return
		}
		// The client is gone; the status is for logs and telemetry only.
		s.reg.Counter("server.requests.cancelled").Inc()
		w.WriteHeader(StatusClientClosedRequest)
	default:
		s.writeError(w, http.StatusInternalServerError,
			"simulation failed: "+err.Error(), canceledDetail(err), 0,
			"server.requests.failed")
	}
}

// cacheLabel maps an execute outcome onto the X-Cache response header that
// clients (mirageload, the restart e2e test) key their hit accounting on.
func cacheLabel(out runner.Outcome) string {
	switch out {
	case runner.OutcomeHit:
		return "hit"
	case runner.OutcomeDisk:
		return "disk"
	}
	return "miss"
}

// canceledDetail extracts partial-result progress when the error carries a
// *runner.Canceled (directly or through JobError/errors.Join wrapping).
func canceledDetail(err error) *errorDetail {
	var ce *runner.Canceled
	if errors.As(err, &ce) {
		return &errorDetail{CompletedJobs: ce.Completed, TotalJobs: ce.Total}
	}
	return nil
}

// encodeRunResponse renders a /v1/run result. Fields derive only from the
// deterministic simulation outcome, so bodies are byte-identical across
// processes and parallelism settings.
func encodeRunResponse(rj *runJob, mr *core.MixResult) ([]byte, error) {
	type runApp struct {
		Name         string  `json:"name"`
		IPC          float64 `json:"ipc"`
		MemoizedFrac float64 `json:"memoized_frac"`
		OoOShare     float64 `json:"ooo_share"`
		Migrations   int64   `json:"migrations"`
	}
	type runResponse struct {
		Key           string   `json:"key"`
		Topology      string   `json:"topology"`
		Policy        string   `json:"policy,omitempty"`
		Mix           []string `json:"mix"`
		STP           float64  `json:"stp"`
		EnergyPJ      float64  `json:"energy_pj"`
		AreaMM2       float64  `json:"area_mm2"`
		OoOActiveFrac float64  `json:"ooo_active_frac"`
		Apps          []runApp `json:"apps"`
	}
	resp := runResponse{
		Key:           rj.key,
		Topology:      mr.Config.Topology.String(),
		Policy:        string(mr.Config.Policy),
		Mix:           rj.cfg.Benchmarks,
		STP:           mr.STP,
		EnergyPJ:      mr.EnergyPJ,
		AreaMM2:       mr.AreaMM2,
		OoOActiveFrac: mr.OoOActiveFrac,
		// Non-nil so an empty mix encodes as "apps": [] — clients parse a
		// JSON array here and a shape flip to null is an API break.
		Apps: []runApp{},
	}
	for _, a := range mr.Cluster.Apps {
		app := runApp{Name: a.Name, IPC: a.IPC, Migrations: int64(a.Migrations)}
		if a.Insts > 0 {
			app.MemoizedFrac = float64(a.MemoizedInsts) / float64(a.Insts)
		}
		if a.Cycles > 0 {
			app.OoOShare = float64(a.OoOCycles) / float64(a.Cycles)
		}
		resp.Apps = append(resp.Apps, app)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
