package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runner"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// tinyScale keeps the sweep endpoints fast enough for -short runs while
// still exercising the full simulation path.
var tinyScale = experiments.Scale{
	Name:              "tiny",
	TargetInsts:       150_000,
	IntervalCycles:    15_000,
	MixesPerPoint:     1,
	NValues:           []int{2},
	TimelineIntervals: 20,
}

// newTestServer builds a Server with test-friendly defaults; mutate cfg via
// opt before construction.
func newTestServer(t *testing.T, opt func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Scales: map[string]experiments.Scale{
			"quick": experiments.QuickScale,
			"tiny":  tinyScale,
		},
		DefaultTimeout: 30 * time.Second,
	}
	if opt != nil {
		opt(&cfg)
	}
	return New(cfg)
}

// fakeBackend substitutes controllable behaviour for the simulation layer.
type fakeBackend struct {
	run     func(ctx context.Context, cfg core.Config) (*core.MixResult, error)
	reports func(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error)
}

func (f fakeBackend) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	return f.run(ctx, cfg)
}

func (f fakeBackend) Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
	return f.reports(ctx, s, ids)
}

// fakeMixResult is a minimal deterministic result for fake backends.
func fakeMixResult(cfg core.Config) *core.MixResult {
	res := &core.MixResult{
		Config:        cfg,
		STP:           0.75,
		EnergyPJ:      1234.5,
		AreaMM2:       6.5,
		OoOActiveFrac: 0.25,
		Cluster:       &cluster.Result{},
	}
	for i, name := range cfg.Benchmarks {
		res.Cluster.Apps = append(res.Cluster.Apps, cluster.AppResult{
			Name:          name,
			Insts:         1000,
			Cycles:        2000,
			IPC:           0.5,
			OoOCycles:     500,
			MemoizedInsts: int64(100 * (i + 1)),
			Migrations:    i,
		})
	}
	return res
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := newTestServer(t, nil)
	rec := get(t, srv, "/v1/healthz")
	if rec.Code != 200 {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var h struct {
		Status string `json:"status"`
		Active int    `json:"active_requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, rec.Body.Bytes())
	}
	if h.Status != "ok" || h.Active != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	rec = get(t, srv, "/v1/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("metrics is not valid JSON:\n%s", rec.Body.Bytes())
	}
}

// TestRunGolden runs a real single-cluster simulation through the API and
// pins the response bytes. A repeat request must be served from the cache
// byte-identically.
func TestRunGolden(t *testing.T) {
	srv := newTestServer(t, nil)
	body := `{"mix": ["hmmer", "mcf"], "target_insts": 150000, "interval_cycles": 15000}`
	rec := postJSON(t, srv, "/v1/run", body)
	if rec.Code != 200 {
		t.Fatalf("run status %d: %s", rec.Code, rec.Body.Bytes())
	}
	checkGolden(t, "run_hmmer_mcf.json", rec.Body.Bytes())

	hits := srv.reg.Counter("server.singleflight.hits").Value()
	rec2 := postJSON(t, srv, "/v1/run", body)
	if rec2.Code != 200 {
		t.Fatalf("repeat status %d", rec2.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("cached response differs from first response")
	}
	if got := srv.reg.Counter("server.singleflight.hits").Value(); got != hits+1 {
		t.Fatalf("singleflight.hits = %d, want %d", got, hits+1)
	}
	if got := srv.reg.Counter("server.jobs.executed").Value(); got != 1 {
		t.Fatalf("jobs.executed = %d, want 1", got)
	}
}

func TestRunValidation(t *testing.T) {
	calls := atomic.Int64{}
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			calls.Add(1)
			return fakeMixResult(cfg), nil
		}}
	})
	cases := []struct {
		name, body, wantSub string
	}{
		{"malformed", `{"mix": [`, "invalid request body"},
		{"unknown field", `{"mix": ["hmmer"], "bogus": 1}`, "bogus"},
		{"trailing data", `{"mix": ["hmmer"]} {"x": 1}`, "trailing data"},
		{"empty mix", `{"mix": []}`, "at least one benchmark"},
		{"unknown benchmark", `{"mix": ["nosuch"]}`, "unknown benchmark"},
		{"bad topology", `{"mix": ["hmmer"], "topology": "hyper"}`, "unknown topology"},
		{"bad policy", `{"mix": ["hmmer"], "policy": "nosuch"}`, "unknown policy"},
		{"policy on homo", `{"mix": ["hmmer"], "topology": "homo-ino", "policy": "SC-MPKI"}`, "does not apply"},
		{"num_ooo on mirage", `{"mix": ["hmmer"], "num_ooo": 2}`, "traditional topology only"},
		{"num_ooo range", `{"mix": ["hmmer"], "topology": "traditional", "num_ooo": 99}`, "out of range"},
		{"insts range", `{"mix": ["hmmer"], "target_insts": 900000000}`, "out of range"},
		{"negative timeout", `{"mix": ["hmmer"], "timeout_ms": -1}`, "timeout_ms"},
		{"bad seed", `{"mix": ["hmmer"], "seed": "a|b"}`, "seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, srv, "/v1/run", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.Bytes())
			}
			var er struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body: %v", err)
			}
			if !strings.Contains(er.Error, tc.wantSub) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.wantSub)
			}
		})
	}
	if rec := postJSON(t, srv, "/v1/sweep", `{"scale": "nosuch"}`); rec.Code != 400 {
		t.Fatalf("unknown scale status %d", rec.Code)
	}
	if rec := get(t, srv, "/v1/run"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status %d, want 405", rec.Code)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("invalid requests reached the backend %d times", n)
	}
	if got := srv.reg.Counter("server.requests.invalid").Value(); got != int64(len(cases)+1) {
		t.Fatalf("requests.invalid = %d, want %d", got, len(cases)+1)
	}
}

func TestFigureEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	// Table 2 is the static hardware-configuration table: real backend, no
	// simulation latency, stable bytes.
	rec := get(t, srv, "/v1/figures/table-2")
	if rec.Code != 200 {
		t.Fatalf("table-2 status %d: %s", rec.Code, rec.Body.Bytes())
	}
	checkGolden(t, "figure_table2.json", rec.Body.Bytes())

	// The canonical ID spelling resolves to the same cached flight.
	rec2 := get(t, srv, "/v1/figures/Table%202")
	if rec2.Code != 200 || !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatalf("ID/slug responses differ (status %d)", rec2.Code)
	}
	if got := srv.reg.Counter("server.jobs.executed").Value(); got != 1 {
		t.Fatalf("jobs.executed = %d, want 1 (slug and ID must share a key)", got)
	}

	if rec := get(t, srv, "/v1/figures/figure-99"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown figure status %d, want 404", rec.Code)
	}
	if rec := get(t, srv, "/v1/figures/table-2?scale=nosuch"); rec.Code != 400 {
		t.Fatalf("unknown scale status %d, want 400", rec.Code)
	}
	if rec := get(t, srv, "/v1/figures/table-2?timeout_ms=abc"); rec.Code != 400 {
		t.Fatalf("bad timeout status %d, want 400", rec.Code)
	}
}

// TestSweepMatchesCLI is the byte-identity contract: /v1/sweep must return
// exactly the bytes cmd/mirageexp -json-out writes for the same scale —
// at any parallelism. The CLI path is reproduced here (registry Reports +
// WriteReportsJSON is precisely what main.go runs) at -parallel 1 and
// -parallel 8, with the experiment caches reset between passes so each
// recomputes from scratch.
func TestSweepMatchesCLI(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.Parallel = 2 })
	rec := postJSON(t, srv, "/v1/sweep", `{"scale": "tiny"}`)
	if rec.Code != 200 {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.Bytes())
	}
	checkGolden(t, "sweep_tiny.json", rec.Body.Bytes())

	for _, par := range []int{1, 8} {
		experiments.ResetCaches()
		sc := tinyScale
		sc.Parallel = par
		reports, err := experiments.Reports(context.Background(), sc, experiments.SweepIDs)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := experiments.WriteReportsJSON(&buf, reports); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Body.Bytes(), buf.Bytes()) {
			t.Errorf("parallel=%d: CLI bytes differ from /v1/sweep response", par)
		}
	}
	experiments.ResetCaches()
}

// TestDeadlinePartialDetail drives a request into its deadline and checks
// the 504 carries the partial-result progress from the runner layer.
func TestDeadlinePartialDetail(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			<-ctx.Done()
			return nil, &runner.Canceled{Completed: 3, Total: 10, Cause: ctx.Err()}
		}}
	})
	start := time.Now()
	rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "timeout_ms": 30}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", rec.Code, rec.Body.Bytes())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("504 took %v", elapsed)
	}
	var er struct {
		Error  string `json:"error"`
		Detail *struct {
			Completed int `json:"completed_jobs"`
			Total     int `json:"total_jobs"`
		} `json:"detail"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("body: %v\n%s", err, rec.Body.Bytes())
	}
	if er.Detail == nil || er.Detail.Completed != 3 || er.Detail.Total != 10 {
		t.Fatalf("detail = %+v, want completed 3 / total 10; error %q", er.Detail, er.Error)
	}
	// The failed flight must not be cached: a healthy backend answer after
	// the deadline means the next identical request succeeds.
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d flights after deadline failure", n)
	}
	if got := srv.reg.Counter("server.requests.deadline").Value(); got != 1 {
		t.Fatalf("requests.deadline = %d", got)
	}
}

// TestClientDisconnectCancelsJob checks the e2e cancellation contract: when
// the client goes away, the in-flight simulation's context is cancelled and
// the handler returns within 100ms.
func TestClientDisconnectCancelsJob(t *testing.T) {
	started := make(chan struct{})
	jobCtxDone := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			close(started)
			<-ctx.Done()
			close(jobCtxDone)
			return nil, &runner.Canceled{Completed: 1, Total: 4, Cause: ctx.Err()}
		}}
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run",
		strings.NewReader(`{"mix": ["hmmer"]}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never started")
	}
	cancelAt := time.Now()
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
	// The simulation context must be cancelled promptly...
	select {
	case <-jobCtxDone:
	case <-time.After(100 * time.Millisecond):
		t.Fatal("job context not cancelled within 100ms of client disconnect")
	}
	// ...and the handler must finish (499 path) within the same bound.
	deadline := time.Now().Add(100 * time.Millisecond)
	for srv.reg.Counter("server.requests.cancelled").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("handler did not record cancellation within 100ms (%.0fms since cancel)",
				time.Since(cancelAt).Seconds()*1000)
		}
		time.Sleep(time.Millisecond)
	}
	for srv.ActiveRequests() != 0 {
		if time.Now().After(deadline.Add(400 * time.Millisecond)) {
			t.Fatal("active requests never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d flights after abandonment", n)
	}
}

// TestSaturation fills the execution slot and the wait queue and checks the
// overflow request fails fast with 429 — and that the rejection is not
// cached once load subsides.
func TestSaturation(t *testing.T) {
	release := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			select {
			case <-release:
				return fakeMixResult(cfg), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}}
	})
	body := func(seed string) string {
		return fmt.Sprintf(`{"mix": ["hmmer"], "seed": %q}`, seed)
	}

	type result struct {
		seed string
		code int
	}
	results := make(chan result, 3)
	do := func(seed string) {
		rec := postJSON(t, srv, "/v1/run", body(seed))
		results <- result{seed, rec.Code}
	}
	// First request occupies the slot.
	go do("s1")
	waitFor(t, "slot occupied", func() bool { return len(srv.slots) == 1 })
	// Second and third fight over the single queue place: exactly one gets
	// it, the other is rejected with 429.
	go do("s2")
	go do("s3")
	first := <-results
	if first.code != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429 (seed %s)", first.code, first.seed)
	}
	if got := srv.reg.Counter("server.requests.saturated").Value(); got != 1 {
		t.Fatalf("requests.saturated = %d", got)
	}
	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != 200 {
			t.Fatalf("request %s got %d after release", r.seed, r.code)
		}
	}
	// The 429'd key must retry cleanly now that capacity is back.
	if rec := postJSON(t, srv, "/v1/run", body(first.seed)); rec.Code != 200 {
		t.Fatalf("retry of saturated key got %d, want 200", rec.Code)
	}
}

// TestGracefulShutdown checks draining: in-flight requests complete, new
// ones are rejected with 503 + Retry-After, and Shutdown returns once idle.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			close(started)
			<-release
			return fakeMixResult(cfg), nil
		}}
	})
	type done struct{ rec *httptest.ResponseRecorder }
	inflight := make(chan done, 1)
	go func() {
		inflight <- done{postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"]}`)}
	}()
	<-started

	shut := make(chan error, 1)
	go func() { shut <- srv.Shutdown(context.Background()) }()
	waitFor(t, "draining", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.draining
	})
	rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "other"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request while draining got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 has no Retry-After header")
	}
	// Health stays reachable while draining and reports it in the status
	// code — a 200 here kept load balancers and the fleet prober routing
	// jobs to a worker that 503s every one of them.
	if rec := get(t, srv, "/v1/healthz"); rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz while draining: %d %s, want 503 + draining body", rec.Code, rec.Body.Bytes())
	}
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned %v with a request in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	d := <-inflight
	if d.rec.Code != 200 {
		t.Fatalf("in-flight request got %d during drain, want 200", d.rec.Code)
	}
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Shutdown is idempotent once idle.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// A bounded Shutdown that cannot drain reports the context error.
	srv2 := newTestServer(t, nil)
	srv2.mu.Lock()
	srv2.active = 1 // simulate a stuck handler
	srv2.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("stuck Shutdown = %v, want DeadlineExceeded", err)
	}
}

// TestShutdownUnderLoadRejectsQueued is the drain-TOCTOU regression: a
// request already parked in the admission queue when Shutdown begins must
// NOT grab the slot freed by the draining leader and start a fresh
// simulation — it gets the same 503 as a request arriving after the drain.
func TestShutdownUnderLoadRejectsQueued(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	srv := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 4
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			runs.Add(1)
			select {
			case <-release:
				return fakeMixResult(cfg), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}}
	})
	results := make(chan *httptest.ResponseRecorder, 2)
	go func() { results <- postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "leader"}`) }()
	waitFor(t, "leader holds the slot", func() bool { return len(srv.slots) == 1 })
	// A second, distinct job parks in the wait queue behind the leader.
	go func() { results <- postJSON(t, srv, "/v1/run", `{"mix": ["hmmer"], "seed": "queued"}`) }()
	waitFor(t, "second request queued", func() bool { return len(srv.queued) == 1 })

	shut := make(chan error, 1)
	go func() { shut <- srv.Shutdown(context.Background()) }()
	waitFor(t, "draining", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.draining
	})
	// The leader finishes and frees its slot mid-drain. The queued waiter
	// must observe the drain instead of claiming the slot.
	close(release)
	sawDraining := false
	for i := 0; i < 2; i++ {
		rec := <-results
		switch rec.Code {
		case 200:
		case http.StatusServiceUnavailable:
			sawDraining = true
			if rec.Header().Get("Retry-After") == "" {
				t.Error("drain 503 has no Retry-After header")
			}
		default:
			t.Fatalf("request got %d, want 200 (leader) or 503 (queued)", rec.Code)
		}
	}
	if !sawDraining {
		t.Fatal("queued request was admitted mid-drain instead of rejected with 503")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("backend ran %d simulations, want 1 — drain admitted a new flight", got)
	}
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestSingleflightConcurrent is the -race regression for the dedup path:
// N identical concurrent requests must run ONE simulation and return
// byte-identical bodies.
func TestSingleflightConcurrent(t *testing.T) {
	const n = 8
	var runs atomic.Int64
	srv := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 4
		c.Backend = fakeBackend{run: func(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
			runs.Add(1)
			time.Sleep(20 * time.Millisecond) // hold the flight open so all callers join it
			return fakeMixResult(cfg), nil
		}}
	})
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(t, srv, "/v1/run", `{"mix": ["hmmer", "mcf"]}`)
			bodies[i] = rec.Body.Bytes()
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d got %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1", got)
	}
	if got := srv.reg.Counter("server.jobs.executed").Value(); got != 1 {
		t.Fatalf("jobs.executed = %d, want 1", got)
	}
	if got := srv.reg.Counter("server.singleflight.hits").Value(); got != n-1 {
		t.Fatalf("singleflight.hits = %d, want %d", got, n-1)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
