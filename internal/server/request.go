// Request decoding, validation and canonicalization. Every request is
// normalized into a canonical job key — defaults applied, mix order
// preserved, timeout excluded — so equivalent requests deduplicate through
// the singleflight cache and byte-identical responses come for free.

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/program"
)

// maxBodyBytes bounds request bodies; hostile payloads past it fail decode
// with a 4xx rather than exhausting memory.
const maxBodyBytes = 1 << 20

// Validation bounds. The simulator is CPU-bound, so the API refuses knob
// values that would turn one request into an unbounded amount of work.
const (
	maxMixSize     = 32
	maxTargetInsts = 200_000_000
	maxInterval    = 50_000_000
	maxNumOoO      = 8
	maxSCCapacity  = 1 << 20
	maxSeedLen     = 128
)

// apiError is a client-visible request failure with an HTTP status.
type apiError struct {
	status int
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// RunRequest is the /v1/run body: one cluster simulation.
type RunRequest struct {
	// Mix names the workload (one benchmark per InO core).
	Mix []string `json:"mix"`
	// Topology is mirage|traditional|homo-ino|homo-ooo (default mirage).
	Topology string `json:"topology,omitempty"`
	// Policy is an arbitration policy name (default SC-MPKI).
	Policy string `json:"policy,omitempty"`
	// NumOoO is the OoO count for traditional topologies (default 1).
	NumOoO int `json:"num_ooo,omitempty"`
	// TargetInsts / IntervalCycles / SCCapacityBytes override the scaled
	// defaults; zero keeps defaults.
	TargetInsts     int64 `json:"target_insts,omitempty"`
	IntervalCycles  int64 `json:"interval_cycles,omitempty"`
	SCCapacityBytes int   `json:"sc_capacity_bytes,omitempty"`
	// Seed names the deterministic random stream (default "miraged").
	Seed string `json:"seed,omitempty"`
	// TimeoutMS bounds this request's wall time; it is NOT part of the job
	// key (two callers with different patience share one simulation).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepRequest is the /v1/sweep body: the Figures 7/8/9b arbitrator sweep.
type SweepRequest struct {
	// Scale names a registered scale ("quick", "full").
	Scale string `json:"scale,omitempty"`
	// TimeoutMS bounds this request's wall time (not part of the job key).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// job is a validated, canonicalized unit of work.
type job struct {
	// key is the canonical dedup key: every normalized field that changes
	// the result, and nothing that doesn't (timeout, parallelism).
	key     string
	timeout time.Duration
}

// runJob is a validated /v1/run request.
type runJob struct {
	job
	cfg core.Config
}

// decodeJSON strictly decodes one JSON object from the request body:
// unknown fields, trailing garbage and oversized bodies are all 400s.
func decodeJSON(r *http.Request, dst any) *apiError {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return badRequest("invalid request body: trailing data after JSON object")
	}
	return nil
}

// parseTopology maps the wire name to a core topology.
func parseTopology(name string) (core.Topology, *apiError) {
	switch name {
	case "", "mirage":
		return core.TopologyMirage, nil
	case "traditional":
		return core.TopologyTraditional, nil
	case "homo-ino":
		return core.TopologyHomoInO, nil
	case "homo-ooo":
		return core.TopologyHomoOoO, nil
	}
	return 0, badRequest("unknown topology %q (want mirage, traditional, homo-ino or homo-ooo)", name)
}

// validSeed constrains seeds to printable ASCII without the key separator,
// keeping canonical keys injective and log lines sane.
func validSeed(s string) bool {
	if len(s) > maxSeedLen {
		return false
	}
	for _, c := range s {
		if c < 0x20 || c > 0x7e || c == '|' {
			return false
		}
	}
	return true
}

// validateRun normalizes a RunRequest into a runJob, stamping in the
// server-wide parallelism and telemetry (neither is part of the key).
func (s *Server) validateRun(req *RunRequest) (*runJob, *apiError) {
	key, cfg, aerr := canonicalRun(req)
	if aerr != nil {
		return nil, aerr
	}
	cfg.Parallel = s.cfg.Parallel
	cfg.Telemetry = s.tel
	return &runJob{
		job: job{key: key, timeout: s.timeout(req.TimeoutMS)},
		cfg: cfg,
	}, nil
}

// canonicalRun is the pure canonicalization behind validateRun: it
// validates req and derives the PR 4 job key plus the simulation config,
// with no server-instance state folded in. The fleet coordinator calls it
// (via CanonicalRunKey) so the exact same bytes-for-bytes key shards work
// across workers.
func canonicalRun(req *RunRequest) (string, core.Config, *apiError) {
	var none core.Config
	if len(req.Mix) == 0 {
		return "", none, badRequest("mix must name at least one benchmark")
	}
	if len(req.Mix) > maxMixSize {
		return "", none, badRequest("mix has %d entries; the limit is %d", len(req.Mix), maxMixSize)
	}
	for _, name := range req.Mix {
		if program.ByName(name) == nil {
			return "", none, badRequest("unknown benchmark %q", name)
		}
	}
	topo, aerr := parseTopology(req.Topology)
	if aerr != nil {
		return "", none, aerr
	}
	policy := core.Policy(req.Policy)
	hasOoO := topo == core.TopologyMirage || topo == core.TopologyTraditional
	if hasOoO {
		if policy == "" {
			policy = core.PolicySCMPKI
		}
		if _, err := core.NewArbiter(policy); err != nil {
			return "", none, badRequest("unknown policy %q", req.Policy)
		}
	} else if policy != "" {
		return "", none, badRequest("policy %q does not apply to topology %q (no arbitrated OoO)", req.Policy, topo)
	}
	switch {
	case req.NumOoO < 0 || req.NumOoO > maxNumOoO:
		return "", none, badRequest("num_ooo %d out of range [0, %d]", req.NumOoO, maxNumOoO)
	case req.NumOoO > 1 && topo != core.TopologyTraditional:
		return "", none, badRequest("num_ooo applies to the traditional topology only")
	case req.TargetInsts < 0 || req.TargetInsts > maxTargetInsts:
		return "", none, badRequest("target_insts %d out of range [0, %d]", req.TargetInsts, maxTargetInsts)
	case req.IntervalCycles < 0 || req.IntervalCycles > maxInterval:
		return "", none, badRequest("interval_cycles %d out of range [0, %d]", req.IntervalCycles, maxInterval)
	case req.SCCapacityBytes < 0 || req.SCCapacityBytes > maxSCCapacity:
		return "", none, badRequest("sc_capacity_bytes %d out of range [0, %d]", req.SCCapacityBytes, maxSCCapacity)
	case req.TimeoutMS < 0:
		return "", none, badRequest("timeout_ms must be >= 0")
	}
	seed := req.Seed
	if seed == "" {
		seed = "miraged"
	}
	if !validSeed(seed) {
		return "", none, badRequest("seed must be at most %d printable ASCII characters without '|'", maxSeedLen)
	}
	numOoO := req.NumOoO
	if topo == core.TopologyTraditional && numOoO == 0 {
		numOoO = 1
	}
	cfg := core.Config{
		Topology:        topo,
		Benchmarks:      append([]string(nil), req.Mix...),
		NumOoO:          numOoO,
		TargetInsts:     req.TargetInsts,
		IntervalCycles:  req.IntervalCycles,
		SCCapacityBytes: req.SCCapacityBytes,
		Seed:            seed,
	}
	if hasOoO {
		cfg.Policy = policy
	}
	key := fmt.Sprintf("run|topo=%s|policy=%s|ooo=%d|insts=%d|interval=%d|sc=%d|seed=%s|mix=%s",
		topo, cfg.Policy, numOoO, req.TargetInsts, req.IntervalCycles, req.SCCapacityBytes,
		seed, strings.Join(req.Mix, ","))
	return key, cfg, nil
}

// validateSweep normalizes a SweepRequest into a job plus its resolved scale.
func (s *Server) validateSweep(req *SweepRequest) (*job, experiments.Scale, *apiError) {
	if req.TimeoutMS < 0 {
		return nil, experiments.Scale{}, badRequest("timeout_ms must be >= 0")
	}
	sc, aerr := s.scale(req.Scale)
	if aerr != nil {
		return nil, experiments.Scale{}, aerr
	}
	return &job{key: sweepKey(sc), timeout: s.timeout(req.TimeoutMS)}, sc, nil
}

// timeout lowers a request's timeout_ms to the effective deadline, applying
// the server default and ceiling.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}
