// Package server is the miraged HTTP/JSON API: simulation-as-a-service over
// the experiment layer. Requests are validated into canonical job keys,
// deduplicated through a singleflight cache, and executed on a bounded
// admission-controlled pool; responses reuse the experiment layer's JSON
// encoders so a report fetched over HTTP is byte-identical to the one
// cmd/mirageexp writes for the same scale and seed (DESIGN.md §10).
package server

import (
	"context"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Backend is the simulation engine behind the API. The production
// implementation (SimBackend) drives internal/core and internal/experiments
// directly; tests substitute controllable fakes to exercise deadline,
// cancellation and saturation behaviour without real simulation latency.
//
// Both methods must honour ctx: once it ends they stop scheduling new
// runner jobs and return, typically with a *runner.Canceled partial-result
// error describing how far they got.
type Backend interface {
	// Run simulates one cluster configuration and returns the result with
	// STP populated against the Homo-OoO reference.
	Run(ctx context.Context, cfg core.Config) (*core.MixResult, error)
	// Reports runs the named registry experiments (IDs or slugs) at the
	// given scale and returns their reports in canonical registry order.
	Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error)
}

// SimBackend is the real Backend: a thin adapter over the core and
// experiments entry points.
type SimBackend struct{}

// Run implements Backend.
func (SimBackend) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	return core.RunMixWithBaseline(ctx, cfg)
}

// Reports implements Backend.
func (SimBackend) Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
	return experiments.Reports(ctx, s, ids)
}
