// TLB model: per-core instruction and data translation lookaside buffers
// (Section 3.1: "Each core has its own L1 Instruction and Data caches, and
// Translation Lookaside Buffers"). Migrating an application leaves the
// destination core's TLBs cold, adding page-walk latency to the warmup
// cost the paper attributes to stateful structures.

package mem

// TLB geometry and costs: a 64-entry fully-associative LRU TLB over 4 KB
// pages, with a fixed-cost hardware page walk on a miss.
const (
	TLBEntries   = 64
	PageBytes    = 4 << 10
	PageWalkCost = 20 // cycles; walks mostly hit the L2
	pageShift    = 12
)

// TLB is a fully-associative, LRU translation buffer.
type TLB struct {
	pages  map[uint64]uint64 // page -> last use tick
	tick   uint64
	hits   uint64
	misses uint64
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{pages: make(map[uint64]uint64, TLBEntries)}
}

// Access translates addr, returning the added latency (0 on a hit, the
// page-walk cost on a miss).
func (t *TLB) Access(addr uint64) int {
	t.tick++
	page := addr >> pageShift
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		t.hits++
		return 0
	}
	t.misses++
	if len(t.pages) >= TLBEntries {
		var victim uint64
		oldest := t.tick + 1
		for p, use := range t.pages {
			if use < oldest {
				oldest = use
				victim = p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
	return PageWalkCost
}

// Flush empties the TLB (core migration).
func (t *TLB) Flush() {
	t.pages = make(map[uint64]uint64, TLBEntries)
}

// Stats returns hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Len returns the number of resident translations.
func (t *TLB) Len() int { return len(t.pages) }
