package mem

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestLoadLatencyLevels(t *testing.T) {
	h := NewHierarchy()
	addr := uint64(0x100000)
	// Cold: misses the DTLB, L1 and L2 -> page walk plus the full path.
	if lat := h.LoadLatency(0, addr); lat != PageWalkCost+L1Latency+L2Latency+MemLatency {
		t.Errorf("cold load latency %d", lat)
	}
	// Now resident in both.
	if lat := h.LoadLatency(0, addr); lat != L1Latency {
		t.Errorf("warm load latency %d", lat)
	}
	// Evict from L1 only (walk 64KB > 32KB L1, < 2MB L2), then the line
	// should hit in L2.
	for a := uint64(0x200000); a < 0x200000+64<<10; a += 64 {
		h.LoadLatency(1, a)
	}
	if lat := h.LoadLatency(0, addr); lat != L1Latency+L2Latency {
		t.Errorf("L2-hit latency %d, want %d", lat, L1Latency+L2Latency)
	}
}

func TestStoreNeverStalls(t *testing.T) {
	h := NewHierarchy()
	if lat := h.StoreAccess(0, 0x5000); lat != 1 {
		t.Errorf("store latency %d, want 1 (store buffer)", lat)
	}
	// The store allocated the line: a following load hits.
	if lat := h.LoadLatency(0, 0x5000); lat != L1Latency {
		t.Errorf("load after store latency %d", lat)
	}
}

func TestFetchLatency(t *testing.T) {
	h := NewHierarchy()
	if lat := h.FetchLatency(0x40); lat <= L1Latency {
		t.Errorf("cold fetch latency %d", lat)
	}
	if lat := h.FetchLatency(0x40); lat != L1Latency {
		t.Errorf("warm fetch latency %d", lat)
	}
}

func TestFlushL1sKeepsL2(t *testing.T) {
	h := NewHierarchy()
	h.LoadLatency(0, 0x9000)
	h.FlushL1s()
	// L1 and TLB cold, but the L2 still holds the line.
	want := PageWalkCost + L1Latency + L2Latency
	if lat := h.LoadLatency(0, 0x9000); lat != want {
		t.Errorf("post-flush latency %d, want walk + L2 hit = %d", lat, want)
	}
}

func TestTrafficCounters(t *testing.T) {
	h := NewHierarchy()
	h.LoadLatency(0, 0xA000) // miss both: 1 L1->L2 line, 1 L2->mem line
	tr := h.Traffic()
	if tr.L1ToL2Lines != 1 || tr.L2ToMemLines != 1 {
		t.Errorf("traffic %+v", tr)
	}
	h.ResetTraffic()
	if h.Traffic() != (Traffic{}) {
		t.Error("traffic not reset")
	}
	h.LoadLatency(0, 0xA000) // L1 hit: no traffic
	if h.Traffic() != (Traffic{}) {
		t.Error("hit generated traffic")
	}
}

func TestStridedWalkerWraps(t *testing.T) {
	w := NewWalker(trace.StreamSpec{Base: 0x1000, Stride: 8, WorkingSet: 32}, xrand.New(1))
	var got []uint64
	for i := 0; i < 6; i++ {
		got = append(got, w.Next())
	}
	want := []uint64{0x1000, 0x1008, 0x1010, 0x1018, 0x1000, 0x1008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walker step %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestRandomWalkerStaysInWorkingSet(t *testing.T) {
	spec := trace.StreamSpec{Kind: trace.StreamRandom, Base: 0x4000, WorkingSet: 4096}
	w := NewWalker(spec, xrand.New(2))
	for i := 0; i < 1000; i++ {
		a := w.Next()
		if a < spec.Base || a >= spec.Base+spec.WorkingSet {
			t.Fatalf("random address %#x outside [%#x, %#x)", a, spec.Base, spec.Base+spec.WorkingSet)
		}
	}
}

func TestRandomWalkerDeterministic(t *testing.T) {
	spec := trace.StreamSpec{Kind: trace.StreamRandom, Base: 0, WorkingSet: 1 << 20}
	a := NewWalker(spec, xrand.New(3))
	b := NewWalker(spec, xrand.New(3))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed walkers diverged")
		}
	}
}

func TestWalkerZeroWorkingSet(t *testing.T) {
	w := NewWalker(trace.StreamSpec{Base: 0x10}, xrand.New(4))
	// Defaulted to a tiny set; must not panic or divide by zero.
	for i := 0; i < 10; i++ {
		w.Next()
	}
	if w.Spec().WorkingSet == 0 {
		t.Error("working set not defaulted")
	}
}

func TestPrefetcherCoversStream(t *testing.T) {
	h := NewHierarchy()
	// Stream through memory-resident data with a constant line stride: the
	// L2 stride prefetcher should turn most L2 misses into hits after lock.
	memMisses := 0
	for i := 0; i < 64; i++ {
		addr := 0x4000000 + uint64(i)*64
		if lat := h.LoadLatency(7, addr); lat > L1Latency+L2Latency {
			memMisses++
		}
	}
	if memMisses > 16 {
		t.Errorf("prefetcher left %d/64 memory misses on a strided stream", memMisses)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB()
	if w := tlb.Access(0x1000); w != PageWalkCost {
		t.Errorf("cold translation walk %d", w)
	}
	if w := tlb.Access(0x1800); w != 0 {
		t.Errorf("same-page translation walked (%d)", w)
	}
	if w := tlb.Access(0x2000); w != PageWalkCost {
		t.Errorf("new page should walk, got %d", w)
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats %d/%d", hits, misses)
	}
}

func TestTLBLRUCapacity(t *testing.T) {
	tlb := NewTLB()
	for p := 0; p < TLBEntries+1; p++ {
		tlb.Access(uint64(p) * PageBytes)
	}
	if tlb.Len() > TLBEntries {
		t.Errorf("TLB holds %d entries", tlb.Len())
	}
	// Page 0 was LRU and must have been evicted; page 1 survives.
	if w := tlb.Access(0); w != PageWalkCost {
		t.Error("LRU page survived eviction")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB()
	tlb.Access(0x4000)
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("flush left translations")
	}
}

func TestFetchStallWarmsUp(t *testing.T) {
	h := NewHierarchy()
	cold := h.FetchStall(0x10000, 256)
	if cold == 0 {
		t.Error("cold code fetch should stall")
	}
	warm := h.FetchStall(0x10000, 256)
	if warm != 0 {
		t.Errorf("warm code fetch stalls %d cycles", warm)
	}
	h.FlushL1s()
	if again := h.FetchStall(0x10000, 256); again == 0 {
		t.Error("post-migration code fetch should stall again")
	}
}
