// Package mem models the memory system of Table 2: per-core 32 KB L1
// instruction and data caches (2-cycle), a 2 MB L2 with a stride prefetcher
// (15-cycle) and main memory (120-cycle), plus the address-stream walkers
// that drive them from trace stream specifications.
package mem

import (
	"repro/internal/cache"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Latencies per Table 2 of the paper.
const (
	L1Latency  = 2
	L2Latency  = 15
	MemLatency = 120
)

// Default cache geometries per Table 2.
var (
	L1IConfig = cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, HitLatency: L1Latency}
	L1DConfig = cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, HitLatency: L1Latency}
	L2Config  = cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 8, HitLatency: L2Latency}
)

// Traffic counts L1<->L2 and L2<->memory line transfers; the cluster's bus
// model and the energy model both consume it.
type Traffic struct {
	L1ToL2Lines  uint64
	L2ToMemLines uint64
}

// Hierarchy is one application's view of the memory system: private L1s and
// a private 2 MB L2 slice ("2 MB per benchmark" per Section 4.2).
type Hierarchy struct {
	L1I  *cache.Cache
	L1D  *cache.Cache
	L2   *cache.Cache
	ITLB *TLB
	DTLB *TLB
	pf   *cache.StridePrefetcher

	traffic Traffic
}

// NewHierarchy builds a hierarchy with the paper's default geometry.
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		L1I:  cache.New(L1IConfig),
		L1D:  cache.New(L1DConfig),
		L2:   cache.New(L2Config),
		ITLB: NewTLB(),
		DTLB: NewTLB(),
	}
	h.pf = cache.NewStridePrefetcher(h.L2, 2)
	return h
}

// Traffic returns accumulated line-transfer counts.
func (h *Hierarchy) Traffic() Traffic { return h.traffic }

// RegisterTelemetry publishes the hierarchy's cache and TLB counters as
// snapshot-time gauges under prefix (e.g. "core0.mem"). A nil registry is a
// no-op.
func (h *Hierarchy) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	h.L1I.RegisterTelemetry(reg, prefix+".l1i")
	h.L1D.RegisterTelemetry(reg, prefix+".l1d")
	h.L2.RegisterTelemetry(reg, prefix+".l2")
	reg.RegisterFunc(prefix+".itlb.misses", func() float64 {
		_, m := h.ITLB.Stats()
		return float64(m)
	})
	reg.RegisterFunc(prefix+".dtlb.misses", func() float64 {
		_, m := h.DTLB.Stats()
		return float64(m)
	})
	reg.RegisterFunc(prefix+".bus.l1_l2_lines", func() float64 { return float64(h.traffic.L1ToL2Lines) })
	reg.RegisterFunc(prefix+".bus.l2_mem_lines", func() float64 { return float64(h.traffic.L2ToMemLines) })
}

// ResetTraffic zeroes transfer counts (per-interval accounting).
func (h *Hierarchy) ResetTraffic() { h.traffic = Traffic{} }

// LoadLatency performs a data load at addr on behalf of streamID and returns
// its total latency in cycles, including any page-walk on a DTLB miss.
func (h *Hierarchy) LoadLatency(streamID uint8, addr uint64) int {
	walk := h.DTLB.Access(addr)
	if h.L1D.Access(addr) {
		return walk + L1Latency
	}
	h.traffic.L1ToL2Lines++
	h.pf.Observe(streamID, addr)
	if h.L2.Access(addr) {
		return walk + L1Latency + L2Latency
	}
	h.traffic.L2ToMemLines++
	return walk + L1Latency + L2Latency + MemLatency
}

// StoreAccess performs a data store. Stores retire through a store buffer,
// so they do not stall the pipeline on a miss; the call maintains cache,
// TLB and traffic state and returns the buffer-visible latency.
func (h *Hierarchy) StoreAccess(streamID uint8, addr uint64) int {
	h.DTLB.Access(addr) // translation happens even though the buffer hides it
	if !h.L1D.Access(addr) {
		h.traffic.L1ToL2Lines++
		h.pf.Observe(streamID, addr)
		if !h.L2.Access(addr) {
			h.traffic.L2ToMemLines++
		}
	}
	return 1
}

// FetchLatency models an instruction fetch of the line containing addr,
// including any page-walk on an ITLB miss.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	walk := h.ITLB.Access(addr)
	if h.L1I.Access(addr) {
		return walk + L1Latency
	}
	h.traffic.L1ToL2Lines++
	if h.L2.Access(addr) {
		return walk + L1Latency + L2Latency
	}
	h.traffic.L2ToMemLines++
	return walk + L1Latency + L2Latency + MemLatency
}

// FetchStall returns the stall cycles one iteration of a trace's code pays
// at the fetch stage: the miss penalties (beyond the pipelined L1I hit) of
// fetching `codeBytes` of instructions starting at pc. Zero in steady state
// — the cost appears after migrations leave the L1I and ITLB cold.
func (h *Hierarchy) FetchStall(pc uint64, codeBytes int) int {
	stall := 0
	line := uint64(h.L1I.LineBytes())
	for off := uint64(0); off < uint64(codeBytes); off += line {
		if lat := h.FetchLatency(pc + off); lat > L1Latency {
			stall += lat - L1Latency
		}
	}
	return stall
}

// FlushL1s empties both L1s, the TLBs and the prefetcher's learned strides;
// the cluster calls it when the application migrates to another core. The
// L2 is shared across the cluster, so it survives migration.
func (h *Hierarchy) FlushL1s() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.ITLB.Flush()
	h.DTLB.Flush()
	h.pf.Reset()
}

// Walker generates the address sequence of one trace memory stream. Each
// application instantiates one walker per (trace, stream) so that iteration
// N+1 continues where iteration N stopped — exactly how a loop walks an
// array or chases pointers.
type Walker struct {
	spec trace.StreamSpec
	pos  uint64
	rng  *xrand.Rand
}

// NewWalker builds a walker for spec with its own deterministic stream.
func NewWalker(spec trace.StreamSpec, rng *xrand.Rand) *Walker {
	if spec.WorkingSet == 0 {
		spec.WorkingSet = 64
	}
	return &Walker{spec: spec, rng: rng}
}

// Next returns the next address in the stream.
func (w *Walker) Next() uint64 {
	switch w.spec.Kind {
	case trace.StreamRandom:
		off := w.rng.Uint64() % w.spec.WorkingSet
		return w.spec.Base + (off &^ 7)
	default: // StreamStrided
		addr := w.spec.Base + w.pos
		w.pos += w.spec.Stride
		if w.pos >= w.spec.WorkingSet {
			w.pos = 0
		}
		return addr
	}
}

// Spec returns the walker's stream specification.
func (w *Walker) Spec() trace.StreamSpec { return w.spec }
