// The Schedule Cache sizing study of Section 4.2: the paper picked 8 KB
// because relative STP plateaus there while energy overheads keep growing —
// "the best performance per mm^2".

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
)

// SCSizes swept by the study, in bytes.
var SCSizes = []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}

// SCSize reproduces the SC sizing study on an 8:1 Mirage cluster: STP and
// OoO utilization versus Schedule Cache capacity.
func SCSize(ctx context.Context, s Scale) (*Report, error) {
	r := &Report{ID: "SC size",
		Notes: "Section 4.2: STP plateaus around 8KB while the SC's area/leakage keep growing; the paper picks 8KB"}
	r.Table.Title = "SC sizing study (8:1, SC-MPKI)"
	r.Table.Headers = []string{"SC capacity", "STP vs Homo-OoO", "OoO active"}

	mixes := core.RandomMixes(core.MixRandom, 8, s.MixesPerPoint, "scsize")
	// Flatten the (capacity, mix) grid into independent baseline runs; the
	// per-capacity averages accumulate over the collated slice in serial
	// order.
	type scJob struct {
		capBytes, mi int
		mix          []string
	}
	var jobs []scJob
	for _, capBytes := range SCSizes {
		for mi, mix := range mixes {
			jobs = append(jobs, scJob{capBytes: capBytes, mi: mi, mix: mix})
		}
	}
	mrs, err := runner.Map(ctx, s.workers(), jobs,
		func(_ int, j scJob) string { return fmt.Sprintf("scsize/%d-%d", j.capBytes, j.mi) },
		func(_ int, j scJob) (*core.MixResult, error) {
			cfg := s.baseConfig(fmt.Sprintf("scsize-%d-%d", j.capBytes, j.mi))
			cfg.Topology = core.TopologyMirage
			cfg.Policy = core.PolicySCMPKI
			cfg.Benchmarks = j.mix
			cfg.SCCapacityBytes = j.capBytes
			return core.RunMixWithBaseline(context.Background(), cfg)
		})
	if err != nil {
		return nil, err
	}
	for ci, capBytes := range SCSizes {
		var stp, util float64
		for mi := range mixes {
			mr := mrs[ci*len(mixes)+mi]
			stp += mr.STP
			util += mr.OoOActiveFrac
		}
		k := float64(len(mixes))
		r.Table.AddRow(fmt.Sprintf("%dKB", capBytes>>10),
			stats.Pct(stp/k), stats.Pct(util/k))
	}
	return r, nil
}

// SCSizeNumbers returns the STP series for tests (indexed like SCSizes).
func SCSizeNumbers(ctx context.Context, s Scale) ([]float64, error) {
	rep, err := SCSize(ctx, s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rep.Table.Rows))
	for i, row := range rep.Table.Rows {
		var v float64
		fmt.Sscanf(row[1], "%f%%", &v)
		out[i] = v / 100
	}
	return out, nil
}
