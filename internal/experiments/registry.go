// The experiment registry: one table naming every figure/table entry point
// with a uniform signature, shared by cmd/mirageexp and the miraged server
// so both render reports through the exact same code path (the byte-identity
// guarantee between `/v1/sweep` and `mirageexp -json-out` rests on it).

package experiments

import "context"

// Experiment is one registered evaluation entry point.
type Experiment struct {
	// ID is the report identifier ("Figure 7", "Table 1", ...), matching
	// Report.ID and mirageexp's -only flag.
	ID string
	// Slug is the URL-safe name the server uses ("figure-7", "table-1").
	Slug string
	// Run produces the report at the given scale. Implementations honour
	// ctx by not scheduling further simulations once it ends.
	Run func(ctx context.Context, s Scale) (*Report, error)
}

// All returns every experiment in the canonical presentation order used by
// cmd/mirageexp (papers order: tables, motivation figures, then Section 5).
// The slice is freshly allocated; callers may filter it in place.
func All() []Experiment {
	return []Experiment{
		{ID: "Table 1", Slug: "table-1", Run: Table1},
		{ID: "Table 2", Slug: "table-2", Run: func(context.Context, Scale) (*Report, error) { return Table2(), nil }},
		{ID: "Figure 1", Slug: "figure-1", Run: Figure1},
		{ID: "Figure 2", Slug: "figure-2", Run: Figure2},
		{ID: "Figure 3b", Slug: "figure-3b", Run: Figure3b},
		{ID: "Figure 5", Slug: "figure-5", Run: Figure5},
		{ID: "Figure 6", Slug: "figure-6", Run: func(_ context.Context, s Scale) (*Report, error) { return Figure6(s), nil }},
		{ID: "Figure 7", Slug: "figure-7", Run: Figure7},
		{ID: "Figure 8", Slug: "figure-8", Run: Figure8},
		{ID: "Figure 9a", Slug: "figure-9a", Run: func(context.Context, Scale) (*Report, error) { return Figure9a() }},
		{ID: "Figure 9b", Slug: "figure-9b", Run: Figure9b},
		{ID: "Figure 10", Slug: "figure-10", Run: Figure10},
		{ID: "Figure 11", Slug: "figure-11", Run: Figure11},
		{ID: "Figure 12", Slug: "figure-12", Run: Figure12},
		{ID: "Figure 13", Slug: "figure-13", Run: Figure13},
		{ID: "Figure 14", Slug: "figure-14", Run: Figure14},
		{ID: "Figure 15", Slug: "figure-15", Run: Figure15},
		{ID: "SC size", Slug: "sc-size", Run: SCSize},
		{ID: "Headline", Slug: "headline", Run: Headline},
	}
}

// SweepIDs are the experiments served by the /v1/sweep endpoint — the three
// reports derived from the single Figures 7/8/9b arbitrator sweep.
var SweepIDs = []string{"Figure 7", "Figure 8", "Figure 9b"}

// ByName looks an experiment up by ID or slug (both are unique).
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == name || e.Slug == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Reports runs the named experiments in registry order (names in ids may be
// IDs or slugs, in any order; duplicates collapse) and returns their reports
// in that canonical order — the same order and encoders mirageexp uses, so
// serialized output is byte-identical between the CLI and the server.
func Reports(ctx context.Context, s Scale, ids []string) ([]*Report, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		e, ok := ByName(id)
		if !ok {
			return nil, &UnknownExperimentError{Name: id}
		}
		want[e.ID] = true
	}
	var reports []*Report
	for _, e := range All() {
		if !want[e.ID] {
			continue
		}
		rep, err := e.Run(ctx, s)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// UnknownExperimentError reports a name that matches no registered
// experiment's ID or slug.
type UnknownExperimentError struct{ Name string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "experiments: unknown experiment " + e.Name
}
