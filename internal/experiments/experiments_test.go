package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyScale keeps shape tests fast; the quick/full scales are exercised by
// the repository's benchmark harness.
var tinyScale = Scale{
	Name:              "tiny",
	TargetInsts:       700_000,
	IntervalCycles:    25_000,
	MixesPerPoint:     1,
	NValues:           []int{4, 8},
	TimelineIntervals: 80,
}

// pct parses a "NN%" cell back into a fraction.
func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v / 100
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Table1(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 26 {
		t.Fatalf("Table 1 has %d rows", len(rep.Table.Rows))
	}
	for _, row := range rep.Table.Rows {
		ratio := pct(t, row[2])
		switch row[1] {
		case "HPD":
			if ratio >= 0.66 {
				t.Errorf("%s: HPD with IPC ratio %v", row[0], ratio)
			}
		case "LPD":
			if ratio < 0.54 {
				t.Errorf("%s: LPD with IPC ratio %v", row[0], ratio)
			}
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Figure1(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Table.Rows
	perfHPD, perfLPD := pct(t, rows[0][2]), pct(t, rows[0][3])
	if perfHPD >= perfLPD {
		t.Errorf("HPD relative perf (%v) must be below LPD (%v)", perfHPD, perfLPD)
	}
	power := pct(t, rows[1][1])
	if power < 0.12 || power > 0.35 {
		t.Errorf("InO power %v of OoO, want ~1/5", power)
	}
	energy := pct(t, rows[2][1])
	if energy >= 0.75 {
		t.Errorf("InO energy %v of OoO, want well below 1", energy)
	}
	area := pct(t, rows[3][1])
	if area >= 0.5 {
		t.Errorf("InO area %v of OoO, want under half", area)
	}
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Figure2(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Table.Rows
	fracHPD, fracLPD := pct(t, rows[0][2]), pct(t, rows[0][3])
	if fracHPD <= fracLPD {
		t.Errorf("HPD memoizable fraction (%v) should exceed LPD (%v)", fracHPD, fracLPD)
	}
	overall := pct(t, rows[0][1])
	if overall < 0.5 || overall > 0.95 {
		t.Errorf("overall memoizable fraction %v, paper ~0.75", overall)
	}
	// Oracle replay performance beats plain InO by a wide margin (Figure 1
	// has HPD at ~0.27 plain).
	perfHPD := pct(t, rows[1][2])
	if perfHPD < 0.45 {
		t.Errorf("oracle HPD performance %v of OoO, want a large boost over plain InO", perfHPD)
	}
}

func TestFigure3bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Figure3b(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Table.Rows
	// Switching overhead shrinks monotonically with interval length...
	first := pct(t, rows[0][1])
	last := pct(t, rows[len(rows)-1][1])
	if first >= last {
		t.Errorf("migration overhead should shrink with interval length: %v .. %v", first, last)
	}
	if first > 0.95 {
		t.Errorf("1K-cycle switching shows no penalty (%v)", first)
	}
	if last < 0.985 {
		t.Errorf("10M-cycle switching still penalized (%v)", last)
	}
	// ...while memoizability decays.
	memoFirst := pct(t, rows[0][2])
	memoLast := pct(t, rows[len(rows)-1][2])
	if memoFirst <= memoLast {
		t.Errorf("memoizability should decay with interval length: %v .. %v", memoFirst, memoLast)
	}
}

func TestFigure5Correlation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	spike, base, err := Figure5Correlation(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("P(migrate | ΔSC-MPKI spike) = %.2f vs base %.2f", spike, base)
	if spike <= base {
		t.Errorf("ΔSC-MPKI spikes should precede migrations: %.2f vs %.2f", spike, base)
	}
}

func TestFigure6Shape(t *testing.T) {
	rep := Figure6(tinyScale)
	for _, row := range rep.Table.Rows {
		inO, mirage, trad := pct(t, row[1]), pct(t, row[2]), pct(t, row[3])
		if !(inO < trad && trad < mirage && mirage < 1) {
			t.Errorf("n=%s: area ordering violated: InO=%v trad=%v mirage=%v", row[0], inO, trad, mirad(mirage))
		}
	}
	// The paper's 4:1 anchors: traditional ~1.55x of Homo-InO, OinO
	// additions ~+23%.
	row4 := rep.Table.Rows[0]
	inO, mirage, trad := pct(t, row4[1]), pct(t, row4[2]), pct(t, row4[3])
	if r := trad / inO; r < 1.4 || r > 1.7 {
		t.Errorf("4:1 traditional / Homo-InO = %.2f, paper ~1.55", r)
	}
	if d := (mirage - trad) / inO; d < 0.1 || d > 0.4 {
		t.Errorf("OinO additions %.2f of baseline, paper ~0.23", d)
	}
}

func mirad(f float64) float64 { return f }

func TestFigure9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Figure9a()
	if err != nil {
		t.Fatal(err)
	}
	find := func(structure string) (o, i, r float64) {
		for _, row := range rep.Table.Rows {
			if row[0] == structure {
				return pct(t, row[1]), pct(t, row[2]), pct(t, row[3])
			}
		}
		t.Fatalf("structure %q missing", structure)
		return
	}
	// The OoO spends a visible share on rename/ROB/scheduler; the others
	// spend none.
	for _, s := range []string{"Rename", "ROB", "Scheduler"} {
		o, i, r := find(s)
		if o <= 0 {
			t.Errorf("OoO %s share %v, want > 0", s, o)
		}
		if i != 0 || r != 0 {
			t.Errorf("%s billed on in-order cores: InO=%v OinO=%v", s, i, r)
		}
	}
	// Only the OinO spends on the Schedule Cache.
	o, i, r := find("Sched$")
	if o != 0 || i != 0 || r <= 0 {
		t.Errorf("Sched$ shares OoO=%v InO=%v OinO=%v", o, i, r)
	}
}

func TestFairnessCap(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	mix := core.RandomMixes(core.MixRandom, 8, 1, "fair-cap")[0]
	byPolicy, err := OoOShares(context.Background(), tinyScale, mix, []struct {
		Policy   core.Policy
		Topology core.Topology
	}{{core.PolicySCMPKIFair, core.TopologyMirage}})
	if err != nil {
		t.Fatal(err)
	}
	shares := byPolicy[core.PolicySCMPKIFair]
	for i, s := range shares {
		// Each app stays near or below its 1/8 share of total time
		// (Section 5.3); allow slack for the staleness escape hatch.
		if s > 0.125+0.06 {
			t.Errorf("app %d (%s) holds %.0f%% of OoO time under SC-MPKI-fair", i, mix[i], s*100)
		}
	}
}

func TestMaxSTPStarves(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	mix := core.RandomMixes(core.MixRandom, 8, 1, "starve")[0]
	byPolicy, err := OoOShares(context.Background(), tinyScale, mix, []struct {
		Policy   core.Policy
		Topology core.Topology
	}{{core.PolicyMaxSTP, core.TopologyTraditional}})
	if err != nil {
		t.Fatal(err)
	}
	shares := byPolicy[core.PolicyMaxSTP]
	max, min := 0.0, 1.0
	for _, s := range shares {
		if s > max {
			max = s
		}
		if s < min {
			min = s
		}
	}
	if max < 3*(min+0.01) {
		t.Errorf("maxSTP shares suspiciously even: max %.2f min %.2f", max, min)
	}
}

func TestHeadlineBands(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep, err := Headline(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Table.Rows
	perf := pct(t, rows[0][1])
	egy := pct(t, rows[1][1])
	area := pct(t, rows[2][1])
	t.Logf("headline: perf=%v energy=%v area=%v (paper: 0.84 / 0.45 / 0.74)", perf, egy, area)
	if perf < 0.7 || perf > 0.97 {
		t.Errorf("8:1 performance %v outside the paper's band (~0.84)", perf)
	}
	if egy < 0.3 || egy > 0.65 {
		t.Errorf("8:1 energy %v outside the paper's band (~0.45)", egy)
	}
	if area < 0.6 || area > 0.8 {
		t.Errorf("8:1 area %v outside the paper's band (~0.74)", area)
	}
}

func TestSCSizePlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	stp, err := SCSizeNumbers(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("STP by SC size %v: %v", SCSizes, stp)
	// 8KB (index 2) captures most of the benefit of 32KB (index 4)...
	if stp[2] < stp[4]-0.06 {
		t.Errorf("8KB STP %.2f far below 32KB %.2f: no plateau", stp[2], stp[4])
	}
	// ...and a 2KB SC should not beat the larger configurations outright.
	if stp[0] > stp[4]+0.03 {
		t.Errorf("2KB STP %.2f above 32KB %.2f", stp[0], stp[4])
	}
}
