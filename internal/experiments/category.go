// Category, fairness, area-neutral and migration-cost experiments:
// Figures 9a, 11, 12, 13, 14 and 15.

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/ino"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Figure9a reports the per-structure power breakdown of the OoO, InO and
// OinO pipelines, as percentages of each core's total, measured on a
// representative memoizable workload.
func Figure9a() (*Report, error) {
	b := program.ByName("hmmer")
	l := b.Phases[0].Loops[0]
	h := mem.NewHierarchy()
	co := ooo.New(h, xrand.NewString("f9a-ooo"))
	ci := ino.New(h, xrand.NewString("f9a-ino"))
	ws := walkersFor(l.Trace, "f9a")
	co.MeasureTrace(l.Trace, l.Deps, ws, 120)
	ro := co.MeasureTrace(l.Trace, l.Deps, ws, 24)
	ri := ci.MeasureTrace(l.Trace, l.Deps, ws, 24)
	rr := ci.MeasureReplay(l.Trace, l.Deps, ro.Schedule, ws, 24)

	bO := energy.Compute(energy.KindOoO, ro.Events)
	bI := energy.Compute(energy.KindInO, ri.Events)
	bR := energy.Compute(energy.KindOinO, rr.Events)

	r := &Report{ID: "Figure 9a",
		Notes: "OinO adds PRF/LSQ/SC activity over InO but has no rename, ROB or scheduler; absolute power stays far below OoO"}
	r.Table.Title = "Figure 9a: per-structure share of core power"
	r.Table.Headers = []string{"structure", "OoO", "InO", "OinO"}
	tO, tI, tR := bO.Total(), bI.Total(), bR.Total()
	for s := energy.Structure(0); s < energy.NumStructures; s++ {
		r.Table.AddRow(s.String(), stats.Pct(bO[s]/tO), stats.Pct(bI[s]/tI), stats.Pct(bR[s]/tR))
	}
	pI := tI / float64(ri.Events.Cycles)
	pR := tR / float64(rr.Events.Cycles)
	pO := tO / float64(ro.Events.Cycles)
	r.Notes += fmt.Sprintf("; absolute power ratios: OoO/OinO=%.1f OinO/InO=%.1f", pO/pR, pR/pI)
	return r, nil
}

// Figure11 evaluates the 8:1 configuration per benchmark category: HPD-only
// mixes, LPD-only mixes and random mixes, reporting STP, OoO utilization
// and energy relative to Homo-OoO for each arbitrator.
func Figure11(ctx context.Context, s Scale) (*Report, error) {
	r := &Report{ID: "Figure 11",
		Notes: "HPD memoizes more and uses the OoO more; LPD saves more energy; random mixes sit between"}
	r.Table.Title = "Figure 11: 8:1 by benchmark category"
	r.Table.Headers = []string{"mix", "metric", "Homo-InO", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"}

	kinds := []struct {
		label string
		kind  core.MixKind
	}{
		{"HPD", core.MixHPD},
		{"LPD", core.MixLPD},
		{"Random", core.MixRandom},
	}
	// Flatten the (category, mix) grid into independent Compare jobs, then
	// average over the collated results in the old serial order.
	type f11Job struct {
		label string
		mi    int
		mix   []string
	}
	var jobs []f11Job
	for _, kr := range kinds {
		for mi, mix := range core.RandomMixes(kr.kind, 8, s.MixesPerPoint, "fig11-"+kr.label) {
			jobs = append(jobs, f11Job{label: kr.label, mi: mi, mix: mix})
		}
	}
	cmps, err := runner.Map(ctx, s.workers(), jobs,
		func(_ int, j f11Job) string { return fmt.Sprintf("fig11/%s-%d", j.label, j.mi) },
		func(_ int, j f11Job) (*core.Comparison, error) {
			return core.Compare(context.Background(), j.mix, s.baseConfig(fmt.Sprintf("f11-%s-%d", j.label, j.mi)), core.ArbitratorSet)
		})
	if err != nil {
		return nil, err
	}
	for ki, kr := range kinds {
		var stp, util, egy [4]float64 // HomoInO, SCMPKI, SCMPKI+maxSTP, maxSTP
		for mi := 0; mi < s.MixesPerPoint; mi++ {
			cmp := cmps[ki*s.MixesPerPoint+mi]
			eOoO := cmp.HomoOoO.EnergyPJ
			stp[0] += cmp.HomoInO.STP
			egy[0] += cmp.HomoInO.EnergyPJ / eOoO
			for pi, pol := range []core.Policy{core.PolicySCMPKI, core.PolicySCMPKIMaxSTP, core.PolicyMaxSTP} {
				mr := cmp.ByPolicy[pol]
				stp[pi+1] += mr.STP
				util[pi+1] += mr.OoOActiveFrac
				egy[pi+1] += mr.EnergyPJ / eOoO
			}
		}
		k := float64(s.MixesPerPoint)
		r.Table.AddRow(kr.label, "STP", stats.Pct(stp[0]/k), stats.Pct(stp[1]/k), stats.Pct(stp[2]/k), stats.Pct(stp[3]/k))
		r.Table.AddRow(kr.label, "OoO util", "-", stats.Pct(util[1]/k), stats.Pct(util[2]/k), stats.Pct(util[3]/k))
		r.Table.AddRow(kr.label, "energy", stats.Pct(egy[0]/k), stats.Pct(egy[1]/k), stats.Pct(egy[2]/k), stats.Pct(egy[3]/k))
	}
	return r, nil
}

// Figure12 reports how the OoO's active time divides among the eight
// applications of one mix under each arbitrator: maxSTP starves most apps,
// Fair splits evenly, SC-MPKI-fair caps every app at its 1/n share.
func Figure12(ctx context.Context, s Scale) (*Report, error) {
	mix := core.RandomMixes(core.MixRandom, 8, 1, "fig12")[0]
	r := &Report{ID: "Figure 12",
		Notes: "share of OoO-active cycles per app; SC-MPKI-fair keeps every app at or below 1/8"}
	r.Table.Title = "Figure 12: OoO utilization per benchmark (8:1)"
	headers := []string{"arbitrator"}
	for i, name := range mix {
		headers = append(headers, fmt.Sprintf("app%d:%s", i, name))
	}
	r.Table.Headers = headers

	// A single Compare call: let it fan its policy runs out internally.
	base := s.baseConfig("fig12")
	base.Parallel = s.workers()
	cmp, err := core.Compare(ctx, mix, base, core.FairSet)
	if err != nil {
		return nil, err
	}
	for _, pol := range []core.Policy{core.PolicyMaxSTP, core.PolicySCMPKI, core.PolicyFair, core.PolicySCMPKIFair} {
		mr := cmp.ByPolicy[pol]
		row := []string{string(pol)}
		for _, a := range mr.Cluster.Apps {
			// Utilization of the OoO by this app, as a fraction of total
			// time: rows need not sum to 100% — the remainder is the OoO
			// power-gated (Section 5.3's point).
			if mr.Cluster.RunCycles > 0 {
				row = append(row, stats.Pct(float64(a.OoOCycles)/float64(mr.Cluster.RunCycles)))
			} else {
				row = append(row, "0%")
			}
		}
		r.Table.AddRow(row...)
	}
	return r, nil
}

// OoOShares returns each app's share of total OoO time under each policy of
// the line-up, keyed by policy (for the fairness property tests). The
// per-policy runs are independent and fan out to the scale's worker pool.
func OoOShares(ctx context.Context, s Scale, mix []string, set []struct {
	Policy   core.Policy
	Topology core.Topology
}) (map[core.Policy][]float64, error) {
	cfgs := make([]core.Config, len(set))
	for i, pt := range set {
		cfg := s.baseConfig("shares")
		cfg.Topology = pt.Topology
		cfg.Policy = pt.Policy
		cfg.Benchmarks = mix
		cfgs[i] = cfg
	}
	mrs, err := runMixes(ctx, s, "shares", cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[core.Policy][]float64, len(set))
	for i, pt := range set {
		mr := mrs[i]
		shares := make([]float64, len(mr.Cluster.Apps))
		for ai, a := range mr.Cluster.Apps {
			if mr.Cluster.RunCycles > 0 {
				shares[ai] = float64(a.OoOCycles) / float64(mr.Cluster.RunCycles)
			}
		}
		out[pt.Policy] = shares
	}
	return out, nil
}

// Figure13 evaluates the fair arbitrators across cluster sizes:
// performance, OoO utilization and energy relative to Homo-OoO.
func Figure13(ctx context.Context, s Scale) (*Report, error) {
	r := &Report{ID: "Figure 13",
		Notes: "SC-MPKI-fair reaches Fair's balance while powering the OoO down when memoization suffices"}
	r.Table.Title = "Figure 13: fair schedulers vs cluster size"
	r.Table.Headers = []string{"n", "metric", "Homo-InO", "SC-MPKI-fair", "Fair"}
	set := []struct {
		Policy   core.Policy
		Topology core.Topology
	}{
		{core.PolicySCMPKIFair, core.TopologyMirage},
		{core.PolicyFair, core.TopologyTraditional},
	}
	type f13Job struct {
		n, mi int
		mix   []string
	}
	var jobs []f13Job
	for _, n := range s.NValues {
		for mi, mix := range core.RandomMixes(core.MixRandom, n, s.MixesPerPoint, fmt.Sprintf("fig13-%d", n)) {
			jobs = append(jobs, f13Job{n: n, mi: mi, mix: mix})
		}
	}
	cmps, err := runner.Map(ctx, s.workers(), jobs,
		func(_ int, j f13Job) string { return fmt.Sprintf("fig13/f13-%d-%d", j.n, j.mi) },
		func(_ int, j f13Job) (*core.Comparison, error) {
			return core.Compare(context.Background(), j.mix, s.baseConfig(fmt.Sprintf("f13-%d-%d", j.n, j.mi)), set)
		})
	if err != nil {
		return nil, err
	}
	for ni, n := range s.NValues {
		var stpI, stpSF, stpF, utilSF, utilF, eI, eSF, eF float64
		for mi := 0; mi < s.MixesPerPoint; mi++ {
			cmp := cmps[ni*s.MixesPerPoint+mi]
			eOoO := cmp.HomoOoO.EnergyPJ
			stpI += cmp.HomoInO.STP
			eI += cmp.HomoInO.EnergyPJ / eOoO
			sf := cmp.ByPolicy[core.PolicySCMPKIFair]
			f := cmp.ByPolicy[core.PolicyFair]
			stpSF += sf.STP
			stpF += f.STP
			utilSF += sf.OoOActiveFrac
			utilF += f.OoOActiveFrac
			eSF += sf.EnergyPJ / eOoO
			eF += f.EnergyPJ / eOoO
		}
		k := float64(s.MixesPerPoint)
		r.Table.AddRow(fmt.Sprint(n), "performance", stats.Pct(stpI/k), stats.Pct(stpSF/k), stats.Pct(stpF/k))
		r.Table.AddRow(fmt.Sprint(n), "utilization", "-", stats.Pct(utilSF/k), stats.Pct(utilF/k))
		r.Table.AddRow(fmt.Sprint(n), "energy", stats.Pct(eI/k), stats.Pct(eSF/k), stats.Pct(eF/k))
	}
	return r, nil
}

// Figure14 is the area-neutral study: an 8:1 Mirage cluster under SC-MPKI
// against a Kumar-style 5:3 traditional Het-CMP under maxSTP, both running
// the same 8-application mixes.
func Figure14(ctx context.Context, s Scale) (*Report, error) {
	r := &Report{ID: "Figure 14",
		Notes: "one schedule-producing OoO beats two extra OoO cores at similar area"}
	r.Table.Title = "Figure 14: area-neutral comparison (relative to Homo-OoO)"
	r.Table.Headers = []string{"metric", "8:1 SC-MPKI", "5:3 maxSTP"}

	mixes := core.RandomMixes(core.MixRandom, 8, s.MixesPerPoint, "fig14")
	// One job per mix: the Mirage comparison plus the 5:3 traditional run,
	// executed inside the job in the old serial order.
	type f14Point struct {
		cmp *core.Comparison
		tr  *core.MixResult
	}
	points, err := runner.Map(ctx, s.workers(), mixes,
		func(mi int, _ []string) string { return fmt.Sprintf("fig14/f14-%d", mi) },
		func(mi int, mix []string) (f14Point, error) {
			base := s.baseConfig(fmt.Sprintf("f14-%d", mi))
			cmp, err := core.Compare(context.Background(), mix, base, []struct {
				Policy   core.Policy
				Topology core.Topology
			}{{core.PolicySCMPKI, core.TopologyMirage}})
			if err != nil {
				return f14Point{}, err
			}
			tCfg := base
			tCfg.Topology = core.TopologyTraditional
			tCfg.Policy = core.PolicyMaxSTP
			tCfg.Benchmarks = mix
			tCfg.NumOoO = 3
			tr, err := core.RunMix(context.Background(), tCfg)
			if err != nil {
				return f14Point{}, err
			}
			tr.STP = stats.STP(tr.PerAppIPC, cmp.RefIPC)
			return f14Point{cmp: cmp, tr: tr}, nil
		})
	if err != nil {
		return nil, err
	}
	var stpM, stpT, utilM, utilT, eM, eT float64
	for _, p := range points {
		m := p.cmp.ByPolicy[core.PolicySCMPKI]
		stpM += m.STP
		utilM += m.OoOActiveFrac
		eM += m.EnergyPJ / p.cmp.HomoOoO.EnergyPJ

		stpT += p.tr.STP
		utilT += p.tr.OoOActiveFrac
		eT += p.tr.EnergyPJ / p.cmp.HomoOoO.EnergyPJ
	}
	k := float64(len(mixes))
	areaM := core.Area(core.TopologyMirage, 8) / core.Area(core.TopologyHomoOoO, 8)
	areaT := core.AreaK(core.TopologyTraditional, 5, 3) / core.Area(core.TopologyHomoOoO, 8)
	r.Table.AddRow("performance", stats.Pct(stpM/k), stats.Pct(stpT/k))
	r.Table.AddRow("utilization", stats.Pct(utilM/k), stats.Pct(utilT/k))
	r.Table.AddRow("energy", stats.Pct(eM/k), stats.Pct(eT/k))
	r.Table.AddRow("area", stats.Pct(areaM), stats.Pct(areaT))
	return r, nil
}

// Figure14Numbers returns the area-neutral STP/energy pair for tests.
func Figure14Numbers(ctx context.Context, s Scale) (stpMirage, stpTrad, energyMirage, energyTrad float64, err error) {
	rep, err := Figure14(ctx, s)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	parse := func(cell string) float64 {
		var v float64
		fmt.Sscanf(cell, "%f%%", &v)
		return v / 100
	}
	rows := rep.Table.Rows
	return parse(rows[0][1]), parse(rows[0][2]), parse(rows[2][1]), parse(rows[2][2]), nil
}

// Figure15 reports migration transfer costs as a fraction of execution time
// plus migration frequency, per benchmark category, for 8:1 SC-MPKI runs.
func Figure15(ctx context.Context, s Scale) (*Report, error) {
	r := &Report{ID: "Figure 15",
		Notes: "HPD migrates more often (schedule production); overall transfer overhead stays well under 1%"}
	r.Table.Title = "Figure 15: migration transfer costs (8:1, SC-MPKI)"
	r.Table.Headers = []string{"mix", "SC transfer", "L1 refill", "migrations/100 intervals", "overhead"}

	kinds := []struct {
		label string
		kind  core.MixKind
	}{
		{"HPD", core.MixHPD},
		{"LPD", core.MixLPD},
		{"Random", core.MixRandom},
	}
	var cfgs []core.Config
	for _, kr := range kinds {
		for mi, mix := range core.RandomMixes(kr.kind, 8, s.MixesPerPoint, "fig15-"+kr.label) {
			cfg := s.baseConfig(fmt.Sprintf("f15-%s-%d", kr.label, mi))
			cfg.Topology = core.TopologyMirage
			cfg.Policy = core.PolicySCMPKI
			cfg.Benchmarks = mix
			cfgs = append(cfgs, cfg)
		}
	}
	mrs, err := runMixes(ctx, s, "fig15", cfgs)
	if err != nil {
		return nil, err
	}
	for ki, kr := range kinds {
		var scFrac, l1Frac, freq float64
		var samples float64
		for mi := 0; mi < s.MixesPerPoint; mi++ {
			mr := mrs[ki*s.MixesPerPoint+mi]
			for _, a := range mr.Cluster.Apps {
				if a.Cycles == 0 {
					continue
				}
				scFrac += float64(a.SCTransferCycles) / float64(a.Cycles)
				l1Frac += float64(a.L1RefillCycles) / float64(a.Cycles)
				freq += float64(a.Migrations) * 100 * float64(s.IntervalCycles) / float64(a.Cycles)
				samples++
			}
		}
		if samples == 0 {
			continue
		}
		r.Table.AddRow(kr.label,
			fmt.Sprintf("%.3f%%", 100*scFrac/samples),
			fmt.Sprintf("%.3f%%", 100*l1Frac/samples),
			stats.F(freq/samples),
			fmt.Sprintf("%.3f%%", 100*(scFrac+l1Frac)/samples))
	}
	return r, nil
}
