// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 plus the motivation figures of Section 2). Each
// ExperimentN function returns a Report: named series of rows that print as
// a text table matching the figure's axes. The cmd/mirageexp binary and the
// repository's benchmark harness both drive these entry points.
//
// Absolute magnitudes depend on the synthetic workload substitution
// (DESIGN.md §2); the assertions the test suite makes are about shape:
// orderings, ratios and crossover points the paper reports.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Scale sets how big the simulated runs are. Quick keeps every experiment
// in CI-friendly time; Full is closer to the paper's operating point.
type Scale struct {
	Name           string
	TargetInsts    int64
	IntervalCycles int64
	// MixesPerPoint is how many workload mixes are averaged per data point.
	MixesPerPoint int
	// NValues are the InO-per-OoO cluster sizes swept (Figures 6-9, 13).
	NValues []int
	// TimelineIntervals is the length of timeline case studies (Figs 5/10).
	TimelineIntervals int
	// Parallel bounds how many simulations an experiment runs concurrently:
	// 0 (the default) uses runtime.GOMAXPROCS, 1 forces serial execution,
	// larger values cap the worker pool. Every experiment produces
	// bit-identical reports at any setting (DESIGN.md §8); only wall-clock
	// time changes.
	Parallel int
	// Telemetry, when non-nil, instruments every simulation the experiments
	// launch. All runs share the registry, so counters are harness totals.
	// With Parallel > 1 counters still accumulate race-free, but snapshot
	// gauges and trace-event interleaving reflect whichever run touched
	// them last — see DESIGN.md §8.
	Telemetry *telemetry.Telemetry
	// Audit threads the invariant audit (DESIGN.md §11) through every
	// simulation the experiments launch; a violation fails the experiment.
	Audit bool
}

// workers lowers Scale.Parallel to a runner worker count.
func (s Scale) workers() int {
	if s.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Parallel
}

// runMixes simulates a batch of independent configurations on the scale's
// worker pool, returning results in input order. name labels jobs in errors.
func runMixes(ctx context.Context, s Scale, name string, cfgs []core.Config) ([]*core.MixResult, error) {
	return runner.Map(ctx, s.workers(), cfgs,
		func(_ int, cfg core.Config) string { return name + "/" + cfg.Seed + ":" + string(cfg.Policy) },
		func(_ int, cfg core.Config) (*core.MixResult, error) { return core.RunMix(context.Background(), cfg) })
}

// TinyScale runs every experiment in well under a second. It exists for
// serving smoke and load tests (mirageload's sweep traffic), where the
// point is exercising the serving layer, not producing meaningful curves.
var TinyScale = Scale{
	Name:              "tiny",
	TargetInsts:       150_000,
	IntervalCycles:    15_000,
	MixesPerPoint:     1,
	NValues:           []int{2},
	TimelineIntervals: 20,
}

// QuickScale runs every experiment in seconds-to-minutes.
var QuickScale = Scale{
	Name:              "quick",
	TargetInsts:       2_000_000,
	IntervalCycles:    40_000,
	MixesPerPoint:     2,
	NValues:           []int{4, 8, 12, 16},
	TimelineIntervals: 120,
}

// FullScale is the default for the experiment binary.
var FullScale = Scale{
	Name:              "full",
	TargetInsts:       6_000_000,
	IntervalCycles:    80_000,
	MixesPerPoint:     4,
	NValues:           []int{4, 8, 12, 16},
	TimelineIntervals: 300,
}

func (s Scale) baseConfig(seed string) core.Config {
	return core.Config{
		TargetInsts:    s.TargetInsts,
		IntervalCycles: s.IntervalCycles,
		Seed:           seed,
		Telemetry:      s.Telemetry,
		Audit:          s.Audit,
	}
}

// Report is a printable experiment result.
type Report struct {
	ID    string // "Figure 7", "Table 1", ...
	Notes string
	Table stats.Table
}

// String renders the report.
func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// reportJSON is the machine-readable shape of a Report: the table flattened
// so runs diff cleanly and feed trajectory tooling.
type reportJSON struct {
	ID      string     `json:"id"`
	Notes   string     `json:"notes,omitempty"`
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the report as a flat, diffable object.
func (r *Report) MarshalJSON() ([]byte, error) {
	rows := r.Table.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(reportJSON{
		ID:      r.ID,
		Notes:   r.Notes,
		Title:   r.Table.Title,
		Headers: r.Table.Headers,
		Rows:    rows,
	})
}

// WriteJSON writes the report's JSON encoding, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteReportsJSON writes a slice of reports as one indented JSON array —
// the diffable counterpart of mirageexp's text output.
func WriteReportsJSON(w io.Writer, reports []*Report) error {
	if reports == nil {
		reports = []*Report{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(reports)
}

// sweepPoint is one (n, policy) observation averaged over mixes.
type sweepPoint struct {
	stp       float64 // relative to Homo-OoO
	energy    float64 // relative to Homo-OoO
	oooActive float64 // fraction of wall cycles
}

// sweepResult caches the Figures 7/8/9b sweep so one simulation pass feeds
// all three reports.
type sweepResult struct {
	n        []int
	homoInO  []sweepPoint
	byPolicy map[core.Policy][]sweepPoint
}

// sweepCache's abandon grace lets a caller whose context ends mid-sweep
// still harvest the flight's partial-result error (*runner.Canceled with
// completed/total counts) instead of a bare context error — the server's
// 504 detail rides on it — while keeping abandonment latency well under
// the 100ms bound the e2e cancellation test enforces.
var sweepCache = runner.Cache[string, *sweepResult]{AbandonGrace: 40 * time.Millisecond}

// ResetCaches drops every memoized simulation result the experiment layer
// holds (the sweep, per-benchmark profile and CPI caches). The determinism
// tests call it between serial and parallel passes so the second pass
// recomputes instead of trivially replaying the first; long-lived harnesses
// can call it to bound memory.
func ResetCaches() {
	sweepCache.Reset()
	profileCache.Reset()
	cpiCache.Reset()
}

// runSweep simulates the arbitrator line-up across cluster sizes. The
// (n, mix) grid is flattened into independent jobs — each owns its seed, so
// results are scheduling-independent — and the per-n averages below are
// accumulated over the collated slice in the same order the old serial loop
// used, keeping every downstream figure bit-identical at any parallelism.
// The sweep is memoized through a singleflight cache keyed by every scale
// knob that changes the result; the flight runs under a detached context so
// concurrent callers (CLI + several server requests) share one pass, and
// only when every caller abandons it does the sweep stop scheduling jobs.
func runSweep(ctx context.Context, s Scale) (*sweepResult, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%v", s.Name, s.TargetInsts, s.IntervalCycles, s.MixesPerPoint, s.NValues)
	res, _, err := sweepCache.DoContext(ctx, key, func(fctx context.Context) (*sweepResult, error) {
		type sweepJob struct {
			n, mi int
			mix   []string
		}
		var jobs []sweepJob
		for _, n := range s.NValues {
			mixes := core.RandomMixes(core.MixRandom, n, s.MixesPerPoint, fmt.Sprintf("sweep-n%d", n))
			for mi, mix := range mixes {
				jobs = append(jobs, sweepJob{n: n, mi: mi, mix: mix})
			}
		}
		cmps, err := runner.Map(fctx, s.workers(), jobs,
			func(_ int, j sweepJob) string { return fmt.Sprintf("sweep/sw-%d-%d", j.n, j.mi) },
			func(_ int, j sweepJob) (*core.Comparison, error) {
				return core.Compare(context.Background(), j.mix, s.baseConfig(fmt.Sprintf("sw-%d-%d", j.n, j.mi)), core.ArbitratorSet)
			})
		if err != nil {
			return nil, err
		}
		res := &sweepResult{byPolicy: make(map[core.Policy][]sweepPoint)}
		for ni, n := range s.NValues {
			var inO sweepPoint
			acc := map[core.Policy]*sweepPoint{}
			for _, pt := range core.ArbitratorSet {
				acc[pt.Policy] = &sweepPoint{}
			}
			for mi := 0; mi < s.MixesPerPoint; mi++ {
				cmp := cmps[ni*s.MixesPerPoint+mi]
				eOoO := cmp.HomoOoO.EnergyPJ
				inO.stp += cmp.HomoInO.STP
				inO.energy += cmp.HomoInO.EnergyPJ / eOoO
				for _, pt := range core.ArbitratorSet {
					mr := cmp.ByPolicy[pt.Policy]
					acc[pt.Policy].stp += mr.STP
					acc[pt.Policy].energy += mr.EnergyPJ / eOoO
					acc[pt.Policy].oooActive += mr.OoOActiveFrac
				}
			}
			k := float64(s.MixesPerPoint)
			res.n = append(res.n, n)
			res.homoInO = append(res.homoInO, sweepPoint{stp: inO.stp / k, energy: inO.energy / k})
			for _, pt := range core.ArbitratorSet {
				p := acc[pt.Policy]
				res.byPolicy[pt.Policy] = append(res.byPolicy[pt.Policy],
					sweepPoint{stp: p.stp / k, energy: p.energy / k, oooActive: p.oooActive / k})
			}
		}
		return res, nil
	})
	return res, err
}

// Figure7 reports STP relative to a Homo-OoO CMP for each arbitrator across
// cluster sizes (the throughput-aware arbitration comparison).
func Figure7(ctx context.Context, s Scale) (*Report, error) {
	sw, err := runSweep(ctx, s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "Figure 7",
		Notes: "STP relative to Homo-OoO; paper shape: Homo-InO < maxSTP < SC-MPKI ~= SC-MPKI+maxSTP",
	}
	r.Table.Title = "Figure 7: STP relative to Homo-OoO vs InO cores per OoO"
	r.Table.Headers = []string{"n", "Homo-InO", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"}
	for i, n := range sw.n {
		r.Table.AddRow(fmt.Sprint(n),
			stats.Pct(sw.homoInO[i].stp),
			stats.Pct(sw.byPolicy[core.PolicySCMPKI][i].stp),
			stats.Pct(sw.byPolicy[core.PolicySCMPKIMaxSTP][i].stp),
			stats.Pct(sw.byPolicy[core.PolicyMaxSTP][i].stp))
	}
	return r, nil
}

// Figure8 reports relative energy consumption for the same sweep.
func Figure8(ctx context.Context, s Scale) (*Report, error) {
	sw, err := runSweep(ctx, s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "Figure 8",
		Notes: "energy relative to Homo-OoO; savings shrink as n grows and OoO contention rises",
	}
	r.Table.Title = "Figure 8: energy relative to Homo-OoO vs InO cores per OoO"
	r.Table.Headers = []string{"n", "Homo-InO", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"}
	for i, n := range sw.n {
		r.Table.AddRow(fmt.Sprint(n),
			stats.Pct(sw.homoInO[i].energy),
			stats.Pct(sw.byPolicy[core.PolicySCMPKI][i].energy),
			stats.Pct(sw.byPolicy[core.PolicySCMPKIMaxSTP][i].energy),
			stats.Pct(sw.byPolicy[core.PolicyMaxSTP][i].energy))
	}
	return r, nil
}

// Figure9b reports the fraction of cycles the OoO was active per arbitrator
// and cluster size.
func Figure9b(ctx context.Context, s Scale) (*Report, error) {
	sw, err := runSweep(ctx, s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "Figure 9b",
		Notes: "SC-MPKI powers the OoO down when no memoization is pending; maxSTP never does",
	}
	r.Table.Title = "Figure 9b: %% cycles the OoO was active"
	r.Table.Headers = []string{"n", "SC-MPKI", "SC-MPKI+maxSTP", "maxSTP"}
	for i, n := range sw.n {
		r.Table.AddRow(fmt.Sprint(n),
			stats.Pct(sw.byPolicy[core.PolicySCMPKI][i].oooActive),
			stats.Pct(sw.byPolicy[core.PolicySCMPKIMaxSTP][i].oooActive),
			stats.Pct(sw.byPolicy[core.PolicyMaxSTP][i].oooActive))
	}
	return r, nil
}

// Headline reports the abstract's numbers for the 8:1 configuration plus
// the scaling knee where OoO starvation saturates.
func Headline(ctx context.Context, s Scale) (*Report, error) {
	sw, err := runSweep(ctx, s)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "Headline",
		Notes: "paper: 84% of 8-OoO performance, ~55% energy saving, ~25% area saving; knee near 12:1"}
	r.Table.Title = "Headline: Mirage 8:1 vs Homo-OoO (paper: 84% perf, 45% energy, 74% area)"
	r.Table.Headers = []string{"metric", "Mirage(SC-MPKI)", "paper"}
	idx8 := -1
	for i, n := range sw.n {
		if n == 8 {
			idx8 = i
		}
	}
	if idx8 < 0 {
		return nil, fmt.Errorf("headline: scale does not sweep n=8")
	}
	p8 := sw.byPolicy[core.PolicySCMPKI][idx8]
	area := core.Area(core.TopologyMirage, 8) / core.Area(core.TopologyHomoOoO, 8)
	r.Table.AddRow("performance", stats.Pct(p8.stp), "84%")
	r.Table.AddRow("energy", stats.Pct(p8.energy), "45%")
	r.Table.AddRow("area", stats.Pct(area), "74%")
	// Scaling knee: first n where the SC-MPKI arbitrator's OoO is active
	// nearly all the time (starvation sets in).
	knee := sw.n[len(sw.n)-1]
	for i, n := range sw.n {
		if sw.byPolicy[core.PolicySCMPKI][i].oooActive > 0.95 {
			knee = n
			break
		}
	}
	r.Table.AddRow("scaling knee (n)", fmt.Sprint(knee), "12")
	return r, nil
}
