package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenReports are hand-built fixtures covering the encoder's edge cases:
// a fully-populated report, one with no notes/title/headers, and one with an
// empty table (Rows must encode as [] rather than null so downstream diff
// tooling sees a stable shape).
func goldenReports() []*Report {
	full := &Report{
		ID:    "Figure 7",
		Notes: "STP relative to Homo-OoO; fixture for the JSON golden test",
	}
	full.Table.Title = "Figure 7: STP relative to Homo-OoO vs InO cores per OoO"
	full.Table.Headers = []string{"n", "Homo-InO", "SC-MPKI"}
	full.Table.AddRow("4", "52%", "81%")
	full.Table.AddRow("8", "49%", "78%")

	bare := &Report{ID: "Table 2"}
	bare.Table.AddRow("OoO", "3-wide, 128-entry ROB")

	empty := &Report{ID: "SC size", Notes: "no rows: every mix failed to sample"}
	empty.Table.Title = "SC sizing study"
	empty.Table.Headers = []string{"SC capacity", "STP vs Homo-OoO"}

	return []*Report{full, bare, empty}
}

// checkGolden compares got against testdata/<name>, rewriting the file when
// -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func TestReportMarshalJSONGolden(t *testing.T) {
	for _, tc := range []struct {
		file string
		rep  *Report
	}{
		{"report_full.json", goldenReports()[0]},
		{"report_bare.json", goldenReports()[1]},
		{"report_empty_table.json", goldenReports()[2]},
	} {
		var buf bytes.Buffer
		if err := tc.rep.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		checkGolden(t, tc.file, buf.Bytes())

		// The encoding must round-trip into the documented flat shape.
		var back struct {
			ID   string     `json:"id"`
			Rows [][]string `json:"rows"`
		}
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("%s does not re-parse: %v", tc.file, err)
		}
		if back.ID != tc.rep.ID {
			t.Errorf("%s: round-tripped id %q, want %q", tc.file, back.ID, tc.rep.ID)
		}
		if back.Rows == nil {
			t.Errorf("%s: rows encoded as null, want []", tc.file)
		}
	}
}

func TestWriteReportsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportsJSON(&buf, goldenReports()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "reports_array.json", buf.Bytes())

	// A nil slice still writes a valid empty array.
	buf.Reset()
	if err := WriteReportsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "reports_nil.json", buf.Bytes())
}
