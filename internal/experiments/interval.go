// Interval-length studies: Figure 3b (migration overhead and memoizability
// versus switching interval) and Figure 6 (area versus cluster size).

package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Figure3b reproduces the two curves that set the 1M-cycle interval:
//
//   - Performance relative to no switching, for an application forced to
//     migrate between two identical cores every n cycles (cold L1s + drain
//     each time): losses shrink from >10% at 1K-cycle intervals to ~1%
//     beyond 1M.
//   - The fraction of instructions usefully memoized when the OoO may only
//     refresh an infinite SC every n cycles: memoizability decays as the
//     interval outgrows schedule lifetimes and phase lengths.
func Figure3b(ctx context.Context, s Scale) (*Report, error) {
	intervals := []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	mix := []string{"bzip2", "hmmer"}

	r := &Report{ID: "Figure 3b",
		Notes: "migration penalty shrinks with interval length while memoizability decays; the paper picks 1M cycles"}
	r.Table.Title = "Figure 3b: interval length trade-off"
	r.Table.Headers = []string{"interval (cycles)", "perf vs no switching", "%insts memoized"}

	// Each interval is an independent pair of measurements; fan them out and
	// add rows from the collated slice in interval order.
	type ivPoint struct{ perf, memo float64 }
	points, err := runner.Map(ctx, s.workers(), intervals,
		func(_ int, iv int64) string { return fmt.Sprintf("fig3b/iv-%d", iv) },
		func(_ int, iv int64) (ivPoint, error) {
			perf, err := pingPongPerf(s, mix, iv)
			if err != nil {
				return ivPoint{}, err
			}
			return ivPoint{perf: perf, memo: refreshMemoizability(iv)}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, iv := range intervals {
		r.Table.AddRow(fmt.Sprint(iv), stats.Pct(points[i].perf), stats.Pct(points[i].memo))
	}
	return r, nil
}

// pingPongPerf measures throughput with forced migrations every `interval`
// cycles, relative to the same run without switching.
func pingPongPerf(s Scale, mix []string, interval int64) (float64, error) {
	// The cluster migrates at interval boundaries, so express the switching
	// period through the interval length itself.
	base := s.baseConfig("fig3b")
	base.Topology = core.TopologyHomoInO
	base.Benchmarks = mix
	base.TargetInsts = s.TargetInsts / 2
	base.IntervalCycles = interval
	stable, err := core.RunMix(context.Background(), base)
	if err != nil {
		return 0, err
	}
	moved := base
	moved.PingPongEvery = 1
	moving, err := core.RunMix(context.Background(), moved)
	if err != nil {
		return 0, err
	}
	return stats.Mean(moving.PerAppIPC) / stats.Mean(stable.PerAppIPC), nil
}

// refreshMemoizability estimates, per benchmark and averaged over the
// suite, the fraction of instructions that execute from a valid memoized
// schedule when the SC can only be refreshed every `interval` cycles.
//
// Two decay mechanisms bound it, both measured from the generated
// workloads rather than assumed: phases end (a refresh at a phase start
// only covers the remainder of the phase — single-phase programs never go
// stale), and low-stability schedules drift (a trace whose schedule
// repeats with probability p stays useful for ~1/(1-p) executions, so
// frequent refreshes capture short-lived schedules that long intervals
// miss — the gcc effect of Section 3.2.1).
func refreshMemoizability(interval int64) float64 {
	var vals []float64
	for _, b := range program.Suite() {
		var frac, weight float64
		multiPhase := len(b.Phases) > 1
		for _, ph := range b.Phases {
			phaseCycles := phaseLenCycles(b, ph)
			for _, l := range ph.Loops {
				w := l.Weight * float64(l.Trace.Len())
				weight += w
				if l.Trace.Stability == 0 {
					continue
				}
				cover := 1.0
				if multiPhase {
					// A refresh only covers the remainder of the phase it
					// lands in.
					cover = math.Min(1, phaseCycles/float64(interval))
				}
				if l.Trace.Stability < 0.7 {
					// Short-lived schedules need frequent refresh.
					cpi := approxCPI(b.Name, &l)
					horizon := cpi / math.Max(1e-3, 1-l.Trace.Stability) * 50
					cover = math.Min(cover, horizon/float64(interval))
				}
				frac += w * l.Trace.Stability * cover
			}
		}
		if weight > 0 {
			vals = append(vals, frac/weight)
		}
	}
	return stats.Mean(vals)
}

// cpiCache memoizes per-trace CPI measurements; runner.Cache keeps it safe
// when several Figure 3b interval jobs hit the same trace concurrently.
var cpiCache runner.Cache[string, float64]

func approxCPI(bench string, l *program.Loop) float64 {
	key := fmt.Sprintf("%s/%d", bench, l.Trace.ID)
	v, _ := cpiCache.Do(key, func() (float64, error) {
		h := mem.NewHierarchy()
		co := ooo.New(h, xrand.NewString("f3b:"+bench))
		ws := walkersFor(l.Trace, "f3b:"+bench)
		co.MeasureTrace(l.Trace, l.Deps, ws, 60)
		v := co.MeasureTrace(l.Trace, l.Deps, ws, 8).CyclesPerIter
		if v <= 0 {
			v = float64(l.Trace.Len())
		}
		return v, nil
	})
	return v
}

func phaseLenCycles(b *program.Benchmark, ph program.Phase) float64 {
	// Convert the phase's instruction span to cycles at roughly IPC 2.
	var next int64 = b.PhaseLen()
	for _, p := range b.Phases {
		if p.StartInst > ph.StartInst {
			next = p.StartInst
			break
		}
	}
	return float64(next-ph.StartInst) / 2
}

// Figure6 reports CMP area relative to a Homo-OoO CMP with n cores, for
// Homo-InO (n:0), Mirage (n:1 with OinO structures) and a traditional
// Het-CMP (n:1), across cluster sizes.
func Figure6(s Scale) *Report {
	r := &Report{ID: "Figure 6",
		Notes: "adding the producer OoO and the OinO structures raises area over Homo-InO, yet stays well under Homo-OoO"}
	r.Table.Title = "Figure 6: area relative to Homo-OoO"
	r.Table.Headers = []string{"n", "n:0 Homo-InO", "n:1 MirageCores", "n:1 TraditionalCores"}
	for _, n := range s.NValues {
		base := energy.ClusterArea(n, 0, 0)
		r.Table.AddRow(fmt.Sprint(n),
			stats.Pct(energy.ClusterArea(0, n, 0)/base),
			stats.Pct(energy.ClusterArea(1, 0, n)/base),
			stats.Pct(energy.ClusterArea(1, n, 0)/base))
	}
	return r
}
