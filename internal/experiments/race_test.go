package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestProfileConcurrent is the regression test for the profileCache data
// race: before the cache became a runner.Cache, eight goroutines profiling
// the same benchmark concurrently raced on a bare package-global map (caught
// by `go test -race`). Beyond race-cleanliness it asserts the singleflight
// contract: every caller sees the same *benchProfile.
func TestProfileConcurrent(t *testing.T) {
	s := tinyScale
	s.Name = "tiny-race" // private cache key: other tests must not pre-seed it
	const goroutines = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	got := make([]*benchProfile, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got[g], errs[g] = profile(context.Background(), s, "hmmer")
		}()
	}
	close(start)
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] == nil || got[g] != got[0] {
			t.Fatalf("goroutine %d got a different profile pointer: singleflight broken", g)
		}
	}
	if got[0].name != "hmmer" || got[0].ipcOoO <= 0 {
		t.Fatalf("profile looks empty: %+v", got[0])
	}
	// A recompute under a fresh cache key must agree exactly — profiling is
	// deterministic regardless of who computed it first. (The key embeds the
	// scale name, so renaming forces a recompute without evicting entries
	// other tests rely on.)
	s2 := s
	s2.Name = "tiny-race-2"
	again, err := profile(context.Background(), s2, "hmmer")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*again, *got[0]) {
		t.Fatalf("recomputed profile differs:\nfirst:  %+v\nsecond: %+v", *got[0], *again)
	}
}
