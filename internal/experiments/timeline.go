// Timeline case studies: Figure 5 (bzip2 ΔSC-MPKI vs IPC) and Figure 10
// (astar+hmmer+bzip2 under maxSTP vs SC-MPKI).

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Figure5 reproduces the bzip2 timeline: per-interval IPC and ΔSC-MPKI on a
// Mirage cluster. Phase changes show up as IPC level shifts with ΔSC-MPKI
// spikes in their immediate locus, which is exactly the signal the SC-MPKI
// arbitrator keys on.
func Figure5(ctx context.Context, s Scale) (*Report, error) {
	cfg := s.baseConfig("fig5")
	cfg.Topology = core.TopologyMirage
	cfg.Policy = core.PolicySCMPKI
	cfg.Benchmarks = []string{"bzip2", "namd", "gamess"}
	cfg.TargetInsts = s.TargetInsts * 4 // long enough to cross several phases
	cfg.IntervalCycles = s.IntervalCycles / 2
	mr, err := core.RunMix(ctx, cfg)
	if err != nil {
		return nil, err
	}
	tl := mr.Cluster.Apps[0].Timeline
	if len(tl) > s.TimelineIntervals {
		tl = tl[:s.TimelineIntervals]
	}
	r := &Report{ID: "Figure 5",
		Notes: "ΔSC-MPKI spikes cluster around IPC level shifts (phase changes); sampled every 8 intervals"}
	r.Table.Title = "Figure 5: bzip2 timeline (ΔSC-MPKI vs IPC)"
	r.Table.Headers = []string{"interval", "IPC", "ΔSC-MPKI", "on OoO"}
	for i := 0; i < len(tl); i += 8 {
		p := tl[i]
		r.Table.AddRow(fmt.Sprint(i), stats.F(p.IPC), stats.F(p.DeltaSCMPKI), onOoO(p.OnOoO))
	}
	return r, nil
}

// Figure5Correlation quantifies the figure's claim for tests: intervals
// right after a large ΔSC-MPKI spike are more likely to be scheduled on the
// OoO than average intervals.
func Figure5Correlation(ctx context.Context, s Scale) (spikeMigrations, baseMigrations float64, err error) {
	cfg := s.baseConfig("fig5")
	cfg.Topology = core.TopologyMirage
	cfg.Policy = core.PolicySCMPKI
	cfg.Benchmarks = []string{"bzip2", "namd", "gamess"}
	cfg.TargetInsts = s.TargetInsts * 4
	cfg.IntervalCycles = s.IntervalCycles / 2
	mr, err := core.RunMix(ctx, cfg)
	if err != nil {
		return 0, 0, err
	}
	tl := mr.Cluster.Apps[0].Timeline
	var spikeN, spikeHit, baseN, baseHit float64
	for i := 0; i+1 < len(tl); i++ {
		if tl[i].OnOoO {
			continue
		}
		hit := 0.0
		if tl[i+1].OnOoO {
			hit = 1
		}
		if tl[i].DeltaSCMPKI > 2 {
			spikeN++
			spikeHit += hit
		} else {
			baseN++
			baseHit += hit
		}
	}
	if spikeN == 0 || baseN == 0 {
		return 0, 0, fmt.Errorf("figure5: no spikes observed (spikeN=%v baseN=%v)", spikeN, baseN)
	}
	return spikeHit / spikeN, baseHit / baseN, nil
}

func onOoO(b bool) string {
	if b {
		return "OoO"
	}
	return "-"
}

// Figure10 reproduces the 3:1 case study: astar, hmmer and bzip2 under the
// maxSTP and SC-MPKI arbitrators. The report summarizes each timeline as
// OoO residency and mean speedup; the paper's qualitative claims are that
// maxSTP parks hmmer on the OoO and starves bzip2, while SC-MPKI memoizes
// hmmer and bzip2, frees the OoO, and leaves astar alone in both cases.
func Figure10(ctx context.Context, s Scale) (*Report, error) {
	mix := []string{"astar", "hmmer", "bzip2"}
	r := &Report{ID: "Figure 10",
		Notes: "maxSTP parks the worst-slowdown app on the OoO; SC-MPKI memoizes instead and powers down"}
	r.Table.Title = "Figure 10: case study (3 InO : 1 OoO), astar + hmmer + bzip2"
	r.Table.Headers = []string{"arbitrator", "app", "%intervals on OoO", "speedup vs OoO"}

	points := []struct {
		policy core.Policy
		topo   core.Topology
	}{
		{core.PolicyMaxSTP, core.TopologyTraditional},
		{core.PolicySCMPKI, core.TopologyMirage},
	}
	cmps, err := runner.Map(ctx, s.workers(), points,
		func(_ int, pt struct {
			policy core.Policy
			topo   core.Topology
		}) string {
			return "fig10/" + string(pt.policy)
		},
		func(_ int, pt struct {
			policy core.Policy
			topo   core.Topology
		}) (*core.Comparison, error) {
			return core.Compare(context.Background(), mix, s.baseConfig("fig10"), []struct {
				Policy   core.Policy
				Topology core.Topology
			}{{pt.policy, pt.topo}})
		})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		cmp := cmps[pi]
		mr := cmp.ByPolicy[pt.policy]
		for i, a := range mr.Cluster.Apps {
			onOoO := 0
			for _, iv := range a.Timeline {
				if iv.OnOoO {
					onOoO++
				}
			}
			share := 0.0
			if len(a.Timeline) > 0 {
				share = float64(onOoO) / float64(len(a.Timeline))
			}
			r.Table.AddRow(string(pt.policy), a.Name, stats.Pct(share),
				stats.F(a.IPC/cmp.RefIPC[i]))
		}
	}
	return r, nil
}
