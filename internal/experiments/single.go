// Single-benchmark experiments: the Table 1 classification and the
// motivation figures (Figure 1 core comparison, Figure 2 oracle
// memoization).

package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/ino"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// benchProfile is one benchmark's single-core measurement set.
type benchProfile struct {
	name     string
	category program.Category

	ipcOoO, ipcInO       float64
	powerOoO, powerInO   float64 // pJ/cycle
	energyOoO, energyInO float64 // pJ for the instruction target

	// Oracle memoization (Figure 2): perfect control flow, infinite SC.
	memoFrac      float64 // fraction of instructions usefully memoizable
	oraclePerfRel float64 // oracle-memoized InO performance relative to OoO
}

// profileCache memoizes per-benchmark profiles. It used to be a bare
// package-global map — a latent data race once Table 1 / Figures 1-2 run
// concurrently with anything else profiling; runner.Cache gives the same
// memoization with singleflight semantics (see TestProfileConcurrent).
var profileCache = runner.Cache[string, *benchProfile]{AbandonGrace: 40 * time.Millisecond}

// profile measures one benchmark standalone on both core types. Concurrent
// callers for the same (scale, benchmark) share one flight; the flight
// context is detached from any single caller, so a request abandoning its
// profile does not kill it for others.
func profile(ctx context.Context, s Scale, name string) (*benchProfile, error) {
	key := s.Name + "/" + name
	p, _, err := profileCache.DoContext(ctx, key, func(fctx context.Context) (*benchProfile, error) {
		b := program.ByName(name)
		if b == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		p := &benchProfile{name: name, category: b.Params.Category}

		for _, topo := range []core.Topology{core.TopologyHomoOoO, core.TopologyHomoInO} {
			cfg := s.baseConfig("profile")
			cfg.Topology = topo
			cfg.Benchmarks = []string{name}
			mr, err := core.RunMix(fctx, cfg)
			if err != nil {
				return nil, err
			}
			a := mr.Cluster.Apps[0]
			switch topo {
			case core.TopologyHomoOoO:
				p.ipcOoO = a.IPC
				p.energyOoO = a.EnergyPJ.Total()
				p.powerOoO = a.EnergyPJ.Total() / float64(a.Cycles)
			default:
				p.ipcInO = a.IPC
				p.energyInO = a.EnergyPJ.Total()
				p.powerInO = a.EnergyPJ.Total() / float64(a.Cycles)
			}
		}

		p.memoFrac, p.oraclePerfRel = oracleMemoization(b)
		return p, nil
	})
	return p, err
}

// oracleMemoization measures the Figure 2 quantities: with perfect control
// flow and an infinite Schedule Cache, what fraction of execution replays a
// memoized schedule, and the resulting InO performance relative to the OoO
// measured under identical conditions.
func oracleMemoization(b *program.Benchmark) (frac, perfRel float64) {
	var wMemo, wAll float64
	var cycles, oooCycles float64
	for _, ph := range b.Phases {
		for _, l := range ph.Loops {
			h := mem.NewHierarchy()
			co := ooo.New(h, xrand.NewString("oracle-o:"+b.Name))
			ci := ino.New(h, xrand.NewString("oracle-i:"+b.Name))
			ws := walkersFor(l.Trace, "oracle:"+b.Name)
			co.MeasureTrace(l.Trace, l.Deps, ws, 120) // warm caches
			ro := co.MeasureTrace(l.Trace, l.Deps, ws, 12)

			w := l.Weight * float64(l.Trace.Len())
			wAll += w
			// Memoizable: the schedule repeats (stability) and the OinO
			// hardware can replay it.
			memoizable := l.Trace.Stability > 0.5 && ro.Schedule.Replayable() &&
				l.Trace.AliasRate <= 0.05
			var cpi float64
			if memoizable {
				// With perfect control flow (the oracle assumption), every
				// execution of a stable trace replays its schedule.
				wMemo += w
				cpi = ci.MeasureReplay(l.Trace, l.Deps, ro.Schedule, ws, 12).CyclesPerIter
			} else {
				cpi = ci.MeasureTrace(l.Trace, l.Deps, ws, 12).CyclesPerIter
			}
			cycles += l.Weight * cpi
			oooCycles += l.Weight * ro.CyclesPerIter
		}
	}
	if wAll == 0 || cycles == 0 {
		return 0, 0
	}
	return wMemo / wAll, oooCycles / cycles
}

func walkersFor(t *trace.Trace, tag string) []*mem.Walker {
	ws := make([]*mem.Walker, len(t.Streams))
	rng := xrand.NewString(tag)
	for i, spec := range t.Streams {
		ws[i] = mem.NewWalker(spec, rng.Fork(fmt.Sprint(i)))
	}
	return ws
}

// categoryAgg averages a metric over benchmarks, overall and per category.
func categoryAgg(ps []*benchProfile, f func(*benchProfile) float64) (overall, hpd, lpd float64) {
	var all, h, l []float64
	for _, p := range ps {
		v := f(p)
		all = append(all, v)
		if p.category == program.HPD {
			h = append(h, v)
		} else {
			l = append(l, v)
		}
	}
	return stats.Mean(all), stats.Mean(h), stats.Mean(l)
}

// allProfiles profiles the whole suite, fanning the per-benchmark jobs out
// to the scale's worker pool; the cache's singleflight semantics keep each
// benchmark profiled once even when figures run concurrently.
func allProfiles(ctx context.Context, s Scale) ([]*benchProfile, error) {
	return runner.Map(ctx, s.workers(), program.Names(),
		func(_ int, name string) string { return "profile/" + name },
		func(_ int, name string) (*benchProfile, error) { return profile(context.Background(), s, name) })
}

// Table1 reproduces the benchmark classification: IPC ratio per benchmark
// with its HPD/LPD category (< 60% => HPD).
func Table1(ctx context.Context, s Scale) (*Report, error) {
	ps, err := allProfiles(ctx, s)
	if err != nil {
		return nil, err
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].category != ps[j].category {
			return ps[i].category == program.HPD
		}
		return ps[i].name < ps[j].name
	})
	r := &Report{ID: "Table 1",
		Notes: "classification threshold: InO/OoO IPC ratio of 60%"}
	r.Table.Title = "Table 1: benchmark classification by InO/OoO IPC ratio"
	r.Table.Headers = []string{"benchmark", "category", "IPC ratio"}
	for _, p := range ps {
		r.Table.AddRow(p.name, p.category.String(), stats.Pct(p.ipcInO/p.ipcOoO))
	}
	return r, nil
}

// Table2 prints the experimental core parameters (configuration constants).
func Table2() *Report {
	r := &Report{ID: "Table 2"}
	r.Table.Title = "Table 2: experimental core parameters"
	r.Table.Headers = []string{"feature", "parameters"}
	r.Table.AddRow("OoO", "3-wide superscalar, 12-stage pipeline, 128-entry ROB, 128/256-entry int/FP PRF, 8KB Schedule Cache")
	r.Table.AddRow("InO", "3-wide superscalar, 8-stage pipeline, stall-on-use, 8KB Schedule Cache, OinO mode (128-entry versioned PRF, 32-entry replay LSQ)")
	r.Table.AddRow("L1", "32KB I + 32KB D @ 2 cycles, per core")
	r.Table.AddRow("L2", "2MB shared per benchmark, stride prefetcher @ 15 cycles")
	r.Table.AddRow("memory", "120 cycles")
	r.Table.AddRow("bus", "32B coherent bus; 8KB SC transfer ~ 1000 cycles")
	return r
}

// Figure1 reproduces the InO-vs-OoO comparison: performance, power, energy
// and area of the InO relative to the OoO, overall and per category.
func Figure1(ctx context.Context, s Scale) (*Report, error) {
	ps, err := allProfiles(ctx, s)
	if err != nil {
		return nil, err
	}
	perf := func(p *benchProfile) float64 { return p.ipcInO / p.ipcOoO }
	power := func(p *benchProfile) float64 { return p.powerInO / p.powerOoO }
	egy := func(p *benchProfile) float64 { return p.energyInO / p.energyOoO }

	pAll, pHPD, pLPD := categoryAgg(ps, perf)
	wAll, wHPD, wLPD := categoryAgg(ps, power)
	eAll, eHPD, eLPD := categoryAgg(ps, egy)
	area := energy.AreaInO / energy.AreaOoO

	r := &Report{ID: "Figure 1",
		Notes: "paper: InO ~60% perf, ~1/5 power, ~1/3 energy, <1/2 area of the OoO; HPD loses more performance than LPD"}
	r.Table.Title = "Figure 1: InO relative to OoO"
	r.Table.Headers = []string{"metric", "overall", "HPD", "LPD"}
	r.Table.AddRow("performance", stats.Pct(pAll), stats.Pct(pHPD), stats.Pct(pLPD))
	r.Table.AddRow("power", stats.Pct(wAll), stats.Pct(wHPD), stats.Pct(wLPD))
	r.Table.AddRow("energy", stats.Pct(eAll), stats.Pct(eHPD), stats.Pct(eLPD))
	r.Table.AddRow("area", stats.Pct(area), stats.Pct(area), stats.Pct(area))
	return r, nil
}

// Figure2 reproduces the oracle memoization study: the fraction of
// instructions that can be usefully memoized and the resulting InO
// performance, relative to the OoO, per category.
func Figure2(ctx context.Context, s Scale) (*Report, error) {
	ps, err := allProfiles(ctx, s)
	if err != nil {
		return nil, err
	}
	frac := func(p *benchProfile) float64 { return p.memoFrac }
	perf := func(p *benchProfile) float64 { return p.oraclePerfRel }
	fAll, fHPD, fLPD := categoryAgg(ps, frac)
	pAll, pHPD, pLPD := categoryAgg(ps, perf)

	r := &Report{ID: "Figure 2",
		Notes: "oracle: perfect control flow, infinite SC; paper: HPD memoizes more and gains more"}
	r.Table.Title = "Figure 2: oracle memoization (relative to OoO)"
	r.Table.Headers = []string{"metric", "overall", "HPD", "LPD"}
	r.Table.AddRow("%insts memoized", stats.Pct(fAll), stats.Pct(fHPD), stats.Pct(fLPD))
	r.Table.AddRow("perf with memoization", stats.Pct(pAll), stats.Pct(pHPD), stats.Pct(pLPD))
	return r, nil
}
