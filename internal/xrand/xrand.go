// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator. Every benchmark, workload mix and
// experiment derives its randomness from a named seed so that all results are
// bit-reproducible across runs and platforms.
package xrand

import "math"

// Rand is a xoshiro256** generator seeded via splitmix64. The zero value is
// not usable; construct with New or NewString.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// NewString returns a generator seeded from a string name (FNV-1a hash).
// Identical names always produce identical streams.
func NewString(name string) *Rand {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// Geometric returns a geometrically distributed count with success
// probability p (expected value roughly 1/p). Returns at least 1.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return 1 << 30
	}
	u := r.Float64()
	n := int(math.Log(1-u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Zero-total weights pick index 0.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent generator from this one, labelled by name so
// that forks with different labels never collide.
func (r *Rand) Fork(name string) *Rand {
	base := r.Uint64()
	sub := NewString(name)
	return New(base ^ sub.Uint64())
}
