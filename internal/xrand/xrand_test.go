package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestNewStringDeterminism(t *testing.T) {
	a, b := NewString("bench:gcc"), NewString("bench:gcc")
	c := NewString("bench:mcf")
	if a.Uint64() != b.Uint64() {
		t.Error("identical names must produce identical streams")
	}
	if a.Uint64() == c.Uint64() {
		t.Error("different names should produce different streams")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds matched %d/100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(13)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	var sum float64
	const n, p = 50000, 0.2
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	if mean := sum / n; math.Abs(mean-1/p) > 0.2 {
		t.Errorf("Geometric(%v) mean %v, want ~%v", p, mean, 1/p)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := New(31)
	if g := r.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %d, want 1", g)
	}
	if g := r.Geometric(0); g < 1<<29 {
		t.Errorf("Geometric(0) = %d, want huge", g)
	}
	if g := r.Geometric(0.5); g < 1 {
		t.Errorf("Geometric must return >= 1, got %d", g)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight-3/weight-1 pick ratio %v, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := New(41)
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights should pick 0, got %d", got)
	}
	if got := r.Pick([]float64{5}); got != 0 {
		t.Errorf("single weight should pick 0, got %d", got)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(43)
	f1 := a.Fork("one")
	b := New(43)
	b.Uint64() // consume, same as Fork does
	// Forks with different labels from identical parents must differ.
	c := New(43)
	f2 := c.Fork("two")
	if f1.Uint64() == f2.Uint64() {
		t.Error("forks with different labels should produce different streams")
	}
}

func TestForkDeterminism(t *testing.T) {
	f1 := New(47).Fork("sub")
	f2 := New(47).Fork("sub")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("identical forks diverged")
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(53)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
