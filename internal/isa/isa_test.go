package isa

import "testing"

func TestClassString(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("class %d has no name: %q", c, s)
		}
	}
	if s := Class(200).String(); s != "Class(200)" {
		t.Errorf("unknown class formats as %q", s)
	}
}

func TestIsMem(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c == Load || c == Store
		if c.IsMem() != want {
			t.Errorf("%v.IsMem() = %v", c, c.IsMem())
		}
	}
}

func TestRegPredicates(t *testing.T) {
	cases := []struct {
		r     Reg
		fp    bool
		valid bool
	}{
		{0, false, true},
		{NumIntRegs - 1, false, true},
		{NumIntRegs, true, true},
		{NumRegs - 1, true, true},
		{NumRegs, false, false},
		{NoReg, false, false},
	}
	for _, c := range cases {
		if c.r.IsFP() != c.fp {
			t.Errorf("Reg(%d).IsFP() = %v, want %v", c.r, c.r.IsFP(), c.fp)
		}
		if c.r.Valid() != c.valid {
			t.Errorf("Reg(%d).Valid() = %v, want %v", c.r, c.r.Valid(), c.valid)
		}
	}
}

func TestLatenciesPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if Latency[c] <= 0 {
			t.Errorf("%v latency %d, want > 0", c, Latency[c])
		}
	}
}

func TestLongOpsUnpipelined(t *testing.T) {
	if Pipelined[IntDiv] || Pipelined[FPDiv] {
		t.Error("divides must be unpipelined")
	}
	if !Pipelined[IntALU] || !Pipelined[Load] {
		t.Error("simple ops must be pipelined")
	}
}

func TestUnitForCoversAllClasses(t *testing.T) {
	want := map[Class]FU{
		IntALU: FUIntALU, Branch: FUIntALU,
		IntMul: FUIntMulDiv, IntDiv: FUIntMulDiv,
		FPAdd: FUFP, FPMul: FUFP, FPDiv: FUFP,
		Load: FUMem, Store: FUMem,
	}
	for c, u := range want {
		if got := UnitFor(c); got != u {
			t.Errorf("UnitFor(%v) = %v, want %v", c, got, u)
		}
	}
}

func TestFUCountsPositive(t *testing.T) {
	total := 0
	for u := FU(0); u < NumFUs; u++ {
		if FUCount[u] <= 0 {
			t.Errorf("FU pool %d empty", u)
		}
		total += FUCount[u]
	}
	if total < IssueWidth {
		t.Errorf("total FU count %d below issue width %d", total, IssueWidth)
	}
}

func TestInstHasDst(t *testing.T) {
	if (Inst{Op: Store, Dst: NoReg}).HasDst() {
		t.Error("store should have no destination")
	}
	if !(Inst{Op: IntALU, Dst: 3}).HasDst() {
		t.Error("ALU op with Dst=3 should have a destination")
	}
}

func TestTable2Constants(t *testing.T) {
	// Pin the paper's Table 2 parameters: changing them silently would
	// invalidate every experiment.
	if IssueWidth != 3 || ROBSize != 128 || OoOPipelineDepth != 12 || InOPipelineDepth != 8 {
		t.Error("core pipeline constants deviate from Table 2")
	}
	if OinOMaxVersions != 4 || OinOLSQSize != 32 || OinOPRFEntries != 128 {
		t.Error("OinO mode constants deviate from Section 3.3.2")
	}
}
