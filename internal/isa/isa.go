// Package isa defines the abstract instruction set executed by the simulated
// cores: instruction classes, architectural registers, execution latencies
// and the functional-unit pools shared by the 3-wide OoO and InO cores.
//
// The ISA is a synthetic single-ISA RISC model (ARM-like, per the paper's
// methodology): what matters to Mirage Cores is the dependence structure,
// operation latencies and memory behaviour of instruction streams, not the
// semantics of particular opcodes.
package isa

import "fmt"

// Class is the execution class of an instruction. It determines latency and
// which functional unit the instruction occupies at issue.
type Class uint8

const (
	// IntALU covers single-cycle integer arithmetic and logic.
	IntALU Class = iota
	// IntMul is integer multiply.
	IntMul
	// IntDiv is integer divide (long latency, unpipelined).
	IntDiv
	// FPAdd covers FP add/sub/compare.
	FPAdd
	// FPMul is FP multiply.
	FPMul
	// FPDiv is FP divide/sqrt (long latency, unpipelined).
	FPDiv
	// Load reads memory; its latency is determined by the cache hierarchy.
	Load
	// Store writes memory; it occupies the memory port.
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch
	// NumClasses is the number of instruction classes.
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "IntALU"
	case IntMul:
		return "IntMul"
	case IntDiv:
		return "IntDiv"
	case FPAdd:
		return "FPAdd"
	case FPMul:
		return "FPMul"
	case FPDiv:
		return "FPDiv"
	case Load:
		return "Load"
	case Store:
		return "Store"
	case Branch:
		return "Branch"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Reg is an architectural register number. Integer registers are
// [0, NumIntRegs); floating-point registers are [NumIntRegs, NumRegs).
// NoReg means "no operand".
type Reg uint8

const (
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// NumRegs is the total architectural register count.
	NumRegs = NumIntRegs + NumFPRegs
	// NoReg marks an absent register operand.
	NoReg Reg = 255
)

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r.Valid() && r >= NumIntRegs }

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < NumRegs }

// Inst is one static instruction inside a trace. Operand registers encode
// the dependence structure; MemStream selects which address stream a memory
// instruction walks (the stream generator lives in internal/mem).
type Inst struct {
	Op   Class
	Dst  Reg // NoReg for stores and branches
	Src1 Reg // NoReg if unused
	Src2 Reg // NoReg if unused
	// MemStream indexes the owning trace's address streams for Load/Store.
	MemStream uint8
}

// HasDst reports whether the instruction writes a register.
func (in Inst) HasDst() bool { return in.Dst != NoReg }

// Latency is the execution latency, in cycles, of each class once issued.
// Load latency listed here is the L1-hit latency; the memory system adds
// miss penalties on top.
var Latency = [NumClasses]int{
	IntALU: 1,
	IntMul: 3,
	IntDiv: 12,
	FPAdd:  3,
	FPMul:  4,
	FPDiv:  16,
	Load:   2, // L1D hit
	Store:  1,
	Branch: 1,
}

// Pipelined reports whether a functional unit of this class accepts a new
// operation every cycle (true) or blocks until the current one finishes.
var Pipelined = [NumClasses]bool{
	IntALU: true,
	IntMul: true,
	IntDiv: false,
	FPAdd:  true,
	FPMul:  true,
	FPDiv:  false,
	Load:   true,
	Store:  true,
	Branch: true,
}

// FU identifies a functional-unit pool.
type FU uint8

const (
	// FUIntALU executes IntALU and Branch operations.
	FUIntALU FU = iota
	// FUIntMulDiv executes IntMul and IntDiv.
	FUIntMulDiv
	// FUFP executes all floating-point operations.
	FUFP
	// FUMem is the load/store port.
	FUMem
	// NumFUs is the number of functional-unit pools.
	NumFUs
)

// UnitFor maps an instruction class to the functional unit pool it needs.
func UnitFor(c Class) FU {
	switch c {
	case IntALU, Branch:
		return FUIntALU
	case IntMul, IntDiv:
		return FUIntMulDiv
	case FPAdd, FPMul, FPDiv:
		return FUFP
	case Load, Store:
		return FUMem
	}
	return FUIntALU
}

// FUCount is the number of units in each pool for the 3-wide cores used in
// the paper (both OoO and InO share the same width and FU mix so that issue
// schedules transfer directly between them).
var FUCount = [NumFUs]int{
	FUIntALU:    2,
	FUIntMulDiv: 1,
	FUFP:        1,
	FUMem:       2,
}

// Machine-wide pipeline constants (Table 2 of the paper).
const (
	// IssueWidth is the superscalar width of both core types.
	IssueWidth = 3
	// OoOPipelineDepth is the OoO front-end depth; it sets the branch
	// misprediction penalty on the OoO core.
	OoOPipelineDepth = 12
	// InOPipelineDepth is the InO front-end depth.
	InOPipelineDepth = 8
	// ROBSize is the OoO reorder-buffer capacity.
	ROBSize = 128
	// OoOIntPRF and OoOFPPRF are the OoO physical register file sizes.
	OoOIntPRF = 128
	OoOFPPRF  = 256
	// OinOPRFEntries is the expanded OinO register file (4 versions per AR).
	OinOPRFEntries = 128
	// OinOMaxVersions caps live renamed versions per architectural register
	// in OinO mode; schedules needing more are not memoizable.
	OinOMaxVersions = 4
	// OinOLSQSize is the replay LSQ added for OinO mode.
	OinOLSQSize = 32
)

// InstBytes is the encoded size of one instruction; used to size schedules
// in the Schedule Cache.
const InstBytes = 4
