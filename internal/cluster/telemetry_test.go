package cluster

import (
	"strings"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/telemetry"
)

// runInstrumented executes a small Mirage cluster with full telemetry.
func runInstrumented(t *testing.T) (*telemetry.Telemetry, *Result) {
	t.Helper()
	tel := telemetry.New()
	cfg := small(apps("bzip2", "hmmer", "milc"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cfg.Telemetry = tel
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tel, res
}

func TestTelemetryEndToEnd(t *testing.T) {
	tel, res := runInstrumented(t)

	m := tel.Export()
	// Per-core pipeline stall and measurement counters exist and moved.
	var sawStall, sawMeasure bool
	for name, v := range m.Counters {
		if strings.Contains(name, ".stall_") && v > 0 {
			sawStall = true
		}
		if strings.HasSuffix(name, ".measures") && v > 0 {
			sawMeasure = true
		}
	}
	if !sawMeasure {
		t.Error("no core measurement counters moved")
	}
	if !sawStall {
		t.Error("no stall-by-cause counters moved")
	}
	// Per-core SC counters: memoizing runs must record hits or misses.
	var scLookups int64
	for name, v := range m.Counters {
		if strings.HasSuffix(name, ".sc.hits") || strings.HasSuffix(name, ".sc.misses") {
			scLookups += v
		}
	}
	if scLookups == 0 {
		t.Error("no Schedule-Cache lookup counters moved")
	}
	// Arbitration decisions were recorded under the policy's name.
	var decisions int64
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "arbiter.SC-MPKI.") {
			decisions += v
		}
	}
	if decisions == 0 {
		t.Error("no arbitration decision counters moved")
	}
	// Cache gauges were registered and snapshotted.
	if _, ok := m.Gauges["core0.mem.l1d.accesses"]; !ok {
		t.Error("missing cache func gauges")
	}
	if _, ok := m.Gauges["cluster.wall_cycles"]; !ok {
		t.Error("missing end-of-run gauges")
	}

	// Interval time-series: one sample per interval, per-app entries, and
	// at least one post-warmup sample with an OoO owner.
	samples := m.Intervals
	if len(samples) == 0 {
		t.Fatal("no interval samples recorded")
	}
	var sawOwner, sawWarm, sawMeasured bool
	for _, s := range samples {
		if len(s.Apps) != 3 {
			t.Fatalf("sample %d has %d apps", s.Interval, len(s.Apps))
		}
		if s.Warmup {
			sawWarm = true
		} else {
			sawMeasured = true
		}
		if len(s.OoOOwners) > 0 {
			sawOwner = true
		}
	}
	if !sawWarm || !sawMeasured {
		t.Errorf("samples should span warmup and measurement (warm=%v measured=%v)", sawWarm, sawMeasured)
	}
	if !sawOwner {
		t.Error("no interval recorded an OoO owner")
	}
	if res.Migrations > 0 && tel.Reg().Counter("cluster.migrations").Value() == 0 {
		t.Error("migrations counter did not move")
	}

	// Trace sink: thread metadata, handoffs, tenures and per-core counters.
	phases := map[string]int{}
	names := map[string]int{}
	for _, ev := range tel.Sink().Events() {
		phases[ev.Ph]++
		names[ev.Name]++
	}
	if phases["M"] < 4 { // 3 core lanes + producer lane
		t.Errorf("thread metadata events = %d", phases["M"])
	}
	if names["handoff"] == 0 || phases["X"] == 0 {
		t.Errorf("missing handoff/tenure events: %v", names)
	}
	if phases["C"] == 0 {
		t.Error("missing per-core counter track events")
	}
}

func TestTelemetryDisabledIsInert(t *testing.T) {
	cfg := small(apps("bzip2", "hmmer"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cl.tel != nil {
		t.Fatal("telemetry attached without config")
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	// Instrumented and uninstrumented runs of the same config must produce
	// identical results: observation must not change the system.
	run := func(tel *telemetry.Telemetry) *Result {
		cfg := small(apps("bzip2", "hmmer", "astar"))
		cfg.HasOoO = true
		cfg.Memoize = true
		cfg.Arbiter = arbiter.NewSCMPKI()
		cfg.Telemetry = tel
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	instrumented := run(telemetry.New())
	if plain.WallCycles != instrumented.WallCycles ||
		plain.Migrations != instrumented.Migrations ||
		plain.Intervals != instrumented.Intervals {
		t.Errorf("telemetry perturbed the run: %+v vs %+v", plain, instrumented)
	}
	for i := range plain.Apps {
		if plain.Apps[i].IPC != instrumented.Apps[i].IPC {
			t.Errorf("app %d IPC differs: %v vs %v", i, plain.Apps[i].IPC, instrumented.Apps[i].IPC)
		}
	}
}
