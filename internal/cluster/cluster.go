// Package cluster simulates a Mirage Cores cluster (Figure 4): n InO cores
// around one producer OoO, all sharing a coherent bus to the L2 level. The
// simulation is interval-driven: every application runs on its current core
// for one arbitration interval, counters are collected, the arbitrator
// decides who occupies the OoO next, and migrations pay their pipeline,
// L1-warmup and Schedule-Cache-transfer costs over the bus.
//
// The same machinery also models the paper's baselines: a homogeneous OoO
// CMP, a homogeneous InO CMP, and a traditional (non-memoizing) Het-CMP.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/arbiter"
	"repro/internal/energy"
	"repro/internal/ino"
	"repro/internal/invariant"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/program"
	"repro/internal/schedcache"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Config describes one cluster run.
type Config struct {
	// Apps are the benchmarks to run, one per InO core (or per OoO core in
	// an all-OoO configuration).
	Apps []*program.Benchmark

	// HasOoO adds the producer OoO core.
	HasOoO bool
	// NumOoO is the number of OoO cores (default 1). More than one is only
	// supported on traditional (non-memoizing) Het-CMPs — Kumar-style
	// configurations like the 5:3 CMP of Figure 14. Mirage keeps a single
	// schedule producer per cluster.
	NumOoO int
	// AllOoO runs every application on a private OoO core (the Homo-OoO
	// baseline); HasOoO/Memoize are ignored.
	AllOoO bool
	// Memoize enables the Mirage machinery (OinO mode + Schedule Caches);
	// false models a traditional Het-CMP.
	Memoize bool

	// Arbiter decides OoO occupancy each interval (nil: OoO stays idle).
	Arbiter arbiter.Arbiter

	// IntervalCycles is the arbitration interval (the paper's 1M cycles;
	// scaled down by default to keep runs fast — see DESIGN.md §2).
	IntervalCycles int64
	// TargetInsts is the per-application instruction budget; applications
	// finishing early restart until all complete (Section 4.1).
	TargetInsts int64
	// MaxIntervals bounds the run as a safety net.
	MaxIntervals int
	// WarmupIntervals run before measurement starts: caches and Schedule
	// Caches fill and the arbitrator reaches steady rotation, then all
	// counters reset. Stands in for the billions of instructions that
	// amortize cold-start in the paper's runs. Defaults to 3 intervals per
	// application for arbitrated topologies.
	WarmupIntervals int
	// NoWarmup disables the warmup default (timeline experiments that want
	// cold-start visible).
	NoWarmup bool
	// PingPongEvery forces every application to switch between two
	// dedicated identical cores every N intervals (Figure 3b's setup:
	// "two applications on three identical cores, with one application
	// switching between two of them"). Both cores belong to the app, so
	// its L1 contents survive across visits; the cost is the pipeline
	// drain and state transfer. 0 disables.
	PingPongEvery int

	// BroadcastSC enables the multithreaded extension of Section 6: when
	// the workload's threads perform homogeneous work (the same program on
	// every core), one memoization pass on the OoO serves the whole
	// cluster — the producer SC is broadcast to every consumer SC on
	// eviction, speeding up all threads with one memoization attempt. The
	// unidirectional broadcast pays one bus transfer per consumer.
	BroadcastSC bool

	// SCCapacityBytes sizes the Schedule Caches (8 KB default).
	SCCapacityBytes int
	// SCTransferCycles is the bus cost of shipping SC contents on migration
	// (~1000 cycles for 8 KB over the 32 B bus, Section 4.2).
	SCTransferCycles int64
	// DrainCycles is the pipeline drain/architectural state transfer cost.
	DrainCycles int64
	// BusContentionShare is the fraction of a migration's bus occupancy
	// that delays each co-running application (the bus serializes all
	// off-core communication, Section 3.3.3; the paper measured the effect
	// to be slight). Defaults to 0.1.
	BusContentionShare float64

	// Seed names the deterministic random stream for this run. Every random
	// decision the cluster makes derives from this name via internal/xrand,
	// and a Cluster holds no state shared with other instances, so two runs
	// with equal Configs produce identical Results even when simulated on
	// concurrent goroutines — the property the parallel experiment engine
	// (internal/runner, DESIGN.md §8) is built on.
	Seed string

	// Telemetry, when non-nil, receives the run's metrics (per-core stall,
	// SC and migration counters), the per-interval arbitration time-series
	// and schedule-handoff/replay/squash trace events. Nil (the default)
	// disables all instrumentation at near-zero cost.
	Telemetry *telemetry.Telemetry

	// Audit, when non-nil, threads invariant checks through the whole run
	// (DESIGN.md §11): every pipeline measurement, every arbitration
	// decision, OoO occupancy, and end-of-run energy-accounting closure.
	// Violations are recorded on the Auditor; the run itself proceeds.
	Audit *invariant.Auditor
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.IntervalCycles <= 0 {
		c.IntervalCycles = 100_000
	}
	if c.TargetInsts <= 0 {
		c.TargetInsts = 3_000_000
	}
	if c.MaxIntervals <= 0 {
		c.MaxIntervals = 10_000
	}
	if c.SCCapacityBytes <= 0 {
		c.SCCapacityBytes = schedcache.DefaultCapacityBytes
	}
	if c.SCTransferCycles <= 0 {
		c.SCTransferCycles = 1000
	}
	if c.NumOoO <= 0 {
		c.NumOoO = 1
	}
	if c.DrainCycles <= 0 {
		c.DrainCycles = 100
	}
	if c.BusContentionShare == 0 {
		c.BusContentionShare = 0.1
	}
	if c.Seed == "" {
		c.Seed = "cluster"
	}
	return c
}

// IntervalStat is one application's record of one interval (timelines for
// Figures 5 and 10).
type IntervalStat struct {
	OnOoO       bool
	IPC         float64
	SCMPKI      float64
	DeltaSCMPKI float64
	Insts       int64
}

// AppResult is the per-application outcome of a run.
type AppResult struct {
	Name string
	// Insts and Cycles cover execution up to TargetInsts completion.
	Insts  int64
	Cycles int64
	IPC    float64
	// OoOCycles is time spent occupying the producer OoO.
	OoOCycles int64
	// MemoizedInsts counts instructions executed as OinO schedule replays.
	MemoizedInsts int64
	// Migrations counts moves onto the OoO.
	Migrations int
	// SCTransferCycles and L1RefillCycles are this app's accumulated
	// migration costs (Figure 15).
	SCTransferCycles int64
	L1RefillCycles   int64
	// EnergyPJ is the application's total core energy, by structure.
	EnergyPJ energy.Breakdown
	// Timeline holds per-interval stats.
	Timeline []IntervalStat
	// SquashedIters counts OinO replay misspeculations.
	SquashedIters int64
}

// Result is the outcome of a cluster run.
type Result struct {
	Apps []AppResult
	// WallCycles is when the last application completed its target.
	WallCycles int64
	// RunCycles is the total simulated (post-warmup) time: measured
	// intervals times the interval length. The denominator for OoO
	// utilization.
	RunCycles int64
	// OoOActiveCycles counts intervals (in cycles) the OoO was occupied.
	OoOActiveCycles int64
	// TotalEnergyPJ includes active core energy plus idle leakage of
	// powered-on cores (the OoO power-gates when idle).
	TotalEnergyPJ float64
	// BusTransferCycles accumulates migration traffic (SC + state).
	BusTransferCycles int64
	// SCTransferCyclesTotal and L1RefillCyclesEst split migration cost for
	// Figure 15.
	SCTransferCyclesTotal int64
	L1RefillCyclesEst     int64
	Migrations            int
	Intervals             int
}

// app is the runtime state of one application.
type app struct {
	idx   int
	bench *program.Benchmark
	mem   *mem.Hierarchy
	sc    *schedcache.Cache // consumer SC contents (travels with the app)
	inoC  *ino.Core
	oooC  *ooo.Core
	rng   *xrand.Rand

	walkers map[trace.ID][]*mem.Walker

	instsRetired int64
	cycles       int64 // local cycles consumed (== wall, apps run in lockstep intervals)
	completedAt  int64

	onOoO   bool
	penalty int64 // cycles charged at the start of the next interval

	// Cost cache: steady per-iteration measurements per trace and mode.
	costs map[costKey]*measurement

	// Arbitration stats.
	ipcOoO            float64
	scMPKIOoO         float64
	haveOoOStats      bool
	intervalsSinceOoO int
	lastIPCInO        float64

	// Fairness accounting (Eq 3).
	oooCycles     int64
	memoCreditCyc float64
	migrations    int
	memoizedInsts int64
	squashedIters int64
	scXferCycles  int64
	l1Refills     int64
	energyPJ      energy.Breakdown
	// done freezes the app's counters when it first reaches its instruction
	// target; restarted execution (Section 4.1) keeps the cluster contended
	// but must not distort per-app comparisons.
	done          *appSnapshot
	timeline      []IntervalStat
	lastDeltaMPKI float64
	lastSCMPKIInO float64
}

// appSnapshot captures an app's counters at target completion.
type appSnapshot struct {
	energy        energy.Breakdown
	oooCycles     int64
	memoizedInsts int64
	squashedIters int64
	migrations    int
	scXferCycles  int64
	l1Refills     int64
}

type mode uint8

const (
	modeInO mode = iota
	modeOinO
	modeOoO
)

type costKey struct {
	id trace.ID
	m  mode
}

type measurement struct {
	cyclesPerIter float64
	perIterEnergy energy.Breakdown
	sched         *trace.Schedule
	squashRate    float64
	// coldIters counts down iterations executed under the initial (cold
	// cache) measurement before a warm re-measurement replaces it.
	coldIters int
}

// Cluster is a configured simulation ready to run.
type Cluster struct {
	cfg  Config
	apps []*app

	producerSC *schedcache.Cache
	recorder   *ooo.Recorder
	oooOwners  []int // app indexes occupying the OoO cores (empty: gated)
	rng        *xrand.Rand

	// tel holds the resolved telemetry instruments (nil when disabled);
	// wallNow is the simulated wall clock fed to trace-event timestamps.
	tel     *clusterTel
	wallNow int64
}

// New builds a cluster. It returns an error for unusable configurations.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("cluster: no applications")
	}
	for i, b := range cfg.Apps {
		if b == nil {
			return nil, fmt.Errorf("cluster: nil benchmark at %d", i)
		}
	}
	if cfg.NumOoO > 1 && cfg.Memoize {
		return nil, fmt.Errorf("cluster: Mirage uses a single schedule producer (NumOoO=%d with Memoize)", cfg.NumOoO)
	}
	root := xrand.NewString("cluster:" + cfg.Seed)
	c := &Cluster{cfg: cfg, rng: root.Fork("arb")}
	if cfg.HasOoO && !cfg.AllOoO {
		c.producerSC = schedcache.New(cfg.SCCapacityBytes)
		c.recorder = ooo.NewRecorder(root.Fork("rec"))
	}
	for i, b := range cfg.Apps {
		h := mem.NewHierarchy()
		ar := root.Fork(fmt.Sprintf("app%d:%s", i, b.Name))
		a := &app{
			idx:     i,
			bench:   b,
			mem:     h,
			inoC:    ino.New(h, ar.Fork("ino")),
			oooC:    ooo.New(h, ar.Fork("ooo")),
			rng:     ar,
			walkers: make(map[trace.ID][]*mem.Walker),
			costs:   make(map[costKey]*measurement),
		}
		if cfg.Memoize {
			a.sc = schedcache.New(cfg.SCCapacityBytes)
		}
		if cfg.Audit != nil {
			a.inoC.AttachAudit(cfg.Audit, fmt.Sprintf("%s/app%d.ino", cfg.Seed, i))
			a.oooC.AttachAudit(cfg.Audit, fmt.Sprintf("%s/app%d.ooo", cfg.Seed, i))
		}
		c.apps = append(c.apps, a)
	}
	c.attachTelemetry()
	return c, nil
}

// Run executes the simulation to completion and returns the result.
func (c *Cluster) Run() (*Result, error) {
	res := &Result{}
	warm := c.cfg.WarmupIntervals
	if warm == 0 && !c.cfg.NoWarmup {
		if c.cfg.HasOoO && !c.cfg.AllOoO {
			// Long enough for the arbitration rotation to visit everyone.
			warm = 3 * len(c.apps)
		} else {
			// Homogeneous CMPs only need cache warmup.
			warm = 4
		}
	}
	interval := 0
	for ; interval < c.cfg.MaxIntervals+warm; interval++ {
		c.wallNow = int64(interval) * c.cfg.IntervalCycles
		c.runInterval(interval, res)
		c.wallNow += c.cfg.IntervalCycles
		c.flushInterval(interval, interval < warm)
		if interval == warm-1 {
			c.resetCounters(res)
			continue
		}
		if interval >= warm && c.allDone() {
			break
		}
		if c.cfg.HasOoO && !c.cfg.AllOoO && c.cfg.Arbiter != nil {
			c.arbitrate(interval, res)
		}
		if p := c.cfg.PingPongEvery; p > 0 && (interval+1)%p == 0 {
			for _, a := range c.apps {
				a.penalty += c.cfg.DrainCycles
				res.Migrations++
			}
		}
	}
	res.Intervals = interval + 1 - warm
	res.RunCycles = int64(res.Intervals) * c.cfg.IntervalCycles
	c.finalize(res)
	return res, nil
}

// resetCounters zeroes measurement state after warmup while preserving
// microarchitectural state (caches, Schedule Caches, arbitration history).
func (c *Cluster) resetCounters(res *Result) {
	for _, a := range c.apps {
		a.instsRetired = 0
		a.cycles = 0
		a.completedAt = 0
		a.done = nil
		a.oooCycles = 0
		a.memoCreditCyc = 0
		a.migrations = 0
		a.memoizedInsts = 0
		a.squashedIters = 0
		a.scXferCycles = 0
		a.l1Refills = 0
		a.energyPJ = energy.Breakdown{}
		a.timeline = nil
	}
	c.tel.resetAppDeltas()
	*res = Result{}
}

func (c *Cluster) allDone() bool {
	for _, a := range c.apps {
		if a.completedAt == 0 {
			return false
		}
	}
	return true
}

// runInterval advances every application by one interval.
func (c *Cluster) runInterval(interval int, res *Result) {
	for i, a := range c.apps {
		onOoO := c.cfg.AllOoO || (a.onOoO && c.cfg.HasOoO)
		budget := c.cfg.IntervalCycles - a.penalty
		a.penalty = 0
		if budget < 0 {
			budget = 0
		}
		st := c.runApp(a, onOoO, budget)
		st.OnOoO = onOoO
		a.timeline = append(a.timeline, st)
		a.cycles += c.cfg.IntervalCycles
		if onOoO && !c.cfg.AllOoO {
			a.oooCycles += c.cfg.IntervalCycles
			res.OoOActiveCycles += c.cfg.IntervalCycles / int64(c.cfg.NumOoO)
			a.intervalsSinceOoO = 0
		} else {
			a.intervalsSinceOoO++
		}
		if a.completedAt == 0 && a.instsRetired >= c.cfg.TargetInsts {
			// runApp records the exact crossing cycle in completedAt when it
			// happens mid-interval; fall back to the interval boundary.
			a.completedAt = a.cycles
			a.snapshotDone()
		}
		_ = i
	}
}

func (a *app) snapshotDone() {
	a.done = &appSnapshot{
		energy:        a.energyPJ,
		oooCycles:     a.oooCycles,
		memoizedInsts: a.memoizedInsts,
		squashedIters: a.squashedIters,
		migrations:    a.migrations,
		scXferCycles:  a.scXferCycles,
		l1Refills:     a.l1Refills,
	}
}

// runApp executes one application for `budget` cycles on its current core.
func (c *Cluster) runApp(a *app, onOoO bool, budget int64) IntervalStat {
	st := IntervalStat{}
	if budget == 0 {
		return st
	}
	var cycles float64
	var insts int64
	var scMisses, scExecs, scInsts int64

	phaseIdx := a.bench.PhaseAt(a.instsRetired)
	phase := &a.bench.Phases[phaseIdx]
	weights := loopWeights(phase)

	for cycles < float64(budget) {
		// Phase change mid-interval?
		if p := a.bench.PhaseAt(a.instsRetired); p != phaseIdx {
			phaseIdx = p
			phase = &a.bench.Phases[phaseIdx]
			weights = loopWeights(phase)
		}
		l := &phase.Loops[a.rng.Pick(weights)]
		t := l.Trace

		m := modeInO
		var sched *trace.Schedule
		switch {
		case onOoO:
			m = modeOoO
		case c.cfg.Memoize && a.sc != nil:
			if s, ok := a.lookupSC(t); ok {
				m = modeOinO
				sched = s
			}
		}

		ms := c.measure(a, l, m, sched)
		if ms.cyclesPerIter <= 0 {
			ms.cyclesPerIter = 1
		}

		// Burst: enough iterations for ~2000 cycles, capped by the budget.
		iters := int(2000.0/ms.cyclesPerIter) + 1
		if rem := float64(budget) - cycles; float64(iters)*ms.cyclesPerIter > rem {
			iters = int(rem/ms.cyclesPerIter) + 1
		}
		if ms.coldIters > 0 {
			if iters > ms.coldIters {
				iters = ms.coldIters
			}
			ms.coldIters -= iters
			if ms.coldIters <= 0 {
				// Warm now: re-measure on next use.
				delete(a.costs, costKey{t.ID, m})
			}
		}

		n := int64(iters) * int64(t.Len())
		cycles += float64(iters) * ms.cyclesPerIter
		insts += n
		a.instsRetired += n
		if a.completedAt == 0 && a.instsRetired >= c.cfg.TargetInsts {
			// Exact completion point within the interval (a.cycles still
			// holds the interval-start wall time here).
			a.completedAt = a.cycles + int64(cycles) + (c.cfg.IntervalCycles - budget)
			a.snapshotDone()
		}
		for s := energy.Structure(0); s < energy.NumStructures; s++ {
			a.energyPJ[s] += ms.perIterEnergy[s] * float64(iters)
		}

		switch m {
		case modeOinO:
			a.memoizedInsts += n
			a.memoCreditCyc += float64(iters) * ms.cyclesPerIter * c.replaySpeedup(a, ms)
			a.squashedIters += int64(float64(iters)*ms.squashRate + 0.5)
			scExecs += int64(iters)
			scInsts += n
		case modeInO:
			if c.cfg.Memoize && a.sc != nil {
				scExecs += int64(iters)
				scInsts += n
				scMisses += int64(iters)
			}
		case modeOoO:
			c.produce(a, l, ms, iters)
		}
	}

	st.Insts = insts
	if budget > 0 {
		st.IPC = float64(insts) / float64(budget)
	}
	if scInsts > 0 {
		st.SCMPKI = float64(scMisses) * 1000 / float64(scInsts)
	}

	// Update arbitration state.
	if onOoO {
		a.ipcOoO = st.IPC
		a.haveOoOStats = true
		if c.cfg.Memoize {
			a.scMPKIOoO = c.memoizabilityMPKI(a, phase)
		}
	} else {
		a.lastIPCInO = st.IPC
		a.lastSCMPKIInO = st.SCMPKI
	}
	den := a.scMPKIOoO
	if !a.haveOoOStats {
		den = 1
	}
	if den < 0.05 {
		den = 0.05
	}
	st.DeltaSCMPKI = (st.SCMPKI - den) / den
	a.lastDeltaMPKI = st.DeltaSCMPKI
	return st
}

// lookupSC consults the app's SC for a trace (hit statistics are kept by
// the caller in batch form; this checks contents only).
func (a *app) lookupSC(t *trace.Trace) (*trace.Schedule, bool) {
	if s, ok := a.sc.Lookup(t.ID, 0); ok && s.Replayable() {
		return s, true
	}
	return nil, false
}

// replaySpeedup estimates the Eq 3 speedup credit of memoized execution.
func (c *Cluster) replaySpeedup(a *app, ms *measurement) float64 {
	if a.ipcOoO <= 0 || ms.cyclesPerIter <= 0 {
		return 1
	}
	// speedup = IPC_replay / IPC_OoO, capped at 1.
	// (Eq 2's speedup, using this trace's replay IPC.)
	ipcReplay := 1.0 / ms.cyclesPerIter // per-inst scale cancels in the cap
	_ = ipcReplay
	sp := a.lastIPCInO / a.ipcOoO
	if sp > 1 {
		sp = 1
	}
	if sp <= 0 {
		sp = 0.9
	}
	return sp
}

// produce runs the memoization hardware while the app occupies the OoO:
// the recorder observes executions and inserts confident schedules into the
// producer SC.
func (c *Cluster) produce(a *app, l *program.Loop, ms *measurement, iters int) {
	if !c.cfg.Memoize || c.recorder == nil || ms.sched == nil {
		return
	}
	if c.producerSC.Contains(l.Trace.ID) {
		return
	}
	// The recorder needs a few consecutive matching executions; model up to
	// `iters` observations (bounded — confidence saturates quickly).
	obs := iters
	if obs > 8 {
		obs = 8
	}
	for k := 0; k < obs; k++ {
		if c.recorder.Observe(l.Trace, ms.sched, ms.sched.RecordedCycles) {
			if err := c.producerSC.Insert(ms.sched); err == nil {
				break
			}
		}
	}
}

// memoizabilityMPKI computes SC-MPKI_OoO: the extent of memoizability of
// the current phase as seen at the end of a memoize interval — traces the
// producer could not memoize miss in the SC.
func (c *Cluster) memoizabilityMPKI(a *app, phase *program.Phase) float64 {
	var missW, instW float64
	for _, l := range phase.Loops {
		w := l.Weight
		instW += w * float64(l.Trace.Len())
		if !c.producerSC.Contains(l.Trace.ID) {
			missW += w
		}
	}
	if instW == 0 {
		return 0
	}
	return missW * 1000 / instW
}

// measure returns (computing if needed) the steady per-iteration cost of a
// trace in the given mode, using genuine pipeline simulation.
func (c *Cluster) measure(a *app, l *program.Loop, m mode, sched *trace.Schedule) *measurement {
	key := costKey{l.Trace.ID, m}
	if ms, ok := a.costs[key]; ok {
		return ms
	}
	ws := a.walkersFor(l.Trace)
	ms := &measurement{}
	const iters = 10
	switch m {
	case modeOoO:
		r := a.oooC.MeasureTrace(l.Trace, l.Deps, ws, iters)
		ms.cyclesPerIter = r.CyclesPerIter
		ms.sched = r.Schedule
		ms.perIterEnergy = scaleBreakdown(energy.Compute(energy.KindOoO, r.Events), iters)
	case modeOinO:
		r := a.inoC.MeasureReplay(l.Trace, l.Deps, sched, ws, iters)
		// Trace selection is biased against unprofitable schedules
		// (Section 3.3.2): if replay measures slower than plain in-order
		// execution under current cache conditions, the core abandons the
		// schedule and fetches program order from the L1I instead.
		plain := a.inoC.MeasureTrace(l.Trace, l.Deps, ws, iters)
		if plain.CyclesPerIter < r.CyclesPerIter {
			a.sc.MarkUnmemoizable(l.Trace.ID)
			ms.cyclesPerIter = plain.CyclesPerIter
			ms.perIterEnergy = scaleBreakdown(energy.Compute(energy.KindInO, plain.Events), iters)
			break
		}
		ms.cyclesPerIter = r.CyclesPerIter
		ms.squashRate = r.SquashRate
		ms.perIterEnergy = scaleBreakdown(energy.Compute(energy.KindOinO, r.Events), iters)
	default:
		r := a.inoC.MeasureTrace(l.Trace, l.Deps, ws, iters)
		ms.cyclesPerIter = r.CyclesPerIter
		ms.perIterEnergy = scaleBreakdown(energy.Compute(energy.KindInO, r.Events), iters)
	}
	if aud := c.cfg.Audit; aud != nil {
		aud.Checkf(!math.IsNaN(ms.cyclesPerIter) && !math.IsInf(ms.cyclesPerIter, 0) && ms.cyclesPerIter >= 0,
			"cluster.measure", c.cfg.Seed,
			"trace %d mode %d: cycles/iter %v", l.Trace.ID, m, ms.cyclesPerIter)
		aud.Checkf(ms.perIterEnergy.Valid(), "energy.breakdown", c.cfg.Seed,
			"trace %d mode %d: non-finite or negative per-iteration energy component", l.Trace.ID, m)
	}
	// First measurement after a migration/new trace runs with cold caches;
	// keep it for a warmup window, then re-measure warm.
	ms.coldIters = 48
	a.costs[key] = ms
	if c.tel != nil {
		c.tel.measureEvent(a, m, ms, c.wallNow)
	}
	return ms
}

func scaleBreakdown(b energy.Breakdown, iters int) energy.Breakdown {
	var out energy.Breakdown
	for i := range b {
		out[i] = b[i] / float64(iters)
	}
	return out
}

func (a *app) walkersFor(t *trace.Trace) []*mem.Walker {
	if ws, ok := a.walkers[t.ID]; ok {
		return ws
	}
	ws := make([]*mem.Walker, len(t.Streams))
	for i, s := range t.Streams {
		ws[i] = mem.NewWalker(s, a.rng.Fork(fmt.Sprintf("w%d-%d", t.ID, i)))
	}
	a.walkers[t.ID] = ws
	return ws
}

func loopWeights(p *program.Phase) []float64 {
	ws := make([]float64, len(p.Loops))
	for i := range p.Loops {
		ws[i] = p.Loops[i].Weight
	}
	return ws
}

// arbitrate applies the policy at an interval boundary and performs the
// resulting migration.
func (c *Cluster) arbitrate(interval int, res *Result) {
	states := make([]arbiter.AppState, len(c.apps))
	for i, a := range c.apps {
		util := 0.0
		if a.cycles > 0 {
			util = (float64(a.oooCycles) + a.memoCreditCyc) / float64(a.cycles)
		}
		states[i] = arbiter.AppState{
			Index:             i,
			OnOoO:             a.onOoO,
			IPCInO:            a.lastIPCInO,
			IPCOoO:            a.ipcOoO,
			SCMPKIInO:         a.lastSCMPKIInO,
			SCMPKIOoO:         a.scMPKIOoO,
			HaveOoOStats:      a.haveOoOStats,
			IntervalsSinceOoO: a.intervalsSinceOoO,
			Util:              util,
		}
	}
	// Fill up to NumOoO slots by repeatedly asking the policy, excluding
	// apps already granted a slot this boundary.
	var picks []int
	remaining := states
	for slot := 0; slot < c.cfg.NumOoO && len(remaining) > 0; slot++ {
		pick := c.cfg.Arbiter.Decide(remaining, interval)
		c.cfg.Audit.Checkf(arbiter.ValidDecision(remaining, pick), "arbiter.decision",
			c.cfg.Seed, "interval %d slot %d: %s returned %d, not an offered app index",
			interval, slot, c.cfg.Arbiter.Name(), pick)
		if pick == arbiter.None || pick < 0 || pick >= len(c.apps) {
			break
		}
		picks = append(picks, pick)
		filtered := remaining[:0:0]
		for _, s := range remaining {
			if s.Index != pick {
				filtered = append(filtered, s)
			}
		}
		remaining = filtered
	}

	c.tel.onDecision(picks)
	picked := make(map[int]bool, len(picks))
	for _, p := range picks {
		picked[p] = true
	}
	// Evict owners that lost their slot.
	var kept []int
	for _, owner := range c.oooOwners {
		if picked[owner] {
			kept = append(kept, owner)
			delete(picked, owner) // already seated; no move needed
		} else {
			c.evictFromOoO(c.apps[owner], res)
		}
	}
	c.oooOwners = kept
	for _, p := range picks {
		if picked[p] {
			c.moveToOoO(c.apps[p], res)
			c.oooOwners = append(c.oooOwners, p)
		}
	}
	if c.cfg.Audit != nil {
		c.auditOccupancy(interval)
	}
}

// auditOccupancy checks the post-arbitration seating invariants: at most
// NumOoO distinct occupants, and the owner list consistent with every app's
// onOoO flag — a divergence here double-bills OoO cycles and Eq 3 credit.
func (c *Cluster) auditOccupancy(interval int) {
	aud := c.cfg.Audit
	aud.Checkf(len(c.oooOwners) <= c.cfg.NumOoO, "cluster.ooo_occupancy", c.cfg.Seed,
		"interval %d: %d OoO occupants, capacity %d", interval, len(c.oooOwners), c.cfg.NumOoO)
	seen := make(map[int]bool, len(c.oooOwners))
	for _, o := range c.oooOwners {
		if !aud.Checkf(o >= 0 && o < len(c.apps), "cluster.ooo_occupancy", c.cfg.Seed,
			"interval %d: owner index %d out of range", interval, o) {
			continue
		}
		aud.Checkf(!seen[o], "cluster.ooo_occupancy", c.cfg.Seed,
			"interval %d: app %d seated on two OoO slots", interval, o)
		seen[o] = true
	}
	for i, a := range c.apps {
		aud.Checkf(a.onOoO == seen[i], "cluster.ooo_occupancy", c.cfg.Seed,
			"interval %d: app %d onOoO=%v but owner=%v", interval, i, a.onOoO, seen[i])
	}
}

// evictFromOoO returns an app to its InO core, shipping the producer SC
// contents with it over the bus.
func (c *Cluster) evictFromOoO(a *app, res *Result) {
	a.onOoO = false
	var scCost int64
	if c.cfg.Memoize && a.sc != nil {
		moved := a.sc.CopyFrom(c.producerSC)
		if moved > 0 {
			scCost = c.cfg.SCTransferCycles
		}
		if c.cfg.BroadcastSC && moved > 0 {
			// Homogeneous threads (Section 6): every consumer receives the
			// schedules over the unidirectional broadcast path. Receivers
			// pay the transfer latency; the departing app already does.
			for _, peer := range c.apps {
				if peer == a || peer.sc == nil {
					continue
				}
				if peer.sc.CopyFrom(c.producerSC) > 0 {
					peer.penalty += c.cfg.SCTransferCycles
					peer.scXferCycles += c.cfg.SCTransferCycles
					res.SCTransferCyclesTotal += c.cfg.SCTransferCycles
					res.BusTransferCycles += c.cfg.SCTransferCycles
					// Stale per-trace measurements: new schedules available.
					peer.costs = make(map[costKey]*measurement)
				}
			}
		}
	}
	refill := c.estimateL1Refill(a)
	a.penalty += c.cfg.DrainCycles + scCost
	a.scXferCycles += scCost
	a.l1Refills += refill
	res.BusTransferCycles += c.cfg.DrainCycles + scCost
	res.SCTransferCyclesTotal += scCost
	res.L1RefillCyclesEst += refill
	c.chargeBusContention(a, c.cfg.DrainCycles+scCost)
	c.tel.onEvict(a, c.wallNow, c.cfg.IntervalCycles)
	c.tel.onMigrationCost(c.cfg.DrainCycles, scCost)
	a.migrate()
}

// chargeBusContention delays every co-running application by a share of a
// bus transfer's occupancy (the bus serializes all off-core traffic).
func (c *Cluster) chargeBusContention(mover *app, transfer int64) {
	delay := int64(float64(transfer) * c.cfg.BusContentionShare)
	if delay <= 0 {
		return
	}
	for _, peer := range c.apps {
		if peer != mover {
			peer.penalty += delay
		}
	}
}

// moveToOoO moves an app onto the producer core.
func (c *Cluster) moveToOoO(a *app, res *Result) {
	a.onOoO = true
	a.migrations++
	res.Migrations++
	refill := c.estimateL1Refill(a)
	a.penalty += c.cfg.DrainCycles
	a.l1Refills += refill
	res.BusTransferCycles += c.cfg.DrainCycles
	res.L1RefillCyclesEst += refill
	c.chargeBusContention(a, c.cfg.DrainCycles)
	c.tel.onGrant(a, c.wallNow)
	c.tel.onMigrationCost(c.cfg.DrainCycles, 0)
	if c.cfg.Memoize && c.producerSC != nil {
		// The producer starts fresh for the new application.
		c.producerSC.Flush()
		c.recorder.Reset()
	}
	a.migrate()
}

// migrate applies the core-switch state effects: cold L1s, invalidated
// steady-state measurements.
func (a *app) migrate() {
	a.mem.FlushL1s()
	a.costs = make(map[costKey]*measurement)
}

// estimateL1Refill estimates the cold-start refill cost the app will absorb
// (reported for Figure 15; the real cost is paid implicitly through cold
// cache re-measurement).
func (c *Cluster) estimateL1Refill(a *app) int64 {
	occ := int64(a.mem.L1D.Occupancy() + a.mem.L1I.Occupancy())
	return occ * mem.L2Latency / 4 // overlapping refills
}

// finalize computes aggregate energy and per-app results.
func (c *Cluster) finalize(res *Result) {
	var wall int64
	for _, a := range c.apps {
		if a.completedAt > wall {
			wall = a.completedAt
		}
		if a.completedAt == 0 && a.cycles > wall {
			wall = a.cycles
		}
	}
	res.WallCycles = wall

	var total float64
	for _, a := range c.apps {
		ar := AppResult{
			Name:             a.bench.Name,
			Insts:            a.instsRetired,
			Cycles:           a.cycles,
			OoOCycles:        a.oooCycles,
			MemoizedInsts:    a.memoizedInsts,
			Migrations:       a.migrations,
			SCTransferCycles: a.scXferCycles,
			L1RefillCycles:   a.l1Refills,
			EnergyPJ:         a.energyPJ,
			Timeline:         a.timeline,
			SquashedIters:    a.squashedIters,
		}
		oooCyc := a.oooCycles
		// Energy and IPC are reported over the app's completion window:
		// TargetInsts instructions, however long they took.
		if a.completedAt > 0 {
			ar.Insts = c.cfg.TargetInsts
			ar.Cycles = a.completedAt
			ar.IPC = float64(c.cfg.TargetInsts) / float64(a.completedAt)
			if a.done != nil {
				ar.EnergyPJ = a.done.energy
				ar.MemoizedInsts = a.done.memoizedInsts
				ar.SquashedIters = a.done.squashedIters
				ar.Migrations = a.done.migrations
				ar.SCTransferCycles = a.done.scXferCycles
				ar.L1RefillCycles = a.done.l1Refills
				oooCyc = a.done.oooCycles
				// ar.OoOCycles keeps the full-run value: OoO time *share*
				// is a property of the whole run (Figure 12), while energy
				// freezes at completion.
			}
		} else if a.cycles > 0 {
			ar.IPC = float64(a.instsRetired) / float64(a.cycles)
		}
		res.Apps = append(res.Apps, ar)
		total += ar.EnergyPJ.Total()
		// Idle InO leakage while the app occupied the OoO (its home core
		// waits powered on).
		if !c.cfg.AllOoO && c.cfg.HasOoO {
			total += energy.IdleLeakagePJ(energy.KindInO, uint64(oooCyc)) * 0.3
		}
	}
	// The OoO's idle time is power-gated: zero cost (Section 4.2).
	res.TotalEnergyPJ = total
	if c.cfg.Audit != nil {
		c.auditFinalize(res)
	}
	c.finalizeTelemetry(res)
}

// auditFinalize checks end-of-run accounting closure: every per-app
// breakdown well-formed, the cluster total equal to the sum of per-app
// component totals plus idle leakage, and OoO active time within the run
// window. A drift here means energy was dropped or double-counted somewhere
// between measure() and the report — exactly the class of bug Figure 9b
// would silently absorb.
func (c *Cluster) auditFinalize(res *Result) {
	aud := c.cfg.Audit
	var want float64
	for i, ar := range res.Apps {
		aud.Checkf(ar.EnergyPJ.Valid(), "energy.breakdown", ar.Name,
			"non-finite or negative component in final breakdown")
		want += ar.EnergyPJ.Total()
		if !c.cfg.AllOoO && c.cfg.HasOoO {
			a := c.apps[i]
			oooCyc := a.oooCycles
			if a.completedAt > 0 && a.done != nil {
				oooCyc = a.done.oooCycles
			}
			want += energy.IdleLeakagePJ(energy.KindInO, uint64(oooCyc)) * 0.3
		}
	}
	diff := res.TotalEnergyPJ - want
	if diff < 0 {
		diff = -diff
	}
	tol := 1e-9 * want
	if tol < 1e-9 {
		tol = 1e-9
	}
	aud.Checkf(diff <= tol, "energy.closure", c.cfg.Seed,
		"TotalEnergyPJ %v != per-app component sum %v (diff %v)", res.TotalEnergyPJ, want, diff)
	if !c.cfg.AllOoO {
		aud.Checkf(res.OoOActiveCycles >= 0 && res.OoOActiveCycles <= res.RunCycles,
			"cluster.ooo_occupancy", c.cfg.Seed,
			"OoO active %d cycles outside run window %d", res.OoOActiveCycles, res.RunCycles)
	}
}
