package cluster

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/program"
)

// small returns a Config sized for fast integration tests.
func small(apps []*program.Benchmark) Config {
	return Config{
		Apps:           apps,
		TargetInsts:    300_000,
		IntervalCycles: 20_000,
		Seed:           "cluster-test",
	}
}

func apps(names ...string) []*program.Benchmark {
	out := make([]*program.Benchmark, len(names))
	for i, n := range names {
		b := program.ByName(n)
		if b == nil {
			panic("unknown benchmark " + n)
		}
		out[i] = b
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty app list accepted")
	}
	if _, err := New(Config{Apps: []*program.Benchmark{nil}}); err == nil {
		t.Error("nil benchmark accepted")
	}
	if _, err := New(Config{Apps: apps("bzip2"), NumOoO: 2, Memoize: true, HasOoO: true}); err == nil {
		t.Error("multi-OoO Mirage accepted (single producer only)")
	}
}

func TestHomoInORunsToCompletion(t *testing.T) {
	cfg := small(apps("bzip2", "namd"))
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.Insts < cfg.TargetInsts {
			t.Errorf("%s retired %d instructions, target %d", a.Name, a.Insts, cfg.TargetInsts)
		}
		if a.IPC <= 0 || a.IPC > 3 {
			t.Errorf("%s IPC %v out of range", a.Name, a.IPC)
		}
		if a.EnergyPJ.Total() <= 0 {
			t.Errorf("%s consumed no energy", a.Name)
		}
		if a.OoOCycles != 0 || a.Migrations != 0 {
			t.Errorf("%s touched the (absent) OoO", a.Name)
		}
	}
	if res.OoOActiveCycles != 0 {
		t.Error("Homo-InO reported OoO activity")
	}
	if res.RunCycles <= 0 || res.WallCycles <= 0 {
		t.Error("run accounting missing")
	}
}

func TestAllOoOFasterThanAllInO(t *testing.T) {
	mix := apps("hmmer", "milc")
	ino, _ := New(small(mix))
	ri, err := ino.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfgO := small(mix)
	cfgO.AllOoO = true
	ooo, _ := New(cfgO)
	ro, err := ooo.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ri.Apps {
		if ro.Apps[i].IPC <= ri.Apps[i].IPC {
			t.Errorf("%s: OoO IPC %v should beat InO IPC %v",
				ri.Apps[i].Name, ro.Apps[i].IPC, ri.Apps[i].IPC)
		}
	}
}

func TestMirageMemoizesAndMigrates(t *testing.T) {
	cfg := small(apps("hmmer", "bzip2", "gcc"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cfg.TargetInsts = 600_000
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var memoized, migrations int64
	for _, a := range res.Apps {
		memoized += a.MemoizedInsts
		migrations += int64(a.Migrations)
	}
	if memoized == 0 {
		t.Error("no instructions were memoized on a memoizable mix")
	}
	if migrations == 0 {
		t.Error("no migrations occurred")
	}
	if res.BusTransferCycles == 0 {
		t.Error("migrations generated no bus traffic")
	}
}

func TestMigrationChargesSCTransfer(t *testing.T) {
	cfg := small(apps("hmmer", "bzip2", "gcc"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewFair() // forces constant migration
	cfg.TargetInsts = 400_000
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SCTransferCyclesTotal == 0 {
		t.Error("SC transfers cost nothing under constant migration")
	}
	if res.Migrations == 0 {
		t.Error("fair arbitration produced no migrations")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := small(apps("bzip2", "astar"))
		cfg.HasOoO = true
		cfg.Memoize = true
		cfg.Arbiter = arbiter.NewSCMPKI()
		cl, _ := New(cfg)
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Apps {
		if a.Apps[i].IPC != b.Apps[i].IPC || a.Apps[i].Cycles != b.Apps[i].Cycles {
			t.Errorf("run not deterministic for %s: %v/%v vs %v/%v",
				a.Apps[i].Name, a.Apps[i].IPC, a.Apps[i].Cycles, b.Apps[i].IPC, b.Apps[i].Cycles)
		}
	}
	if a.TotalEnergyPJ != b.TotalEnergyPJ {
		t.Errorf("energy not deterministic: %v vs %v", a.TotalEnergyPJ, b.TotalEnergyPJ)
	}
}

func TestTimelineRecorded(t *testing.T) {
	cfg := small(apps("bzip2", "gcc"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if len(a.Timeline) == 0 {
			t.Fatalf("%s has no timeline", a.Name)
		}
		for _, iv := range a.Timeline {
			if iv.IPC < 0 || iv.IPC > 3.5 {
				t.Errorf("%s interval IPC %v out of range", a.Name, iv.IPC)
			}
		}
	}
}

func TestPingPongCostsPerformance(t *testing.T) {
	mix := apps("bzip2")
	base, _ := New(small(mix))
	rb, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := small(mix)
	cfg.PingPongEvery = 1
	cfg.DrainCycles = 2000 // exaggerated to make the loss visible at 20k-cycle intervals
	moved, _ := New(cfg)
	rm, err := moved.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Apps[0].IPC >= rb.Apps[0].IPC {
		t.Errorf("ping-pong IPC %v should be below stable IPC %v", rm.Apps[0].IPC, rb.Apps[0].IPC)
	}
}

func TestTraditionalHetNoMemoization(t *testing.T) {
	cfg := small(apps("hmmer", "bzip2"))
	cfg.HasOoO = true
	cfg.Memoize = false
	cfg.Arbiter = arbiter.NewMaxSTP()
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.MemoizedInsts != 0 {
			t.Errorf("%s memoized %d instructions on a traditional Het-CMP", a.Name, a.MemoizedInsts)
		}
	}
	if res.OoOActiveCycles == 0 {
		t.Error("maxSTP left the OoO idle")
	}
}

func TestMultiOoOTraditional(t *testing.T) {
	cfg := small(apps("hmmer", "bzip2", "gcc", "astar", "milc"))
	cfg.HasOoO = true
	cfg.NumOoO = 3
	cfg.Arbiter = arbiter.NewMaxSTP()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 3 OoO slots, several apps run there each interval.
	onOoO := 0
	for _, a := range res.Apps {
		if a.OoOCycles > 0 {
			onOoO++
		}
	}
	if onOoO < 3 {
		t.Errorf("only %d apps ever reached the 3 OoO cores", onOoO)
	}
	// Utilization normalizes per OoO core: it must stay <= ~1.
	util := float64(res.OoOActiveCycles) / float64(res.RunCycles)
	if util > 1.01 {
		t.Errorf("per-core OoO utilization %v exceeds 1", util)
	}
}

func TestCompletionSnapshotFreezesEnergy(t *testing.T) {
	cfg := small(apps("hmmer", "astar"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Apps {
		// The snapshot covers exactly TargetInsts of work; live counters
		// kept running afterward.
		if a.Insts != cfg.TargetInsts {
			t.Errorf("app %d reported %d insts, want the target %d", i, a.Insts, cfg.TargetInsts)
		}
		live := cl.apps[i].energyPJ.Total()
		if a.EnergyPJ.Total() > live {
			t.Errorf("snapshot energy %v exceeds live accumulator %v", a.EnergyPJ.Total(), live)
		}
	}
}

func TestBroadcastSCFillsAllConsumers(t *testing.T) {
	// Eight homogeneous "threads": with broadcast, one producer visit fills
	// every consumer's SC, so threads that never visit the OoO still replay.
	threads := make([]*program.Benchmark, 4)
	for i := range threads {
		threads[i] = program.ByName("bzip2")
	}
	cfg := small(threads)
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.BroadcastSC = true
	cfg.Arbiter = arbiter.NewSCMPKI()
	cfg.TargetInsts = 500_000
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	replaying := 0
	for _, a := range res.Apps {
		if a.MemoizedInsts > 0 {
			replaying++
		}
	}
	if replaying < len(threads) {
		t.Errorf("only %d/%d homogeneous threads replayed schedules under broadcast",
			replaying, len(threads))
	}
	// Broadcast transfers ride the bus: more SC traffic than migrations
	// alone would explain.
	if res.SCTransferCyclesTotal < cfg.SCTransferCycles*2 {
		t.Errorf("broadcast generated almost no SC bus traffic (%d cycles)", res.SCTransferCyclesTotal)
	}
}

func TestSoftwareArbitrationRuns(t *testing.T) {
	cfg := small(apps("bzip2", "gcc", "hmmer"))
	cfg.HasOoO = true
	cfg.Memoize = true
	cfg.Arbiter = arbiter.NewSoftware(arbiter.NewSCMPKI(), 8)
	cl, _ := New(cfg)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.IPC <= 0 {
			t.Errorf("%s made no progress under software arbitration", a.Name)
		}
	}
}

func TestBusContentionDelaysCoRunners(t *testing.T) {
	// A constantly-migrating mix under heavy transfer costs must slow the
	// co-running application relative to a contention-free bus.
	run := func(share float64) float64 {
		cfg := small(apps("hmmer", "namd", "bzip2"))
		cfg.HasOoO = true
		cfg.Memoize = true
		cfg.Arbiter = arbiter.NewFair()
		cfg.SCTransferCycles = 4000
		cfg.BusContentionShare = share
		cl, _ := New(cfg)
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range res.Apps {
			sum += a.IPC
		}
		return sum
	}
	free := run(-1) // negative disables (delay rounds to <= 0)
	contended := run(0.5)
	if contended >= free {
		t.Errorf("bus contention did not cost throughput: %v vs %v", contended, free)
	}
}
