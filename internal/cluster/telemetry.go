package cluster

import (
	"fmt"

	"repro/internal/ino"
	"repro/internal/telemetry"
)

// clusterTel holds the cluster's resolved telemetry instruments. It is nil
// when Config.Telemetry is nil/disabled, so the hot path pays one nil check.
// Individual instruments may still be nil (e.g. a Telemetry with only a
// trace sink); their methods are nil-safe no-ops.
type clusterTel struct {
	t *telemetry.Telemetry

	// Arbitration-boundary decisions (counter names carry the policy).
	grants     *telemetry.Counter
	powerDowns *telemetry.Counter
	evictions  *telemetry.Counter
	migrations *telemetry.Counter

	// Migration costs.
	scXferCycles *telemetry.Counter
	drainCycles  *telemetry.Counter

	// tenureHist is the distribution of OoO tenure lengths (intervals);
	// squashHist the distribution of per-interval squash penalties (cycles).
	tenureHist *telemetry.Histogram
	squashHist *telemetry.Histogram

	// oooOwner tracks the current OoO occupant (-1: power-gated).
	oooOwner *telemetry.Gauge

	apps []appTel

	// grantedAt[i] is the wall cycle app i was granted the OoO (-1: off).
	grantedAt []int64
	// oooTid is the trace-sink lane for producer-core events.
	oooTid int
}

// appTel is one application's instruments plus the previous cumulative
// values used to flush per-interval deltas.
type appTel struct {
	insts         *telemetry.Counter
	memoizedInsts *telemetry.Counter
	squashedIters *telemetry.Counter
	oooIntervals  *telemetry.Counter

	prevMemoized int64
	prevSquashed int64
}

// attachTelemetry resolves every instrument and hooks the component layers
// (cores, memory hierarchies, Schedule Caches) into the registry.
func (c *Cluster) attachTelemetry() {
	tel := c.cfg.Telemetry
	if !tel.Enabled() {
		return
	}
	reg := tel.Reg()
	pol := "none"
	if c.cfg.Arbiter != nil {
		pol = c.cfg.Arbiter.Name()
	}
	ct := &clusterTel{
		t:            tel,
		grants:       reg.Counter("arbiter." + pol + ".grants"),
		powerDowns:   reg.Counter("arbiter." + pol + ".power_downs"),
		evictions:    reg.Counter("arbiter." + pol + ".evictions"),
		migrations:   reg.Counter("cluster.migrations"),
		scXferCycles: reg.Counter("cluster.sc_transfer_cycles"),
		drainCycles:  reg.Counter("cluster.drain_cycles"),
		tenureHist:   reg.Histogram("arbiter.tenure_intervals"),
		squashHist:   reg.Histogram("cluster.squash_penalty_cycles"),
		oooOwner:     reg.Gauge("cluster.ooo_owner"),
		apps:         make([]appTel, len(c.apps)),
		grantedAt:    make([]int64, len(c.apps)),
		oooTid:       len(c.apps),
	}
	sink := tel.Sink()
	for i, a := range c.apps {
		prefix := fmt.Sprintf("core%d", i)
		at := &ct.apps[i]
		at.insts = reg.Counter(prefix + ".insts")
		at.memoizedInsts = reg.Counter(prefix + ".memoized_insts")
		at.squashedIters = reg.Counter(prefix + ".squashed_iters")
		at.oooIntervals = reg.Counter(prefix + ".ooo_intervals")
		a.inoC.AttachTelemetry(reg, prefix+".ino")
		a.oooC.AttachTelemetry(reg, prefix+".ooo")
		a.mem.RegisterTelemetry(reg, prefix+".mem")
		if a.sc != nil {
			a.sc.AttachTelemetry(reg, prefix+".sc")
		}
		ct.grantedAt[i] = -1
		sink.NameThread(i, fmt.Sprintf("core%d:%s", i, a.bench.Name))
	}
	if c.producerSC != nil {
		c.producerSC.AttachTelemetry(reg, "producer.sc")
	}
	if c.cfg.HasOoO && !c.cfg.AllOoO {
		sink.NameThread(ct.oooTid, "OoO producer")
	}
	ct.oooOwner.Set(-1)
	c.tel = ct
}

// modeName labels an execution mode for trace events.
func modeName(m mode) string {
	switch m {
	case modeOoO:
		return "OoO"
	case modeOinO:
		return "OinO"
	}
	return "InO"
}

// measureEvent records one genuine pipeline measurement (cache-cold or warm
// re-measurement) as an instant event on the app's lane.
func (ct *clusterTel) measureEvent(a *app, m mode, ms *measurement, ts int64) {
	ct.t.Sink().Instant("measure:"+modeName(m), "measure", ts, a.idx, map[string]any{
		"cycles_per_iter": ms.cyclesPerIter,
	})
}

// flushInterval records the interval time-series sample, flushes per-app
// counter deltas and emits the per-core IPC/SC-MPKI counter tracks. Called
// at every interval boundary, warmup included (samples carry a warmup mark).
func (c *Cluster) flushInterval(interval int, warmup bool) {
	ct := c.tel
	if ct == nil {
		return
	}
	ts := c.wallNow
	sink := ct.t.Sink()
	smp := telemetry.IntervalSample{Run: c.cfg.Seed, Interval: interval, Warmup: warmup}
	if c.cfg.HasOoO && !c.cfg.AllOoO && len(c.oooOwners) > 0 {
		smp.OoOOwners = append([]int(nil), c.oooOwners...)
	}
	for i := range c.apps {
		a := c.apps[i]
		at := &ct.apps[i]
		if len(a.timeline) == 0 {
			continue
		}
		st := a.timeline[len(a.timeline)-1]
		at.insts.Add(st.Insts)
		if d := a.memoizedInsts - at.prevMemoized; d > 0 {
			at.memoizedInsts.Add(d)
		}
		at.prevMemoized = a.memoizedInsts
		if d := a.squashedIters - at.prevSquashed; d > 0 {
			at.squashedIters.Add(d)
			ct.squashHist.Observe(d * int64(ino.SquashRefillCycles))
			sink.Instant("squash", "replay", ts, i, map[string]any{"iters": d})
		}
		at.prevSquashed = a.squashedIters
		if st.OnOoO {
			at.oooIntervals.Inc()
		}
		smp.Apps = append(smp.Apps, telemetry.AppSample{
			App:    i,
			Name:   a.bench.Name,
			OnOoO:  st.OnOoO,
			IPC:    st.IPC,
			SCMPKI: st.SCMPKI,
			Insts:  st.Insts,
		})
		sink.Count(fmt.Sprintf("core%d", i), ts, i, map[string]any{
			"ipc":     st.IPC,
			"sc_mpki": st.SCMPKI,
		})
	}
	ct.t.Samp().Record(smp)
}

// resetAppDeltas re-bases per-interval delta tracking after the post-warmup
// counter reset zeroes the apps' cumulative fields.
func (ct *clusterTel) resetAppDeltas() {
	if ct == nil {
		return
	}
	for i := range ct.apps {
		ct.apps[i].prevMemoized = 0
		ct.apps[i].prevSquashed = 0
	}
}

// onDecision records one arbitration-boundary outcome.
func (ct *clusterTel) onDecision(picks []int) {
	if ct == nil {
		return
	}
	if len(picks) == 0 {
		ct.powerDowns.Inc()
		ct.oooOwner.Set(-1)
		return
	}
	ct.grants.Add(int64(len(picks)))
	ct.oooOwner.Set(float64(picks[0]))
}

// onGrant marks the start of an app's OoO tenure and emits the
// schedule-handoff instant on the producer lane.
func (ct *clusterTel) onGrant(a *app, ts int64) {
	if ct == nil {
		return
	}
	ct.migrations.Inc()
	ct.grantedAt[a.idx] = ts
	ct.t.Sink().Instant("handoff", "arbitration", ts, ct.oooTid, map[string]any{
		"app": a.idx, "name": a.bench.Name,
	})
}

// onEvict closes an app's OoO tenure: a complete event spanning the tenure
// on the producer lane plus the tenure-length histogram observation.
func (ct *clusterTel) onEvict(a *app, ts int64, intervalCycles int64) {
	if ct == nil {
		return
	}
	ct.evictions.Inc()
	start := ct.grantedAt[a.idx]
	ct.grantedAt[a.idx] = -1
	if start < 0 {
		return
	}
	dur := ts - start
	ct.t.Sink().Complete("tenure:"+a.bench.Name, "arbitration", start, dur, ct.oooTid,
		map[string]any{"app": a.idx})
	if intervalCycles > 0 {
		ct.tenureHist.Observe(dur / intervalCycles)
	}
}

// onMigrationCost accumulates a migration's bus costs.
func (ct *clusterTel) onMigrationCost(drain, scXfer int64) {
	if ct == nil {
		return
	}
	ct.drainCycles.Add(drain)
	ct.scXferCycles.Add(scXfer)
}

// finalizeTelemetry closes still-open tenures and publishes end-of-run
// result gauges.
func (c *Cluster) finalizeTelemetry(res *Result) {
	ct := c.tel
	if ct == nil {
		return
	}
	for _, owner := range c.oooOwners {
		ct.onEvict(c.apps[owner], c.wallNow, c.cfg.IntervalCycles)
	}
	reg := ct.t.Reg()
	reg.Gauge("cluster.wall_cycles").Set(float64(res.WallCycles))
	reg.Gauge("cluster.run_cycles").Set(float64(res.RunCycles))
	reg.Gauge("cluster.ooo_active_cycles").Set(float64(res.OoOActiveCycles))
	reg.Gauge("cluster.total_energy_pj").Set(res.TotalEnergyPJ)
	reg.Gauge("cluster.bus_transfer_cycles").Set(float64(res.BusTransferCycles))
	for i, ar := range res.Apps {
		reg.Gauge(fmt.Sprintf("core%d.ipc", i)).Set(ar.IPC)
	}
}
