// Package schedcache implements the 8 KB Schedule Cache (SC) of Section
// 3.3.2: trace-cache-style storage for memoized schedules with End-of-Trace
// markers, an eviction policy that throws out traces deemed unmemoizable
// before falling back to LRU, and the SC-MPKI counters the arbitrator polls.
// Writes are expensive (traces are compacted to avoid fragmentation), so
// producers insert conservatively; the cost shows up in the energy model.
package schedcache

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultCapacityBytes is the paper's empirically chosen SC size.
const DefaultCapacityBytes = 8 << 10

// Cache is one core's Schedule Cache.
type Cache struct {
	capBytes  int
	usedBytes int
	entries   map[trace.ID]*entry
	tick      uint64

	stats Stats
	tel   *telCounters
}

// telCounters mirrors Stats into a telemetry registry when attached.
type telCounters struct {
	hits, misses, inserts, evictions, bytesWritten *telemetry.Counter
}

type entry struct {
	sched        *trace.Schedule
	size         int
	lastUse      uint64
	unmemoizable bool
}

// Stats holds the counters behind the SC-MPKI metric: fetch hits/misses are
// counted per trace execution, instructions per instruction executed while
// the SC was consulted.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Instructions uint64
	Inserts      uint64
	Evictions    uint64
	BytesWritten uint64
}

// MPKI returns Schedule-Cache misses per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(s.Instructions)
}

// New builds an SC with the given capacity (DefaultCapacityBytes if <= 0).
func New(capBytes int) *Cache {
	if capBytes <= 0 {
		capBytes = DefaultCapacityBytes
	}
	return &Cache{
		capBytes: capBytes,
		entries:  make(map[trace.ID]*entry),
	}
}

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int { return c.capBytes }

// UsedBytes returns current occupancy (what a migration must transfer).
func (c *Cache) UsedBytes() int { return c.usedBytes }

// Len returns the number of resident schedules.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes counters without disturbing contents; the arbitrator
// does this at every interval boundary so MPKI reflects the last interval.
// Attached telemetry counters keep accumulating — they track run totals.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AttachTelemetry resolves run-total hit/miss/insert/evict counters in reg
// under prefix (e.g. "core0.sc"). Unlike Stats, the counters survive
// ResetStats, so they report whole-run totals. A nil registry detaches.
func (c *Cache) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		c.tel = nil
		return
	}
	c.tel = &telCounters{
		hits:         reg.Counter(prefix + ".hits"),
		misses:       reg.Counter(prefix + ".misses"),
		inserts:      reg.Counter(prefix + ".inserts"),
		evictions:    reg.Counter(prefix + ".evictions"),
		bytesWritten: reg.Counter(prefix + ".bytes_written"),
	}
}

// Lookup consults the SC for a trace about to execute `insts` instructions.
// On a hit it returns the memoized schedule; on a miss the core falls back
// to fetching program-order instructions from its L1I.
func (c *Cache) Lookup(id trace.ID, insts int) (*trace.Schedule, bool) {
	c.tick++
	c.stats.Instructions += uint64(insts)
	e, ok := c.entries[id]
	if !ok || e.unmemoizable {
		c.stats.Misses++
		if c.tel != nil {
			c.tel.misses.Inc()
		}
		return nil, false
	}
	e.lastUse = c.tick
	c.stats.Hits++
	if c.tel != nil {
		c.tel.hits.Inc()
	}
	return e.sched, true
}

// Contains reports residency without touching counters.
func (c *Cache) Contains(id trace.ID) bool {
	e, ok := c.entries[id]
	return ok && !e.unmemoizable
}

// Insert stores a schedule, evicting as needed. It returns an error only if
// the schedule can never fit (bigger than the whole SC).
func (c *Cache) Insert(s *trace.Schedule) error {
	size := s.SizeBytes()
	if size > c.capBytes {
		return fmt.Errorf("schedcache: schedule for trace %d (%d B) exceeds capacity %d B",
			s.TraceID, size, c.capBytes)
	}
	if old, ok := c.entries[s.TraceID]; ok {
		c.usedBytes -= old.size
		delete(c.entries, s.TraceID)
	}
	for c.usedBytes+size > c.capBytes {
		c.evictOne()
	}
	c.tick++
	c.entries[s.TraceID] = &entry{sched: s, size: size, lastUse: c.tick}
	c.usedBytes += size
	c.stats.Inserts++
	c.stats.BytesWritten += uint64(size)
	if c.tel != nil {
		c.tel.inserts.Inc()
		c.tel.bytesWritten.Add(int64(size))
	}
	return nil
}

// MarkUnmemoizable flags a resident trace as stale/unprofitable; such
// entries are evicted first (the paper's eviction policy).
func (c *Cache) MarkUnmemoizable(id trace.ID) {
	if e, ok := c.entries[id]; ok {
		e.unmemoizable = true
	}
}

// evictOne removes the best victim: unmemoizable entries first, then LRU.
func (c *Cache) evictOne() {
	var victim trace.ID
	var ve *entry
	for id, e := range c.entries {
		switch {
		case ve == nil,
			e.unmemoizable && !ve.unmemoizable,
			e.unmemoizable == ve.unmemoizable && e.lastUse < ve.lastUse:
			victim, ve = id, e
		}
	}
	if ve == nil {
		return
	}
	c.usedBytes -= ve.size
	delete(c.entries, victim)
	c.stats.Evictions++
	if c.tel != nil {
		c.tel.evictions.Inc()
	}
}

// Flush empties the SC (application migrated away; its successor gets a
// fresh transfer).
func (c *Cache) Flush() {
	c.entries = make(map[trace.ID]*entry)
	c.usedBytes = 0
}

// CopyFrom replaces this SC's contents with src's — the SC transfer that
// rides the coherent bus when an application migrates from the producer OoO
// to a consumer InO. The returned byte count sizes the bus transfer.
func (c *Cache) CopyFrom(src *Cache) int {
	c.Flush()
	moved := 0
	for id, e := range src.entries {
		if e.unmemoizable {
			continue
		}
		cp := *e
		c.tick++
		cp.lastUse = c.tick
		c.entries[id] = &cp
		c.usedBytes += e.size
		moved += e.size
	}
	return moved
}

// IDs returns the resident trace IDs (diagnostics and tests).
func (c *Cache) IDs() []trace.ID {
	ids := make([]trace.ID, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	return ids
}
