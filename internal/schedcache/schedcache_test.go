package schedcache

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func sched(id trace.ID, insts int) *trace.Schedule {
	return &trace.Schedule{TraceID: id, Span: 1, Order: make([]uint16, insts)}
}

func TestInsertLookup(t *testing.T) {
	c := New(0)
	if c.Capacity() != DefaultCapacityBytes {
		t.Errorf("default capacity %d", c.Capacity())
	}
	s := sched(1, 50)
	if err := c.Insert(s); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(1, 50)
	if !ok || got != s {
		t.Error("inserted schedule not found")
	}
	if _, ok := c.Lookup(2, 50); ok {
		t.Error("phantom schedule found")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Instructions != 100 {
		t.Errorf("stats %+v", st)
	}
}

func TestMPKI(t *testing.T) {
	c := New(0)
	c.Insert(sched(1, 50))
	for i := 0; i < 9; i++ {
		c.Lookup(1, 50) // hits
	}
	c.Lookup(99, 50) // miss
	mpki := c.Stats().MPKI()
	want := 1.0 * 1000 / 500
	if mpki != want {
		t.Errorf("MPKI %v, want %v", mpki, want)
	}
	if (Stats{}).MPKI() != 0 {
		t.Error("empty stats MPKI should be 0")
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(1024)
	// Each 50-inst schedule is 220 B; five fit in 1024 B at most 4.
	for id := trace.ID(1); id <= 6; id++ {
		if err := c.Insert(sched(id, 50)); err != nil {
			t.Fatal(err)
		}
		if c.UsedBytes() > c.Capacity() {
			t.Fatalf("over capacity: %d > %d", c.UsedBytes(), c.Capacity())
		}
	}
	if c.Stats().Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := New(700) // fits three 220-byte schedules
	c.Insert(sched(1, 50))
	c.Insert(sched(2, 50))
	c.Insert(sched(3, 50))
	c.Lookup(1, 50) // touch 1; 2 is now LRU
	c.Insert(sched(4, 50))
	if c.Contains(2) {
		t.Error("LRU entry 2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Error("wrong victim evicted")
	}
}

func TestUnmemoizableEvictedFirst(t *testing.T) {
	c := New(700)
	c.Insert(sched(1, 50))
	c.Insert(sched(2, 50))
	c.Insert(sched(3, 50))
	c.Lookup(2, 50)
	c.Lookup(3, 50)
	c.MarkUnmemoizable(3) // newest use, but flagged
	c.Insert(sched(4, 50))
	if c.Contains(3) {
		t.Error("unmemoizable entry should be evicted before LRU entries")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("memoizable entries evicted ahead of an unmemoizable one")
	}
}

func TestUnmemoizableLookupMisses(t *testing.T) {
	c := New(0)
	c.Insert(sched(7, 50))
	c.MarkUnmemoizable(7)
	if _, ok := c.Lookup(7, 50); ok {
		t.Error("unmemoizable schedule served")
	}
}

func TestTooBigScheduleRejected(t *testing.T) {
	c := New(128)
	if err := c.Insert(sched(1, 500)); err == nil {
		t.Error("schedule larger than the SC accepted")
	}
}

func TestReinsertReplaces(t *testing.T) {
	c := New(0)
	c.Insert(sched(5, 50))
	used := c.UsedBytes()
	c.Insert(sched(5, 50))
	if c.UsedBytes() != used || c.Len() != 1 {
		t.Errorf("reinsert changed accounting: used %d len %d", c.UsedBytes(), c.Len())
	}
}

func TestFlush(t *testing.T) {
	c := New(0)
	c.Insert(sched(1, 50))
	c.Flush()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Error("flush left residue")
	}
}

func TestCopyFrom(t *testing.T) {
	src := New(0)
	src.Insert(sched(1, 50))
	src.Insert(sched(2, 30))
	src.MarkUnmemoizable(2)
	dst := New(0)
	dst.Insert(sched(9, 40)) // must be replaced wholesale
	moved := dst.CopyFrom(src)
	if !dst.Contains(1) {
		t.Error("transferred schedule missing")
	}
	if dst.Contains(2) {
		t.Error("unmemoizable schedule transferred")
	}
	if dst.Contains(9) {
		t.Error("stale destination contents survived transfer")
	}
	if moved != sched(1, 50).SizeBytes() {
		t.Errorf("moved %d bytes", moved)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(0)
	c.Insert(sched(1, 50))
	c.Lookup(1, 50)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats survive reset")
	}
	if !c.Contains(1) {
		t.Error("contents lost on stat reset")
	}
}

func TestIDs(t *testing.T) {
	c := New(0)
	c.Insert(sched(3, 10))
	c.Insert(sched(8, 10))
	ids := c.IDs()
	if len(ids) != 2 {
		t.Errorf("IDs() returned %v", ids)
	}
}

func TestUsedBytesInvariant(t *testing.T) {
	// Property: after arbitrary insert sequences, UsedBytes equals the sum
	// of resident schedule sizes and never exceeds capacity.
	err := quick.Check(func(lens []uint8) bool {
		c := New(2048)
		for i, l := range lens {
			n := int(l%60) + 1
			if err := c.Insert(sched(trace.ID(i), n)); err != nil {
				return false
			}
		}
		sum := 0
		for _, id := range c.IDs() {
			s, ok := c.Lookup(id, 0)
			if !ok {
				return false
			}
			sum += s.SizeBytes()
		}
		return sum == c.UsedBytes() && c.UsedBytes() <= c.Capacity()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
