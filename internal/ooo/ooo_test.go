package ooo

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// parallelTrace builds blocked independent mul chains plus a branch.
func parallelTrace(id trace.ID) *trace.Trace {
	t := &trace.Trace{ID: id, Stability: 0.95}
	for c := 0; c < 4; c++ {
		r := isa.Reg(1 + c)
		for k := 0; k < 8; k++ {
			t.Insts = append(t.Insts, isa.Inst{Op: isa.IntMul, Dst: r, Src1: r})
		}
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

func newCore(seed string) *Core {
	return New(mem.NewHierarchy(), xrand.NewString(seed))
}

func TestMeasureTraceBasics(t *testing.T) {
	tr := parallelTrace(100)
	c := newCore("mt")
	r := c.MeasureTrace(tr, trace.BuildDepGraph(tr), nil, 12)
	if r.CyclesPerIter <= 0 {
		t.Fatal("no cycles measured")
	}
	if r.IPC <= 0 || r.IPC > float64(isa.IssueWidth) {
		t.Errorf("IPC %v out of range", r.IPC)
	}
	if r.Events.Cycles == 0 || r.Events.MulDivOps == 0 {
		t.Errorf("events not counted: %+v", r.Events)
	}
}

func TestScheduleValidAndSpanned(t *testing.T) {
	tr := parallelTrace(101)
	c := newCore("sched")
	r := c.MeasureTrace(tr, trace.BuildDepGraph(tr), nil, 12)
	s := r.Schedule
	if s.Span != ScheduleSpan {
		t.Errorf("schedule span %d, want %d", s.Span, ScheduleSpan)
	}
	if err := s.Validate(len(tr.Insts)); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if s.ReorderedInsts == 0 {
		t.Error("blocked chains should be reordered by the OoO")
	}
	// MemOrder lists every memory op of the block in program order; this
	// trace has none.
	if len(s.MemOrder) != 0 {
		t.Errorf("MemOrder has %d entries for a memory-free trace", len(s.MemOrder))
	}
}

func TestMemOrderCoversBlockMemOps(t *testing.T) {
	tr := &trace.Trace{ID: 102, Stability: 0.9,
		Streams: []trace.StreamSpec{{WorkingSet: 4096, Stride: 8}},
		Insts: []isa.Inst{
			{Op: isa.Load, Dst: 1, Src1: isa.NoReg, MemStream: 0},
			{Op: isa.IntALU, Dst: 2, Src1: 1},
			{Op: isa.Store, Dst: isa.NoReg, Src1: 2, Src2: 1, MemStream: 0},
			{Op: isa.Branch, Dst: isa.NoReg, Src1: 2},
		}}
	c := newCore("memorder")
	ws := []*mem.Walker{mem.NewWalker(tr.Streams[0], xrand.New(5))}
	r := c.MeasureTrace(tr, trace.BuildDepGraph(tr), ws, 12)
	if want := 2 * ScheduleSpan; len(r.Schedule.MemOrder) != want {
		t.Errorf("MemOrder has %d entries, want %d (2 mem ops x span)", len(r.Schedule.MemOrder), want)
	}
}

func TestRecorderConfidence(t *testing.T) {
	rec := NewRecorder(xrand.New(1))
	tr := parallelTrace(103)
	tr.Stability = 1.0 // always matches
	s := &trace.Schedule{TraceID: tr.ID, Span: 1, Order: make([]uint16, len(tr.Insts)),
		MaxVersions: 1}
	for i := range s.Order {
		s.Order[i] = uint16(i)
	}
	fired := -1
	for i := 0; i < 10; i++ {
		if rec.Observe(tr, s, 20) {
			fired = i
			break
		}
	}
	// First call creates the entry; the threshold counts consecutive
	// matches after it.
	if fired != rec.ConfidenceThreshold {
		t.Errorf("recorder fired at observation %d, want %d", fired, rec.ConfidenceThreshold)
	}
	// It must not fire again for the same trace.
	for i := 0; i < 5; i++ {
		if rec.Observe(tr, s, 20) {
			t.Error("recorder re-fired for an already-confident trace")
		}
	}
}

func TestRecorderRejectsUnstable(t *testing.T) {
	rec := NewRecorder(xrand.New(2))
	tr := parallelTrace(104)
	tr.Stability = 0.0 // schedule never repeats
	s := &trace.Schedule{TraceID: tr.ID, Span: 1, Order: make([]uint16, len(tr.Insts)), MaxVersions: 1}
	for i := range s.Order {
		s.Order[i] = uint16(i)
	}
	for i := 0; i < 50; i++ {
		if rec.Observe(tr, s, 20) {
			t.Fatal("unstable trace memoized")
		}
	}
}

func TestRecorderRejectsMisspeculators(t *testing.T) {
	rec := NewRecorder(xrand.New(3))
	s := &trace.Schedule{TraceID: 105, Span: 1, Order: make([]uint16, 33), MaxVersions: 1}
	for i := range s.Order {
		s.Order[i] = uint16(i)
	}
	alias := parallelTrace(105)
	alias.Stability = 1
	alias.AliasRate = 0.5
	for i := 0; i < 10; i++ {
		if rec.Observe(alias, s, 20) {
			t.Fatal("high-alias trace memoized")
		}
	}
	if !rec.Unmemoizable(alias.ID) {
		t.Error("high-alias trace not marked unmemoizable")
	}

	misp := parallelTrace(106)
	misp.Stability = 1
	misp.MispredictRate = 0.5
	for i := 0; i < 10; i++ {
		if rec.Observe(misp, s, 20) {
			t.Fatal("high-mispredict trace memoized")
		}
	}
}

func TestRecorderRejectsNonReplayable(t *testing.T) {
	rec := NewRecorder(xrand.New(4))
	tr := parallelTrace(107)
	tr.Stability = 1
	s := &trace.Schedule{TraceID: tr.ID, Span: 1, Order: make([]uint16, len(tr.Insts)),
		MaxVersions: isa.OinOMaxVersions + 3}
	for i := 0; i < 10; i++ {
		if rec.Observe(tr, s, 20) {
			t.Fatal("version-limited schedule memoized")
		}
	}
}

func TestRecorderMetricMismatchResets(t *testing.T) {
	rec := NewRecorder(xrand.New(5))
	tr := parallelTrace(108)
	tr.Stability = 1
	s := &trace.Schedule{TraceID: tr.ID, Span: 1, Order: make([]uint16, len(tr.Insts)), MaxVersions: 1}
	for i := range s.Order {
		s.Order[i] = uint16(i)
	}
	rec.Observe(tr, s, 20)
	rec.Observe(tr, s, 20)
	rec.Observe(tr, s, 60) // wildly different cycles: confidence resets
	for i := 0; i < rec.ConfidenceThreshold-1; i++ {
		if rec.Observe(tr, s, 60) {
			t.Fatal("fired before rebuilt confidence")
		}
	}
	if !rec.Observe(tr, s, 60) {
		t.Error("did not fire after confidence was rebuilt")
	}
}

func TestRecorderTableEviction(t *testing.T) {
	rec := NewRecorder(xrand.New(6))
	rec.TableEntries = 4
	s := &trace.Schedule{Span: 1, Order: make([]uint16, 33), MaxVersions: 1}
	for id := trace.ID(0); id < 10; id++ {
		tr := parallelTrace(id)
		rec.Observe(tr, s, 20)
	}
	if got := len(rec.entries); got > 4 {
		t.Errorf("table holds %d entries, capacity 4", got)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(xrand.New(7))
	tr := parallelTrace(109)
	s := &trace.Schedule{TraceID: tr.ID, Span: 1, Order: make([]uint16, len(tr.Insts)), MaxVersions: 1}
	rec.Observe(tr, s, 20)
	rec.Reset()
	if len(rec.entries) != 0 || len(rec.order) != 0 {
		t.Error("reset left table entries")
	}
}

func TestMetricsMatch(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{20, 20, true},
		{20, 22, true},   // within 2 cycles
		{100, 104, true}, // within 5%
		{100, 120, false},
		{10, 30, false},
	}
	for _, c := range cases {
		if got := metricsMatch(c.a, c.b); got != c.want {
			t.Errorf("metricsMatch(%d, %d) = %v", c.a, c.b, got)
		}
	}
}

func TestDeterministicMeasurement(t *testing.T) {
	tr := parallelTrace(110)
	g := trace.BuildDepGraph(tr)
	r1 := newCore("det").MeasureTrace(tr, g, nil, 12)
	r2 := newCore("det").MeasureTrace(tr, g, nil, 12)
	if r1.CyclesPerIter != r2.CyclesPerIter {
		t.Errorf("measurement not deterministic: %v vs %v", r1.CyclesPerIter, r2.CyclesPerIter)
	}
}
