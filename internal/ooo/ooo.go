// Package ooo models the schedule-producing out-of-order core: a 3-wide,
// 12-stage, ROB-128 dataflow machine (Table 2). Beyond executing traces at
// full OoO performance, it implements the memoization hardware of Section
// 3.3.1: per-trace repeatability tables that compare execution metrics
// across iterations and, once a schedule repeats with high confidence,
// record it for the Schedule Cache.
package ooo

import (
	"repro/internal/energy"
	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Result summarizes one measured trace execution on the OoO.
type Result struct {
	// CyclesPerIter is the steady-state marginal cycles per trace iteration
	// (iterations overlap inside the ROB window).
	CyclesPerIter float64
	// IPC is instructions per cycle at steady state.
	IPC float64
	// Schedule is the issue schedule extracted from a steady iteration.
	Schedule *trace.Schedule
	// Events are the energy-model activity counts for the simulated span.
	Events energy.Events
}

// Core is one OoO core instance with its private memory hierarchy.
type Core struct {
	Mem *mem.Hierarchy
	rng *xrand.Rand
	tel *telemetry.CoreMetrics
	// eng is this core's private pipeline engine: measurement scratch is
	// reused across the millions of MeasureTrace calls a sweep makes, and
	// cores are built per worker, so ownership composes with -parallel.
	eng *pipeline.Engine

	aud      *invariant.Auditor
	audLabel string
}

// New builds an OoO core. The rng drives per-iteration stochastic events
// (branch mispredictions, schedule variation draws).
func New(h *mem.Hierarchy, rng *xrand.Rand) *Core {
	return &Core{Mem: h, rng: rng, eng: pipeline.NewEngine()}
}

// AttachTelemetry resolves this core's counters in reg under prefix (e.g.
// "core0.ooo"). A nil registry detaches instrumentation; detached is the
// default and costs nothing on the measurement path.
func (c *Core) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	c.tel = telemetry.NewCoreMetrics(reg, prefix)
}

// AttachAudit threads the invariant auditor (DESIGN.md §11) into every
// pipeline measurement this core makes; label locates violations (e.g.
// "core0.ooo"). Nil detaches — the default.
func (c *Core) AttachAudit(a *invariant.Auditor, label string) {
	c.aud = a
	c.audLabel = label
}

// MeasureIters is the default number of back-to-back iterations simulated
// per measurement; enough for the ROB to reach steady overlap and caches to
// settle, small enough to keep measurement cheap.
const MeasureIters = 8

// ScheduleSpan is how many consecutive iterations one memoized schedule
// covers. The OoO overlaps iterations inside its ROB; recording the issue
// order across a two-iteration block preserves that overlap so in-order
// replay can reproduce it (the trace remains one atomic replay unit).
const ScheduleSpan = 4

// MeasureTrace simulates iters consecutive iterations of t on the OoO and
// returns steady-state performance plus the schedule it would memoize.
// walkers supply the trace's memory address streams (one per stream spec).
func (c *Core) MeasureTrace(t *trace.Trace, deps *trace.DepGraph, walkers []*mem.Walker, iters int) Result {
	if iters <= 0 {
		iters = MeasureIters
	}
	loadLats, nLoads, nStores := c.resolveMemLats(t, walkers, iters)
	fetchGates := fetchStalls(c.Mem, t, iters)

	req := pipeline.Request{
		Trace:             t,
		Deps:              deps,
		Iterations:        iters,
		Policy:            pipeline.Dataflow,
		Width:             isa.IssueWidth,
		Window:            isa.ROBSize,
		ProbeSpan:         ScheduleSpan,
		MispredictPenalty: isa.OoOPipelineDepth,
		LoadLatency:       func(k int) int { return loadLats[k] },
		Mispredicts:       func(int) bool { return c.rng.Bool(t.MispredictRate) },
		FetchGate:         func(it int) int { return fetchGates[it] },
		Audit:             c.aud,
		AuditLabel:        c.audLabel,
	}
	res := c.eng.Run(req)
	if c.tel != nil {
		c.tel.Measures.Inc()
		c.tel.MeasuredCycles.Add(int64(res.Cycles))
		c.tel.StallData.Add(int64(res.StallDataCycles))
		c.tel.StallFU.Add(int64(res.StallFUCycles))
		c.tel.StallFetch.Add(int64(res.StallFetchCycles))
	}

	cpi := res.SteadyCyclesPerIter()
	sched := extractSchedule(t, &res)
	sched.RecordedCycles = int(cpi + 0.5)

	r := Result{
		CyclesPerIter: cpi,
		Schedule:      sched,
		Events:        c.countEvents(t, &res, iters, nLoads, nStores),
	}
	if cpi > 0 {
		r.IPC = float64(len(t.Insts)) / cpi
	}
	return r
}

// fetchStalls pre-computes the per-iteration instruction-fetch stall of a
// trace: zero once its code lines are L1I/ITLB resident, the warmup misses
// otherwise (post-migration cost).
func fetchStalls(h *mem.Hierarchy, t *trace.Trace, iters int) []int {
	gates := make([]int, iters)
	pc := uint64(t.ID) &^ 0x3f
	for it := range gates {
		gates[it] = h.FetchStall(pc, t.Len()*isa.InstBytes)
	}
	return gates
}

// memOp is one memory instruction of a trace with its walker resolved, so
// the per-iteration latency loop neither rescans non-memory instructions nor
// re-checks the stream bound per dynamic instruction.
type memOp struct {
	load   bool
	stream uint8
	w      *mem.Walker // nil when the stream index is out of range
}

// collectMemOps resolves a trace's memory instructions against its walkers
// once, in program order.
func collectMemOps(t *trace.Trace, walkers []*mem.Walker, buf []memOp) []memOp {
	for _, in := range t.Insts {
		switch in.Op {
		case isa.Load, isa.Store:
			op := memOp{load: in.Op == isa.Load, stream: in.MemStream}
			if int(in.MemStream) < len(walkers) {
				op.w = walkers[in.MemStream]
			}
			buf = append(buf, op)
		}
	}
	return buf
}

// resolveMemLats walks the trace's address streams through the hierarchy in
// program order, returning per-dynamic-load latencies.
func (c *Core) resolveMemLats(t *trace.Trace, walkers []*mem.Walker, iters int) (lats []int, nLoads, nStores int) {
	loads, stores := t.NumMemOps()
	nLoads = loads * iters
	nStores = stores * iters
	if loads == 0 && stores == 0 {
		return nil, 0, 0
	}
	ops := collectMemOps(t, walkers, make([]memOp, 0, loads+stores))
	lats = make([]int, 0, nLoads)
	for it := 0; it < iters; it++ {
		for _, op := range ops {
			switch {
			case op.load && op.w != nil:
				lats = append(lats, c.Mem.LoadLatency(op.stream, op.w.Next()))
			case op.load:
				lats = append(lats, mem.L1Latency)
			case op.w != nil:
				c.Mem.StoreAccess(op.stream, op.w.Next())
			}
		}
	}
	return lats, nLoads, nStores
}

func extractSchedule(t *trace.Trace, res *pipeline.Result) *trace.Schedule {
	order := make([]uint16, len(res.IssueOrder))
	copy(order, res.IssueOrder)
	s := &trace.Schedule{
		TraceID:        t.ID,
		Span:           len(order) / len(t.Insts),
		Order:          order,
		ReorderedInsts: res.Reordered,
		MaxVersions:    pipeline.MaxLiveVersions(t, order),
	}
	// MemOrder: schedule positions of the block's memory ops listed in
	// program order — the metadata block the OinO LSQ uses to rebuild
	// original sequence.
	pos := make([]uint16, len(order))
	for k, bp := range order {
		pos[bp] = uint16(k)
	}
	for bp := 0; bp < len(order); bp++ {
		if t.Insts[bp%len(t.Insts)].Op.IsMem() {
			s.MemOrder = append(s.MemOrder, pos[bp])
		}
	}
	return s
}

func (c *Core) countEvents(t *trace.Trace, res *pipeline.Result, iters, nLoads, nStores int) energy.Events {
	n := uint64(len(t.Insts)) * uint64(iters)
	var ev energy.Events
	ev.Cycles = uint64(res.Cycles)
	for _, in := range t.Insts {
		var cnt *uint64
		switch in.Op {
		case isa.IntALU, isa.Branch:
			cnt = &ev.IntOps
		case isa.IntMul, isa.IntDiv:
			cnt = &ev.MulDivOps
		case isa.FPAdd, isa.FPMul, isa.FPDiv:
			cnt = &ev.FPOps
		}
		if cnt != nil {
			*cnt += uint64(iters)
		}
		if in.Op == isa.Branch {
			ev.BPredLookups += uint64(iters)
		}
	}
	ev.Fetches = n
	ev.Decodes = n
	ev.RenameOps = n
	ev.ROBWrites = n
	ev.SchedOps = n // one wakeup/select event per issued instruction
	ev.PRFReads = 2 * n
	ev.PRFWrites = n * 3 / 4
	ev.CDBBcasts = n * 3 / 4
	ev.LQOps = uint64(nLoads)
	ev.SQOps = uint64(nStores)
	ev.L1DAccess = uint64(nLoads + nStores)
	ev.L1IAccess = n / 2 // fetch groups amortize I$ reads across width
	return ev
}

// Recorder is the memoization hardware of Section 3.3.1 (the ~0.3 kB of
// tables): it tracks, per trace, whether consecutive OoO executions produce
// matching schedules, and promotes a trace to "memoize" once it has repeated
// with enough confidence. It is deliberately conservative — the SC holds
// schedules across millions of instructions, so only high-confidence traces
// are stored (and traces that would misspeculate on replay are rejected).
type Recorder struct {
	// ConfidenceThreshold is how many consecutive matching executions are
	// required before a schedule is memoized.
	ConfidenceThreshold int
	// MaxAliasRate and MaxMispredictRate reject traces whose replay would
	// squash too often — OinO traces execute atomically, so both memory
	// aliases and branch mispredictions abort the whole trace (Section
	// 3.3.2: selection is heavily biased against misspeculating traces,
	// keeping the penalty near 0.3% of execution).
	MaxAliasRate      float64
	MaxMispredictRate float64
	// TableEntries bounds the hardware table size.
	TableEntries int

	entries map[trace.ID]*recEntry
	order   []trace.ID // FIFO for table eviction
	rng     *xrand.Rand
}

type recEntry struct {
	lastCycles   int
	confidence   int
	unmemoizable bool
}

// NewRecorder returns a Recorder with the paper's conservative defaults.
func NewRecorder(rng *xrand.Rand) *Recorder {
	return &Recorder{
		ConfidenceThreshold: 3,
		MaxAliasRate:        0.05,
		MaxMispredictRate:   0.15,
		TableEntries:        64,
		entries:             make(map[trace.ID]*recEntry),
		rng:                 rng,
	}
}

// Observe records one OoO execution of t with the measured per-iteration
// cycles. It returns true when the trace has just crossed the confidence
// threshold and its schedule should be written to the Schedule Cache.
//
// Two executions "match" when their metrics agree (we use recorded cycle
// counts, the paper's cheap proxy for cycle-by-cycle comparison) and the
// trace's inherent schedule stability draw succeeds.
func (r *Recorder) Observe(t *trace.Trace, sched *trace.Schedule, perIterCycles int) bool {
	e := r.entries[t.ID]
	if e == nil {
		if len(r.order) >= r.TableEntries {
			// FIFO-evict the oldest tracked trace.
			old := r.order[0]
			r.order = r.order[1:]
			delete(r.entries, old)
		}
		e = &recEntry{lastCycles: perIterCycles}
		r.entries[t.ID] = e
		r.order = append(r.order, t.ID)
		return false
	}
	if e.unmemoizable {
		return false
	}
	if !sched.Replayable() || t.AliasRate > r.MaxAliasRate || t.MispredictRate > r.MaxMispredictRate {
		e.unmemoizable = true
		return false
	}
	match := metricsMatch(e.lastCycles, perIterCycles) && r.rng.Bool(t.Stability)
	e.lastCycles = perIterCycles
	if !match {
		e.confidence = 0
		return false
	}
	e.confidence++
	return e.confidence == r.ConfidenceThreshold
}

// Unmemoizable reports whether the recorder has given up on a trace.
func (r *Recorder) Unmemoizable(id trace.ID) bool {
	e := r.entries[id]
	return e != nil && e.unmemoizable
}

// Reset clears the tables (the producer switches to a new application).
func (r *Recorder) Reset() {
	r.entries = make(map[trace.ID]*recEntry)
	r.order = r.order[:0]
}

// metricsMatch applies the tolerance used to declare two executions "the
// same schedule": within 5% or 2 cycles of each other.
func metricsMatch(a, b int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= 2 {
		return true
	}
	den := a
	if b > den {
		den = b
	}
	return den > 0 && float64(d)/float64(den) <= 0.05
}
