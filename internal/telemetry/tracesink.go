package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceEvent is one Chrome trace_event record. The exported JSON follows the
// Trace Event Format's array flavor, loadable in chrome://tracing and
// Perfetto. Simulated cycles map 1:1 onto the format's microsecond
// timestamps.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "C" counter,
	// "M" metadata.
	Ph  string `json:"ph"`
	Ts  int64  `json:"ts"`
	Dur int64  `json:"dur,omitempty"`
	Pid int    `json:"pid"`
	Tid int    `json:"tid"`
	// Scope applies to instant events ("g" global, "p" process, "t" thread).
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceSink accumulates trace events. The zero value is ready to use; a nil
// *TraceSink discards events, so emit sites need no enablement checks.
//
// A sink built with NewBoundedTraceSink keeps only the most recent cap
// events in a ring buffer — the backing store for long-lived processes
// (miraged's per-request span timeline) that must not grow without bound.
type TraceSink struct {
	mu     sync.Mutex
	events []TraceEvent
	// cap > 0 bounds the buffer: events is a ring of at most cap entries
	// and head indexes the oldest one. cap == 0 grows unbounded.
	cap  int
	head int
}

// NewTraceSink returns an empty, unbounded sink.
func NewTraceSink() *TraceSink { return &TraceSink{} }

// NewBoundedTraceSink returns a sink retaining only the most recent cap
// events (oldest evicted first). cap <= 0 yields an unbounded sink.
func NewBoundedTraceSink(cap int) *TraceSink {
	if cap < 0 {
		cap = 0
	}
	return &TraceSink{cap: cap}
}

// Emit appends one event, evicting the oldest when a bounded sink is full.
// Safe on a nil receiver (no-op).
func (t *TraceSink) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.cap > 0 && len(t.events) == t.cap {
		t.events[t.head] = ev
		t.head = (t.head + 1) % t.cap
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Complete emits an "X" (complete) event spanning [ts, ts+dur) on the given
// thread lane. Safe on a nil receiver.
func (t *TraceSink) Complete(name, cat string, ts, dur int64, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Tid: tid, Args: args})
}

// Instant emits an "i" (instant) event at ts on the given thread lane. Safe
// on a nil receiver.
func (t *TraceSink) Instant(name, cat string, ts int64, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Tid: tid, Scope: "t", Args: args})
}

// Count emits a "C" (counter) event: the tracks named by the args keys show
// the values as a time-series. Safe on a nil receiver.
func (t *TraceSink) Count(name string, ts int64, tid int, values map[string]any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Ph: "C", Ts: ts, Tid: tid, Args: values})
}

// NameThread emits the "M" metadata event labeling a tid lane (e.g. with the
// benchmark running on that core). Safe on a nil receiver.
func (t *TraceSink) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{
		Name: "thread_name", Ph: "M", Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// Len returns the number of buffered events (0 for a nil receiver).
func (t *TraceSink) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the buffered events, oldest first (nil for a nil
// receiver).
func (t *TraceSink) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	n := copy(out, t.events[t.head:])
	copy(out[n:], t.events[:t.head])
	return out
}

// WriteJSON exports the buffered events as a Chrome trace_event JSON array.
// A nil sink writes an empty array.
func (t *TraceSink) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
