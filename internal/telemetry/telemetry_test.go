package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Error("nil telemetry should be disabled")
	}
	tel.Reg().Counter("x").Add(5)
	tel.Reg().Gauge("g").Set(1)
	tel.Reg().Histogram("h").Observe(3)
	tel.Reg().RegisterFunc("f", func() float64 { return 1 })
	tel.Samp().Record(IntervalSample{})
	tel.Sink().Emit(TraceEvent{})
	tel.Sink().Complete("a", "b", 0, 1, 0, nil)
	tel.Sink().Instant("a", "b", 0, 0, nil)
	tel.Sink().Count("a", 0, 0, nil)
	tel.Sink().NameThread(0, "x")
	if tel.Samp().Len() != 0 || tel.Sink().Len() != 0 {
		t.Error("nil sinks recorded something")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(2)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments hold values")
	}
	m := tel.Export()
	if m.Counters != nil || m.Intervals != nil {
		t.Error("nil telemetry exported data")
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("sim.migrations")
	c2 := r.Counter("sim.migrations")
	if c1 != c2 {
		t.Error("same name should return same counter")
	}
	c1.Add(3)
	c2.Inc()
	r.Gauge("sim.owner").Set(2.5)
	r.Histogram("sim.penalty").Observe(10)
	r.RegisterFunc("sim.rate", func() float64 { return 0.25 })

	s := r.Snapshot()
	if s.Counters["sim.migrations"] != 4 {
		t.Errorf("counter = %d, want 4", s.Counters["sim.migrations"])
	}
	if s.Gauges["sim.owner"] != 2.5 || s.Gauges["sim.rate"] != 0.25 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	hs := s.Histograms["sim.penalty"]
	if hs.Count != 1 || hs.Sum != 10 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "sim.migrations" {
		t.Errorf("counter names = %v", names)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11}, {1 << 40, 40},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0
		}
		if got := bucketOf(v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	h := &Histogram{}
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(1 << 60) // clamps into the last bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d", s.Count)
	}
	want := map[int64]int64{1: 1, 4: 2, 1 << (histBuckets - 1): 1}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

func TestSamplerRoundTrip(t *testing.T) {
	s := NewSampler()
	s.Record(IntervalSample{Run: "r", Interval: 0, OoOOwners: []int{1},
		Apps: []AppSample{{App: 0, IPC: 1.5}, {App: 1, IPC: 2.0, OnOoO: true}}})
	s.Record(IntervalSample{Run: "r", Interval: 1})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	got := s.Samples()
	if got[0].Apps[1].IPC != 2.0 || !got[0].Apps[1].OnOoO {
		t.Errorf("sample = %+v", got[0])
	}
	// The copy is independent of subsequent resets.
	s.Reset()
	if s.Len() != 0 || len(got) != 2 {
		t.Error("reset broke the copy")
	}
}

func TestTraceSinkChromeFormat(t *testing.T) {
	ts := NewTraceSink()
	ts.NameThread(0, "hmmer")
	ts.Complete("ooo-tenure", "arbitration", 100, 50, 0, map[string]any{"app": 0})
	ts.Instant("squash", "replay", 120, 1, nil)
	ts.Count("ipc", 130, 0, map[string]any{"ipc": 1.25})

	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be a JSON array of objects with the trace_event keys.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	phases := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph] = true
		if _, ok := ev["name"]; !ok {
			t.Errorf("event missing name: %v", ev)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if !phases[ph] {
			t.Errorf("missing phase %q", ph)
		}
	}
	// A nil sink still writes a valid (empty) array.
	var nilSink *TraceSink
	buf.Reset()
	if err := nilSink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var empty []any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Errorf("nil sink export: %q err=%v", buf.String(), err)
	}
}

func TestConcurrentUse(t *testing.T) {
	tel := New()
	c := tel.Reg().Counter("n")
	h := tel.Reg().Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				tel.Reg().Gauge("g").Set(float64(i))
				tel.Samp().Record(IntervalSample{Run: "c", Interval: i})
				tel.Sink().Instant("e", "t", int64(i), w, nil)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d hist=%d", c.Value(), h.Count())
	}
	if tel.Samp().Len() != 8000 || tel.Sink().Len() != 8000 {
		t.Errorf("sampler=%d sink=%d", tel.Samp().Len(), tel.Sink().Len())
	}
}

func TestExportMetricsJSON(t *testing.T) {
	tel := New()
	tel.Reg().Counter("a").Add(1)
	tel.Samp().Record(IntervalSample{Interval: 3, Apps: []AppSample{{App: 0, IPC: 1}}})
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters  map[string]int64 `json:"counters"`
		Intervals []struct {
			Interval int `json:"interval"`
		} `json:"intervals"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["a"] != 1 || len(m.Intervals) != 1 || m.Intervals[0].Interval != 3 {
		t.Errorf("metrics round-trip: %s", buf.String())
	}
}
