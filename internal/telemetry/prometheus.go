// Prometheus text exposition (format version 0.0.4) for the registry, so
// the miraged `/v1/metrics?format=prometheus` endpoint can be scraped by a
// stock Prometheus/OpenMetrics collector — the future load harness and the
// fleet coordinator both consume this format. Stdlib-only, like the rest of
// the package.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a dotted registry name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (the registry's namespace separator)
// and any other illegal rune become '_'; a leading digit gains a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if legal {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (shortest round-trip
// representation; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Names are sanitized
// (dots become underscores) and emitted in sorted order so the output is
// deterministic; if two registry names sanitize to the same metric name,
// only the first (in sorted registry-name order) is emitted — duplicate
// series are a protocol violation a scraper may reject whole.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	claim := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		return true
	}
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if !claim(pn) {
			continue
		}
		emit("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if !claim(pn) {
			continue
		}
		emit("# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		if !claim(pn) {
			continue
		}
		h := s.Histograms[name]
		emit("# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			emit("%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum)
		}
		// Observations clamp into the top bucket, so +Inf equals the total.
		emit("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		emit("%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	return err
}

// sortedKeys returns the map's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry's current snapshot in the Prometheus
// text exposition format. Safe on a nil receiver (writes nothing). The
// interval time-series is JSON-only — Prometheus scrapes are point-in-time.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.Registry.Snapshot().WritePrometheus(w)
}
