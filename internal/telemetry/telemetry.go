// Package telemetry is the simulator's observability layer: a typed metrics
// registry (counters, gauges, log-scale histograms), a per-interval sampler
// that records the arbitration time-series behind Figure 9's timeline, and a
// trace sink that exports Chrome trace_event JSON loadable in chrome://tracing
// or Perfetto.
//
// The layer is zero-dependency and allocation-conscious. It is off by
// default: a nil *Telemetry (or nil *Registry/*Sampler/*TraceSink) disables
// everything, and every instrument method is safe to call on a nil receiver,
// so hot paths carry only a predictable nil-check when telemetry is disabled
// (verified by BenchmarkClusterTelemetryOff/On at the repo root).
//
// All instruments are safe for concurrent use: counters and gauges are
// atomics, the registry, sampler and sink serialize structural mutation
// behind mutexes, so clusters running in parallel goroutines may share one
// Telemetry.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the latest observed value.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the latest value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 buckets: bucket k counts observations v
// with 2^(k-1) < v <= 2^k (bucket 0 counts v <= 1). 48 buckets cover every
// cycle count the simulator can produce.
const histBuckets = 48

// Histogram is a log-scale (power-of-two bucketed) distribution of int64
// observations — squash penalties, tenure lengths, transfer sizes.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketOf maps an observation to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one observation. Negative values clamp to zero. Safe on a
// nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramBucket is one non-empty bucket of a histogram snapshot: Count
// observations v with v <= Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exportable state of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the non-empty buckets. Safe on a nil receiver (zero
// snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.n.Load(), Sum: h.sum.Load()}
	for k := range h.counts {
		if c := h.counts[k].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: int64(1) << uint(k), Count: c})
		}
	}
	return s
}

// bucketLo returns the exclusive lower bound of the bucket whose upper bound
// is le: observations v in that bucket satisfy lo < v <= le (bucket le==1
// covers [0, 1]).
func bucketLo(le int64) float64 {
	if le <= 1 {
		return 0
	}
	return float64(le) / 2
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution from the snapshot's log-scale buckets: the estimate of the
// ceil(q*count)-th smallest observation (the minimum for q = 0), produced by
// linear interpolation within its bucket. The true order statistic is
// guaranteed to lie in the same bucket, so the estimate is within a factor
// of 2 of the exact value; observations that sit exactly on a power-of-two
// bucket boundary are recovered exactly when alone in their bucket. An empty
// snapshot yields 0; q outside [0, 1] is clamped. Every estimate is finite.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Rank of the target order statistic, 1-based. q=0 selects the first
	// observation, q=1 the last.
	target := math.Ceil(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		lo := bucketLo(b.Le)
		prev := cum
		cum += b.Count
		if float64(cum) >= target {
			frac := (target - float64(prev)) / float64(b.Count)
			return lo + frac*(float64(b.Le)-lo)
		}
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// Quantile estimates the q-quantile of the live histogram (see
// HistogramSnapshot.Quantile). Safe on a nil receiver (0).
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Registry is a typed, named metric store. Component packages resolve their
// instruments once at construction (Counter/Gauge/Histogram return the same
// instrument for the same name), keeping hot paths free of map lookups.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns (registering if absent) the named counter. A nil registry
// returns nil, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if absent) the named gauge. A nil registry
// returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if absent) the named histogram. A nil
// registry returns nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a gauge computed on demand at snapshot time — used
// by components (caches) that already maintain internal counters. fn runs
// under the registry lock; it must not call back into the registry. A nil
// registry ignores the call.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time export of a registry, ready for JSON encoding.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value (func gauges are
// evaluated now). A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges)+len(r.funcs) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.funcs))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
		for n, fn := range r.funcs {
			s.Gauges[n] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// CounterNames returns the sorted registered counter names (tests and
// diagnostics).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Telemetry bundles the three sinks a simulation can feed. Any field may be
// nil to disable that facet; a nil *Telemetry disables all three.
type Telemetry struct {
	Registry *Registry
	Sampler  *Sampler
	Trace    *TraceSink
}

// New returns a Telemetry with all three sinks enabled.
func New() *Telemetry {
	return &Telemetry{Registry: NewRegistry(), Sampler: NewSampler(), Trace: NewTraceSink()}
}

// Reg returns the registry (nil when disabled). Safe on a nil receiver.
func (t *Telemetry) Reg() *Registry {
	if t == nil {
		return nil
	}
	return t.Registry
}

// Samp returns the sampler (nil when disabled). Safe on a nil receiver.
func (t *Telemetry) Samp() *Sampler {
	if t == nil {
		return nil
	}
	return t.Sampler
}

// Sink returns the trace sink (nil when disabled). Safe on a nil receiver.
func (t *Telemetry) Sink() *TraceSink {
	if t == nil {
		return nil
	}
	return t.Trace
}

// Enabled reports whether any facet is live. Safe on a nil receiver.
func (t *Telemetry) Enabled() bool {
	return t != nil && (t.Registry != nil || t.Sampler != nil || t.Trace != nil)
}

// Metrics is the combined metrics artifact the -metrics-out flag writes: the
// registry snapshot plus the interval time-series.
type Metrics struct {
	Snapshot
	Intervals []IntervalSample `json:"intervals,omitempty"`
}

// Export assembles the Metrics artifact. Safe on a nil receiver.
func (t *Telemetry) Export() Metrics {
	var m Metrics
	if t == nil {
		return m
	}
	m.Snapshot = t.Registry.Snapshot()
	m.Intervals = t.Sampler.Samples()
	return m
}

// WriteMetrics JSON-encodes the Metrics artifact to w.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Export())
}

// WriteMetricsFile writes the Metrics artifact to path (the -metrics-out
// flag of both command binaries).
func (t *Telemetry) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTraceFile writes the Chrome trace_event array to path (the -trace-out
// flag of both command binaries).
func (t *Telemetry) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Sink().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
