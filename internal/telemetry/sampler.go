package telemetry

import "sync"

// AppSample is one application's slice of an interval sample.
type AppSample struct {
	// App is the application's index within its cluster; Name its benchmark.
	App  int    `json:"app"`
	Name string `json:"name,omitempty"`
	// OnOoO reports whether the app occupied an OoO core this interval.
	OnOoO bool `json:"on_ooo,omitempty"`
	// IPC is the interval's instructions per cycle.
	IPC float64 `json:"ipc"`
	// SCMPKI is the Schedule-Cache misses per kilo-instruction observed this
	// interval (0 on non-memoizing topologies).
	SCMPKI float64 `json:"sc_mpki,omitempty"`
	// Insts is the number of instructions retired this interval.
	Insts int64 `json:"insts,omitempty"`
}

// IntervalSample is one arbitration interval's record: who held the OoO and
// what every application achieved — the data behind Figure 9's timeline.
type IntervalSample struct {
	// Run labels the simulation this sample belongs to (the cluster seed),
	// so one Sampler can serve several runs (mirageexp sweeps).
	Run string `json:"run,omitempty"`
	// Interval is the interval index within the run (warmup included).
	Interval int `json:"interval"`
	// Warmup marks pre-measurement intervals (counters reset after them).
	Warmup bool `json:"warmup,omitempty"`
	// OoOOwners lists the app indexes occupying OoO cores this interval
	// (empty: the OoO was power-gated or absent).
	OoOOwners []int `json:"ooo_owners,omitempty"`
	// Apps holds the per-application samples.
	Apps []AppSample `json:"apps"`
}

// Sampler accumulates the per-interval time-series. The zero value is ready
// to use; a nil *Sampler discards samples.
type Sampler struct {
	mu      sync.Mutex
	samples []IntervalSample
}

// NewSampler returns an empty sampler.
func NewSampler() *Sampler { return &Sampler{} }

// Record appends one interval sample. Safe on a nil receiver (no-op).
func (s *Sampler) Record(smp IntervalSample) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.samples = append(s.samples, smp)
	s.mu.Unlock()
}

// Len returns the number of recorded samples (0 for a nil receiver).
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Samples returns a copy of the recorded series (nil for a nil receiver).
func (s *Sampler) Samples() []IntervalSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IntervalSample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Reset discards all samples. Safe on a nil receiver.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.samples = s.samples[:0]
	s.mu.Unlock()
}
