package telemetry

// CoreMetrics is the instrument set a pipeline core (InO, OinO or OoO mode)
// feeds while measuring trace executions. Cores hold a nil *CoreMetrics when
// telemetry is detached and skip instrumentation entirely.
type CoreMetrics struct {
	// Measures counts genuine pipeline simulations (cache-cold or cache-warm
	// re-measurements); MeasuredCycles accumulates their simulated cycles.
	Measures       *Counter
	MeasuredCycles *Counter
	// StallData/StallFU/StallFetch break measured issue stalls down by
	// cause: operand not ready, functional unit busy, front end gated.
	StallData  *Counter
	StallFU    *Counter
	StallFetch *Counter
	// Replays counts OinO schedule-replay iterations; SquashedIters the
	// replay iterations that misspeculated and re-ran in program order.
	Replays       *Counter
	SquashedIters *Counter
}

// NewCoreMetrics resolves a core's counters under prefix (e.g. "core3.ino").
// A nil registry yields nil, which detaches instrumentation.
func NewCoreMetrics(reg *Registry, prefix string) *CoreMetrics {
	if reg == nil {
		return nil
	}
	return &CoreMetrics{
		Measures:       reg.Counter(prefix + ".measures"),
		MeasuredCycles: reg.Counter(prefix + ".measured_cycles"),
		StallData:      reg.Counter(prefix + ".stall_data_cycles"),
		StallFU:        reg.Counter(prefix + ".stall_fu_cycles"),
		StallFetch:     reg.Counter(prefix + ".stall_fetch_cycles"),
		Replays:        reg.Counter(prefix + ".replay_iters"),
		SquashedIters:  reg.Counter(prefix + ".squashed_iters"),
	}
}
