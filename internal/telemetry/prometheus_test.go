package telemetry

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests.ok":    "server_requests_ok",
		"already_legal:name":    "already_legal:name",
		"9starts.with.digit":    "_9starts_with_digit",
		"weird name/with-stuff": "weird_name_with_stuff",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseProm does a minimal exposition-format validation: every non-comment
// line is "name{labels} value" or "name value", every series is declared by
// a preceding # TYPE, and no (name, labels) pair repeats. Returns the
// samples by full series identity.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if _, dup := typed[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suf); ok && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("line %d: series %q has no # TYPE declaration", ln+1, series)
		}
		if _, dup := samples[series]; dup {
			t.Errorf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = v
	}
	return samples
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests.ok").Add(7)
	r.Gauge("server.requests.active").Set(2.5)
	h := r.Histogram("server.latency.us")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := parseProm(t, out)

	if samples["server_requests_ok"] != 7 {
		t.Errorf("counter sample = %v, want 7", samples["server_requests_ok"])
	}
	if samples["server_requests_active"] != 2.5 {
		t.Errorf("gauge sample = %v, want 2.5", samples["server_requests_active"])
	}
	if !strings.Contains(out, "# TYPE server_requests_ok counter") {
		t.Error("missing counter TYPE line")
	}
	if !strings.Contains(out, "# TYPE server_latency_us histogram") {
		t.Error("missing histogram TYPE line")
	}
	// Buckets are cumulative: le=1 holds the single 1, le=4 adds the two 3s,
	// +Inf equals the total count.
	if got := samples[`server_latency_us_bucket{le="1"}`]; got != 1 {
		t.Errorf("le=1 bucket = %v, want 1", got)
	}
	if got := samples[`server_latency_us_bucket{le="4"}`]; got != 3 {
		t.Errorf("le=4 bucket = %v, want 3 (cumulative)", got)
	}
	if got := samples[`server_latency_us_bucket{le="+Inf"}`]; got != 4 {
		t.Errorf("+Inf bucket = %v, want 4", got)
	}
	if samples["server_latency_us_sum"] != 107 || samples["server_latency_us_count"] != 4 {
		t.Errorf("sum/count = %v/%v, want 107/4",
			samples["server_latency_us_sum"], samples["server_latency_us_count"])
	}

	// Deterministic output across renders.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition output not deterministic")
	}
}

func TestWritePrometheusCollision(t *testing.T) {
	// Two registry names sanitizing to one metric name must not emit
	// duplicate series (a protocol violation): the first in sorted order
	// wins, the other is dropped.
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.String())
	if samples["a_b"] != 1 {
		t.Errorf("collision winner = %v, want 1 (sorted-first registry name)", samples["a_b"])
	}
	if strings.Count(buf.String(), "\na_b ") != 1 {
		t.Errorf("collision emitted duplicate series:\n%s", buf.String())
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var tel *Telemetry
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil telemetry: err=%v len=%d", err, buf.Len())
	}
	if err := (Snapshot{}).WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("empty snapshot: err=%v len=%d", err, buf.Len())
	}
}

func TestBoundedTraceSinkRing(t *testing.T) {
	ts := NewBoundedTraceSink(4)
	for i := 0; i < 6; i++ {
		ts.Instant(fmt.Sprintf("e%d", i), "t", int64(i), 0, nil)
	}
	if ts.Len() != 4 {
		t.Fatalf("len = %d, want 4", ts.Len())
	}
	evs := ts.Events()
	want := []string{"e2", "e3", "e4", "e5"}
	for i, ev := range evs {
		if ev.Name != want[i] {
			t.Errorf("event %d = %q, want %q (oldest-first ring order)", i, ev.Name, want[i])
		}
	}
	// Below capacity the sink behaves like an unbounded one.
	small := NewBoundedTraceSink(10)
	small.Instant("only", "t", 1, 0, nil)
	if small.Len() != 1 || small.Events()[0].Name != "only" {
		t.Errorf("under-capacity sink misbehaved: %v", small.Events())
	}
}
