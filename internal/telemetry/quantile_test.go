package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	// A value sitting exactly on a power-of-two bucket boundary, alone in
	// its bucket, is recovered exactly at every quantile.
	for _, v := range []int64{1, 2, 8, 1024} {
		var h Histogram
		h.Observe(v)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != float64(v) {
				t.Errorf("single obs %d: Quantile(%v) = %v, want %d", v, q, got, v)
			}
		}
	}
	// A non-boundary value is estimated within its bucket.
	var h Histogram
	h.Observe(5) // bucket (4, 8]
	got := h.Quantile(0.5)
	if got <= 4 || got > 8 {
		t.Errorf("single obs 5: Quantile(0.5) = %v, want in (4, 8]", got)
	}
}

func TestQuantileNegativeAndZero(t *testing.T) {
	// Negative and zero observations clamp into the [0, 1] bucket, so every
	// quantile of an all-nonpositive distribution lands in [0, 1].
	var h Histogram
	h.Observe(-7)
	h.Observe(0)
	h.Observe(-1)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < 0 || got > 1 {
			t.Errorf("nonpositive obs: Quantile(%v) = %v, want in [0, 1]", q, got)
		}
	}
	// Out-of-range and NaN q clamp rather than panic or go infinite.
	h.Observe(100)
	for _, q := range []float64{-0.5, 1.5, math.NaN()} {
		got := h.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("Quantile(%v) = %v, want finite and >= 0", q, got)
		}
	}
}

func TestQuantileBoundsOnUniform(t *testing.T) {
	// 1..1000: the true q-quantile is the ceil(q*1000)-th smallest value,
	// i.e. ceil(q*1000) itself. The estimate must land in the same
	// power-of-two bucket, so it is within a factor of two of the truth.
	var h Histogram
	const n = 1000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		truth := math.Ceil(q * n)
		if truth < 1 {
			truth = 1
		}
		got := s.Quantile(q)
		if got < truth/2 || got > 2*truth {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v] (truth %v)",
				q, got, truth/2, 2*truth, truth)
		}
	}
	// p0 and p100 bracket the observed range (up to bucket resolution).
	if p0 := s.Quantile(0); p0 < 0 || p0 > 2 {
		t.Errorf("p0 = %v, want about the minimum 1", p0)
	}
	if p100 := s.Quantile(1); p100 < 512 || p100 > 1024 {
		t.Errorf("p100 = %v, want in the maximum's bucket (512, 1024]", p100)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := s.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestQuantileExactOnBoundaryDistribution(t *testing.T) {
	// 1, 2, 4, 8 each sit alone on a bucket boundary: interpolation recovers
	// them exactly. target rank r maps to q in ((r-1)/4, r/4].
	var h Histogram
	for _, v := range []int64{1, 2, 4, 8} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 1}, {0.26, 2}, {0.5, 2}, {0.75, 4}, {0.99, 8}, {1, 8},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileConcurrentObserve(t *testing.T) {
	// Quantile reads a snapshot while writers observe; the race detector
	// (go test -race) asserts the synchronization, this test the bounds.
	var h Histogram
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 1; i <= 5000; i++ {
				h.Observe(int64(i % 1000))
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if q := h.Quantile(0.99); math.IsNaN(q) || q < 0 || q > 1024 {
				t.Errorf("concurrent Quantile(0.99) = %v out of range", q)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if h.Count() != 4*5000 {
		t.Errorf("count = %d, want %d", h.Count(), 4*5000)
	}
	if q := h.Quantile(1); q < 512 || q > 1024 {
		t.Errorf("final p100 = %v, want in (512, 1024]", q)
	}
}
