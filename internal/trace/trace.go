// Package trace defines the unit of schedule memoization: a trace is the
// dynamic instruction sequence between two consecutive backward branches
// (about 50 instructions on average — a loop body or small function). The
// OoO core records the issue order of a repeating trace as a Schedule, which
// the Schedule Cache stores and an OinO-mode InO core replays.
package trace

import (
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
)

// ID uniquely identifies a static trace (its starting PC in a real machine).
type ID uint64

// StreamKind describes the address pattern walked by a memory stream.
type StreamKind uint8

const (
	// StreamStrided walks addresses with a fixed stride (array traversal).
	StreamStrided StreamKind = iota
	// StreamRandom touches uniformly random addresses inside a working set
	// (pointer chasing, hash tables). Defeats the stride prefetcher.
	StreamRandom
)

// StreamSpec describes one memory address stream used by the loads/stores of
// a trace. Streams are evaluated by the memory hierarchy (internal/mem).
type StreamSpec struct {
	Kind StreamKind
	// Base is the starting virtual address of the stream's region.
	Base uint64
	// Stride is the byte stride for StreamStrided.
	Stride uint64
	// WorkingSet is the region size in bytes the stream stays within.
	WorkingSet uint64
}

// Trace is a static trace: its instructions plus behavioural parameters the
// workload generator attaches (branch predictability, schedule stability).
type Trace struct {
	ID    ID
	Insts []isa.Inst
	// Streams are the memory address streams referenced by Inst.MemStream.
	Streams []StreamSpec

	// MispredictRate is the probability the trace's terminating branch (or
	// an internal branch) mispredicts on a given iteration, as measured by
	// the branch predictor for this trace's control behaviour.
	MispredictRate float64

	// Stability is the probability that two consecutive OoO executions of
	// this trace produce the same issue schedule (Section 3.3.1: traces with
	// variable load behaviour or control flow produce varying schedules).
	Stability float64

	// AliasRate is the per-iteration probability that a load reordered
	// above a store aliases with it, squashing an OinO replay.
	AliasRate float64
}

// NumMemOps returns how many loads and stores the trace contains.
func (t *Trace) NumMemOps() (loads, stores int) {
	for _, in := range t.Insts {
		switch in.Op {
		case isa.Load:
			loads++
		case isa.Store:
			stores++
		}
	}
	return loads, stores
}

// Len returns the number of instructions in the trace.
func (t *Trace) Len() int { return len(t.Insts) }

// Validate checks structural invariants of the trace.
func (t *Trace) Validate() error {
	if len(t.Insts) == 0 {
		return fmt.Errorf("trace %d: empty", t.ID)
	}
	for i, in := range t.Insts {
		if in.Op >= isa.NumClasses {
			return fmt.Errorf("trace %d inst %d: bad class %d", t.ID, i, in.Op)
		}
		if in.Dst != isa.NoReg && !in.Dst.Valid() {
			return fmt.Errorf("trace %d inst %d: bad dst %d", t.ID, i, in.Dst)
		}
		if in.Src1 != isa.NoReg && !in.Src1.Valid() {
			return fmt.Errorf("trace %d inst %d: bad src1 %d", t.ID, i, in.Src1)
		}
		if in.Src2 != isa.NoReg && !in.Src2.Valid() {
			return fmt.Errorf("trace %d inst %d: bad src2 %d", t.ID, i, in.Src2)
		}
		if in.Op.IsMem() && int(in.MemStream) >= len(t.Streams) {
			return fmt.Errorf("trace %d inst %d: stream %d out of range", t.ID, i, in.MemStream)
		}
	}
	if t.MispredictRate < 0 || t.MispredictRate > 1 {
		return fmt.Errorf("trace %d: mispredict rate %f out of range", t.ID, t.MispredictRate)
	}
	if t.Stability < 0 || t.Stability > 1 {
		return fmt.Errorf("trace %d: stability %f out of range", t.ID, t.Stability)
	}
	return nil
}

// DepGraph is the register dependence structure of one trace iteration,
// plus the loop-carried dependences into the next iteration. Edge i -> j
// means instruction j reads the value produced by instruction i.
type DepGraph struct {
	// Preds[j] lists the in-trace producers of instruction j's sources.
	Preds [][]int
	// CarriedPreds[j] lists producers from the *previous* iteration: the
	// instruction indexes whose results instruction j reads as live-ins.
	CarriedPreds [][]int
	// LastWriter[r] is the index of the last instruction writing register r,
	// or -1. Used to wire loop-carried edges between unrolled iterations.
	LastWriter [isa.NumRegs]int

	// derived caches a consumer-specific flattened form of the graph (the
	// pipeline engine's CSR adjacency), built on first use via Derived.
	derived atomic.Value
}

// Derived returns the memoized derived form of the graph, building it with
// build on first use. The graph is treated as immutable after BuildDepGraph;
// concurrent callers may race to build, in which case one deterministic
// value wins and duplicates are discarded — callers must therefore derive
// values purely from the graph itself.
func (g *DepGraph) Derived(build func() any) any {
	if v := g.derived.Load(); v != nil {
		return v
	}
	v := build()
	g.derived.Store(v)
	return v
}

// BuildDepGraph computes RAW register dependences within a trace and the
// loop-carried dependences created when the trace executes back to back
// (registers read before they are written in the same iteration were written
// by the previous iteration, if the trace writes them at all).
func BuildDepGraph(t *Trace) *DepGraph {
	n := len(t.Insts)
	g := &DepGraph{
		Preds:        make([][]int, n),
		CarriedPreds: make([][]int, n),
	}
	var writer [isa.NumRegs]int
	for r := range writer {
		writer[r] = -1
	}
	// readsBeforeWrite[r] collects instructions that read r before any write
	// to r in this iteration; these become loop-carried edges.
	var readsBeforeWrite [isa.NumRegs][]int
	for j, in := range t.Insts {
		for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
			if !src.Valid() {
				continue
			}
			if w := writer[src]; w >= 0 {
				g.Preds[j] = append(g.Preds[j], w)
			} else {
				readsBeforeWrite[src] = append(readsBeforeWrite[src], j)
			}
		}
		if in.HasDst() {
			writer[in.Dst] = j
		}
	}
	g.LastWriter = writer
	for r := 0; r < isa.NumRegs; r++ {
		if writer[r] < 0 {
			continue // register is pure live-in; always ready
		}
		for _, j := range readsBeforeWrite[r] {
			g.CarriedPreds[j] = append(g.CarriedPreds[j], writer[r])
		}
	}
	return g
}

// CriticalPathLen returns the length, in cycles, of the longest dependence
// chain through one iteration assuming L1-hit load latency. It is a lower
// bound on per-iteration execution time with infinite resources.
func CriticalPathLen(t *Trace, g *DepGraph) int {
	n := len(t.Insts)
	depth := make([]int, n)
	longest := 0
	for j := 0; j < n; j++ {
		start := 0
		for _, p := range g.Preds[j] {
			if d := depth[p]; d > start {
				start = d
			}
		}
		depth[j] = start + isa.Latency[t.Insts[j].Op]
		if depth[j] > longest {
			longest = depth[j]
		}
	}
	return longest
}

// Schedule is a memoized OoO issue schedule for a trace: the order in which
// the OoO issued the trace's instructions, plus the metadata block that lets
// the OinO-mode LSQ reconstruct original memory order (Section 3.3.2).
type Schedule struct {
	TraceID ID
	// Span is how many consecutive trace iterations the schedule covers as
	// one atomic replay unit. Recording across iterations preserves the
	// OoO's cross-iteration overlap, which in-order replay needs.
	Span int
	// Order[k] is the block position issued k-th: position it*traceLen+j
	// is instruction j of the block's it-th iteration.
	Order []uint16
	// MemOrder lists, in original program order, the schedule positions of
	// the trace's memory operations; the OinO LSQ uses it to insert loads
	// and stores in program sequence so aliases are detected correctly.
	MemOrder []uint16
	// RecordedCycles is the per-iteration cycle count the OoO observed when
	// it recorded the schedule (used by repeatability matching).
	RecordedCycles int
	// ReorderedInsts counts instructions issued out of program order; a
	// proxy for how much the schedule gains over program order.
	ReorderedInsts int
	// MaxVersions is the maximum number of simultaneously-live renamed
	// versions of any architectural register the schedule requires; replay
	// needs MaxVersions <= isa.OinOMaxVersions.
	MaxVersions int
}

// MetadataBytes is the fixed per-schedule metadata block (20 B per the
// paper) storing program-sequence ordering of memory operations.
const MetadataBytes = 20

// SizeBytes returns the Schedule Cache footprint of the schedule.
func (s *Schedule) SizeBytes() int {
	return len(s.Order)*isa.InstBytes + MetadataBytes
}

// Replayable reports whether the schedule satisfies the OinO hardware
// limits: the versioned PRF bound and the replay-LSQ capacity. Stores
// commit and the LSQ drains at iteration boundaries inside the block, so
// the capacity bound applies per iteration.
func (s *Schedule) Replayable() bool {
	span := s.Span
	if span <= 0 {
		span = 1
	}
	return s.MaxVersions <= isa.OinOMaxVersions && len(s.MemOrder)/span <= isa.OinOLSQSize
}

// Validate checks that the schedule is a permutation of block positions.
func (s *Schedule) Validate(traceLen int) error {
	span := s.Span
	if span <= 0 {
		span = 1
	}
	if len(s.Order) != traceLen*span {
		return fmt.Errorf("schedule for trace %d: order len %d != trace len %d x span %d",
			s.TraceID, len(s.Order), traceLen, span)
	}
	seen := make([]bool, traceLen*span)
	for _, pos := range s.Order {
		if int(pos) >= len(seen) {
			return fmt.Errorf("schedule for trace %d: position %d out of range", s.TraceID, pos)
		}
		if seen[pos] {
			return fmt.Errorf("schedule for trace %d: position %d duplicated", s.TraceID, pos)
		}
		seen[pos] = true
	}
	return nil
}
