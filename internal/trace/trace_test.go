package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// chainTrace builds: r1 = r1 + r2 ; r2 = load[r1] ; r3 = r2 * r2 ; branch r3
func chainTrace() *Trace {
	return &Trace{
		ID: 1,
		Insts: []isa.Inst{
			{Op: isa.IntALU, Dst: 1, Src1: 1, Src2: 2},
			{Op: isa.Load, Dst: 2, Src1: 1, MemStream: 0},
			{Op: isa.IntMul, Dst: 3, Src1: 2, Src2: 2},
			{Op: isa.Branch, Dst: isa.NoReg, Src1: 3},
		},
		Streams:   []StreamSpec{{WorkingSet: 1024, Stride: 8}},
		Stability: 0.9,
	}
}

func TestBuildDepGraphRAW(t *testing.T) {
	g := BuildDepGraph(chainTrace())
	if len(g.Preds[0]) != 0 {
		t.Errorf("inst 0 reads r1,r2 before any writes; preds = %v", g.Preds[0])
	}
	if len(g.Preds[1]) != 1 || g.Preds[1][0] != 0 {
		t.Errorf("load depends on inst 0 via r1; got %v", g.Preds[1])
	}
	if len(g.Preds[2]) != 2 || g.Preds[2][0] != 1 || g.Preds[2][1] != 1 {
		t.Errorf("mul reads r2 twice from the load; got %v", g.Preds[2])
	}
	if len(g.Preds[3]) != 1 || g.Preds[3][0] != 2 {
		t.Errorf("branch depends on mul; got %v", g.Preds[3])
	}
}

func TestBuildDepGraphCarried(t *testing.T) {
	g := BuildDepGraph(chainTrace())
	// Inst 0 reads r1 (written by inst 0) and r2 (written by inst 1) before
	// either write in the same iteration, so it carries dependences on both
	// producers from the previous iteration.
	has := map[int]bool{}
	for _, p := range g.CarriedPreds[0] {
		has[p] = true
	}
	if !has[0] || !has[1] {
		t.Errorf("inst 0 should carry-depend on prior iteration's insts 0 and 1; got %v", g.CarriedPreds[0])
	}
	if g.LastWriter[1] != 0 || g.LastWriter[2] != 1 || g.LastWriter[3] != 2 {
		t.Errorf("last writers wrong: %v %v %v", g.LastWriter[1], g.LastWriter[2], g.LastWriter[3])
	}
}

func TestBuildDepGraphPredsPrecede(t *testing.T) {
	// Property: every in-iteration predecessor index is strictly smaller.
	tr := chainTrace()
	g := BuildDepGraph(tr)
	for j, preds := range g.Preds {
		for _, p := range preds {
			if p >= j {
				t.Errorf("pred %d of inst %d does not precede it", p, j)
			}
		}
	}
}

func TestCriticalPathLen(t *testing.T) {
	tr := chainTrace()
	g := BuildDepGraph(tr)
	// Serial chain: ALU(1) + Load(2) + Mul(3) + Branch(1) = 7.
	want := isa.Latency[isa.IntALU] + isa.Latency[isa.Load] + isa.Latency[isa.IntMul] + isa.Latency[isa.Branch]
	if got := CriticalPathLen(tr, g); got != want {
		t.Errorf("critical path %d, want %d", got, want)
	}
}

func TestCriticalPathIndependent(t *testing.T) {
	tr := &Trace{ID: 2, Insts: []isa.Inst{
		{Op: isa.IntALU, Dst: 1, Src1: isa.NoReg},
		{Op: isa.IntALU, Dst: 2, Src1: isa.NoReg},
		{Op: isa.IntALU, Dst: 3, Src1: isa.NoReg},
	}}
	if got := CriticalPathLen(tr, BuildDepGraph(tr)); got != 1 {
		t.Errorf("independent ops critical path %d, want 1", got)
	}
}

func TestNumMemOps(t *testing.T) {
	tr := chainTrace()
	loads, stores := tr.NumMemOps()
	if loads != 1 || stores != 0 {
		t.Errorf("got %d loads %d stores, want 1/0", loads, stores)
	}
}

func TestValidate(t *testing.T) {
	if err := chainTrace().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := chainTrace()
	bad.Insts = nil
	if bad.Validate() == nil {
		t.Error("empty trace accepted")
	}
	bad = chainTrace()
	bad.Insts[1].MemStream = 9
	if bad.Validate() == nil {
		t.Error("out-of-range stream accepted")
	}
	bad = chainTrace()
	bad.MispredictRate = 1.5
	if bad.Validate() == nil {
		t.Error("mispredict rate > 1 accepted")
	}
	bad = chainTrace()
	bad.Insts[0].Src1 = 200
	if bad.Validate() == nil {
		t.Error("invalid source register accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	s := &Schedule{TraceID: 1, Span: 1, Order: []uint16{0, 2, 1, 3}}
	if err := s.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	dup := &Schedule{TraceID: 1, Span: 1, Order: []uint16{0, 0, 1, 3}}
	if dup.Validate(4) == nil {
		t.Error("duplicate position accepted")
	}
	short := &Schedule{TraceID: 1, Span: 1, Order: []uint16{0, 1}}
	if short.Validate(4) == nil {
		t.Error("short order accepted")
	}
	span2 := &Schedule{TraceID: 1, Span: 2, Order: []uint16{0, 4, 1, 5, 2, 6, 3, 7}}
	if err := span2.Validate(4); err != nil {
		t.Errorf("valid span-2 schedule rejected: %v", err)
	}
	oob := &Schedule{TraceID: 1, Span: 1, Order: []uint16{0, 1, 2, 9}}
	if oob.Validate(4) == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestScheduleSizeBytes(t *testing.T) {
	s := &Schedule{Order: make([]uint16, 50)}
	if got := s.SizeBytes(); got != 50*isa.InstBytes+MetadataBytes {
		t.Errorf("size %d", got)
	}
}

func TestReplayableLimits(t *testing.T) {
	ok := &Schedule{Span: 1, MaxVersions: isa.OinOMaxVersions, MemOrder: make([]uint16, isa.OinOLSQSize)}
	if !ok.Replayable() {
		t.Error("schedule at hardware limits should replay")
	}
	manyV := &Schedule{Span: 1, MaxVersions: isa.OinOMaxVersions + 1}
	if manyV.Replayable() {
		t.Error("schedule over PRF version limit accepted")
	}
	manyM := &Schedule{Span: 1, MemOrder: make([]uint16, isa.OinOLSQSize+1)}
	if manyM.Replayable() {
		t.Error("schedule over LSQ capacity accepted")
	}
	// The LSQ drains per iteration: a span-2 schedule may hold 2x the
	// per-iteration bound.
	span2 := &Schedule{Span: 2, MemOrder: make([]uint16, 2*isa.OinOLSQSize)}
	if !span2.Replayable() {
		t.Error("span-2 schedule within per-iteration LSQ bound rejected")
	}
}

func TestDepGraphDeterministic(t *testing.T) {
	// Property: building the graph twice yields identical structure.
	err := quick.Check(func(seed uint8) bool {
		tr := chainTrace()
		tr.ID = ID(seed)
		a, b := BuildDepGraph(tr), BuildDepGraph(tr)
		for j := range a.Preds {
			if len(a.Preds[j]) != len(b.Preds[j]) {
				return false
			}
			for k := range a.Preds[j] {
				if a.Preds[j][k] != b.Preds[j][k] {
					return false
				}
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
