// The chaos e2e suite: the miraged API contract under injected failure.
// Every test name carries the Chaos prefix so CI's chaos-smoke job can run
// exactly this suite with -run Chaos under the race detector.
//
// The contract under test (DESIGN.md §10–§11):
//   - status mapping: saturation → 429 + Retry-After, drain → 503 +
//     Retry-After, deadline → 504, client-gone → 499 (telemetry only),
//     injected backend failure → 500 naming the cause (never a panic);
//   - cache hygiene: a failed flight is never memoized — the next
//     identical request gets a fresh flight, and once the backend
//     recovers the response is byte-identical to an unfaulted server's;
//   - graceful drain: Shutdown under load completes, and from the moment
//     it begins no new flight reaches the backend.
package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/stats"
)

// fakeInner is a deterministic, instantly-fast Backend: responses depend
// only on the request, so any cache-poisoning or cross-flight mixup shows
// up as a byte diff against a clean server. Counters expose how many
// flights actually reached the backend.
type fakeInner struct {
	runs    atomic.Int64
	reports atomic.Int64
}

func (f *fakeInner) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	f.runs.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &core.MixResult{
		Config:        cfg,
		STP:           0.5 + float64(len(cfg.Seed)%7)/10,
		EnergyPJ:      1000 + float64(len(cfg.Benchmarks)),
		AreaMM2:       6.5,
		OoOActiveFrac: 0.25,
		Cluster:       &cluster.Result{},
	}
	for i, name := range cfg.Benchmarks {
		res.Cluster.Apps = append(res.Cluster.Apps, cluster.AppResult{
			Name: name, Insts: 1000, Cycles: 2000, IPC: 0.5, MemoizedInsts: int64(i * 100),
		})
	}
	return res, nil
}

func (f *fakeInner) Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
	f.reports.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]*experiments.Report, len(ids))
	for i, id := range ids {
		out[i] = &experiments.Report{
			ID:    id,
			Table: stats.Table{Title: id, Headers: []string{"series"}, Rows: [][]string{{id}}},
		}
	}
	return out, nil
}

// newChaosServer builds a server over a chaos-wrapped fakeInner plus a
// clean twin server used as the byte-identical reference.
func newChaosServer(t *testing.T, ccfg chaos.Config, opt func(*server.Config)) (srv, ref *server.Server, inner *fakeInner, cb *chaos.Backend) {
	t.Helper()
	inj, err := chaos.NewInjector(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	inner = &fakeInner{}
	cb = chaos.Wrap(inner, inj)
	build := func(b server.Backend) *server.Server {
		cfg := server.Config{Backend: b, DefaultTimeout: 30 * time.Second}
		if opt != nil {
			opt(&cfg)
		}
		return server.New(cfg)
	}
	return build(cb), build(&fakeInner{}), inner, cb
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func runBody(seed string, timeoutMS int) string {
	return fmt.Sprintf(`{"mix": ["hmmer", "bzip2"], "seed": %q, "timeout_ms": %d}`, seed, timeoutMS)
}

// TestChaosAPIContractUnderFaultStorm hammers the server from concurrent
// clients while the backend injects every fault kind, and asserts each
// response obeys the contract. Run under -race this also proves the
// admission, cache and fault-injection paths are data-race free.
func TestChaosAPIContractUnderFaultStorm(t *testing.T) {
	srv, ref, _, cb := newChaosServer(t, chaos.Config{
		Seed:            "storm",
		PLatency:        0.25,
		PTransient:      0.25,
		PStall:          0.15,
		PPartial:        0.05,
		Latency:         2 * time.Millisecond,
		MaxFaultsPerKey: 5,
	}, func(c *server.Config) {
		c.MaxInFlight = 2
		c.MaxQueue = 2
	})

	const seeds = 4
	want := make([]string, seeds)
	for s := 0; s < seeds; s++ {
		rec := post(t, ref, "/v1/run", runBody(fmt.Sprintf("storm-%d", s), 5000))
		if rec.Code != 200 {
			t.Fatalf("reference server: status %d: %s", rec.Code, rec.Body)
		}
		want[s] = rec.Body.String()
	}

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				s := (w + i) % seeds
				rec := post(t, srv, "/v1/run", runBody(fmt.Sprintf("storm-%d", s), 250))
				switch rec.Code {
				case 200:
					if rec.Body.String() != want[s] {
						errs <- fmt.Sprintf("seed %d: 200 body diverged from clean server", s)
					}
				case 429:
					if rec.Header().Get("Retry-After") == "" {
						errs <- "429 without Retry-After"
					}
				case 504:
					if !strings.Contains(rec.Body.String(), "deadline exceeded") {
						errs <- fmt.Sprintf("504 body %q lacks cause", rec.Body)
					}
				case 500:
					// Every 500 must name the injected fault — a panic or
					// any other backend escape fails here.
					if !strings.Contains(rec.Body.String(), "chaos: injected") {
						errs <- fmt.Sprintf("500 body %q not from injection", rec.Body)
					}
				default:
					errs <- fmt.Sprintf("unexpected status %d: %s", rec.Code, rec.Body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The concurrent storm alone reaches the injector only a handful of
	// times — singleflight sharing and the response cache absorb most
	// requests, which is itself part of the contract. Force more flights
	// through the injector by evicting the cache between sequential posts,
	// so the deterministic fault schedule keeps unfolding; each response
	// still has to obey the same mapping.
	for s := 0; s < seeds; s++ {
		for i := 0; i < 12; i++ {
			srv.ResetCache()
			rec := post(t, srv, "/v1/run", runBody(fmt.Sprintf("storm-%d", s), 250))
			switch rec.Code {
			case 200, 429, 500, 504:
			default:
				t.Fatalf("seed %d: unexpected status %d: %s", s, rec.Code, rec.Body)
			}
		}
	}

	// The run must actually have injected hard failures — a vacuously
	// clean pass proves nothing about the contract.
	injected := cb.Injected()
	if injected[chaos.KindTransient]+injected[chaos.KindStall]+injected[chaos.KindPartial] == 0 {
		t.Fatalf("storm injected no hard faults: %v", injected)
	}

	// Recovery: the fault budget is finite, so every key eventually serves
	// the clean bytes again.
	for s := 0; s < seeds; s++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			rec := post(t, srv, "/v1/run", runBody(fmt.Sprintf("storm-%d", s), 1000))
			if rec.Code == 200 {
				if rec.Body.String() != want[s] {
					t.Fatalf("seed %d: post-recovery body diverged", s)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d never recovered (last status %d)", s, rec.Code)
			}
		}
	}
}

// TestChaosTransientRetryIsByteIdentical pins the exact eviction sequence:
// a transient flight fails, is not cached, fails again on its fresh
// flight, and after the fault budget drains the retry succeeds with bytes
// identical to an unfaulted server — and THAT flight is memoized.
func TestChaosTransientRetryIsByteIdentical(t *testing.T) {
	srv, ref, inner, _ := newChaosServer(t, chaos.Config{
		Seed: "retry", PTransient: 1, MaxFaultsPerKey: 2,
	}, nil)
	body := runBody("retry", 5000)
	want := post(t, ref, "/v1/run", body).Body.String()

	for attempt := 0; attempt < 2; attempt++ {
		rec := post(t, srv, "/v1/run", body)
		if rec.Code != 500 || !strings.Contains(rec.Body.String(), "chaos: injected") {
			t.Fatalf("attempt %d: status %d body %s, want injected 500", attempt, rec.Code, rec.Body)
		}
	}
	rec := post(t, srv, "/v1/run", body)
	if rec.Code != 200 {
		t.Fatalf("post-budget attempt: status %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.String() != want {
		t.Fatalf("recovered body diverged:\n got: %s\nwant: %s", rec.Body, want)
	}
	if got := inner.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (faults short-circuit, success memoizes)", got)
	}
	// The success IS cached: a fourth request is a pure cache hit.
	if rec := post(t, srv, "/v1/run", body); rec.Code != 200 || rec.Body.String() != want {
		t.Fatalf("cache hit: status %d", rec.Code)
	}
	if got := inner.runs.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the backend (%d runs)", got)
	}
}

// TestChaosStallMapsToGatewayTimeout: a hung backend must surface as 504
// within the request's own deadline, and the timed-out flight must not
// poison the cache for the retry.
func TestChaosStallMapsToGatewayTimeout(t *testing.T) {
	srv, ref, _, _ := newChaosServer(t, chaos.Config{
		Seed: "stall", PStall: 1, MaxFaultsPerKey: 1,
	}, nil)
	body := runBody("stall", 300)

	start := time.Now()
	rec := post(t, srv, "/v1/run", body)
	if rec.Code != 504 {
		t.Fatalf("stalled request: status %d, want 504: %s", rec.Code, rec.Body)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Fatalf("504 took %v, deadline was 300ms", e)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "deadline exceeded") {
		t.Fatalf("504 body %q", rec.Body)
	}
	want := post(t, ref, "/v1/run", body).Body.String()
	if rec := post(t, srv, "/v1/run", body); rec.Code != 200 || rec.Body.String() != want {
		t.Fatalf("retry after stall: status %d (want clean 200)", rec.Code)
	}
}

// TestChaosClientDisconnectRecords499: when the client abandons a stalled
// request, the handler must notice promptly and record the 499-class
// cancellation rather than hanging on the stalled flight.
func TestChaosClientDisconnectRecords499(t *testing.T) {
	srv, _, _, _ := newChaosServer(t, chaos.Config{
		Seed: "gone", PStall: 1, MaxFaultsPerKey: 1,
	}, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run",
		strings.NewReader(runBody("gone", 30_000)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the request reach the stalled backend, then walk away.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveRequests() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became active")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("abandoned request unexpectedly succeeded")
	}
	reg := srv.Telemetry().Reg()
	deadline = time.Now().Add(time.Second)
	for reg.Counter("server.requests.cancelled").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancellation never recorded (499 path)")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosDrainUnderLoad: Shutdown while chaos-delayed requests are in
// flight must complete, and from the moment it returns, zero new flights
// may reach the backend — late requests get 503 + Retry-After.
func TestChaosDrainUnderLoad(t *testing.T) {
	srv, _, inner, _ := newChaosServer(t, chaos.Config{
		Seed: "drain", PLatency: 1, Latency: 20 * time.Millisecond,
	}, func(c *server.Config) {
		c.MaxInFlight = 2
		c.MaxQueue = 4
	})

	const load = 6
	var wg sync.WaitGroup
	codes := make([]int, load)
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, srv, "/v1/run", runBody(fmt.Sprintf("drain-%d", i), 5000))
			codes[i] = rec.Code
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveRequests() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("load never became active")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	wg.Wait()
	for i, c := range codes {
		// In-flight work finishes (200); work caught by the drain is
		// rejected (503); nothing else is acceptable mid-drain.
		if c != 200 && c != 503 {
			t.Errorf("request %d: status %d, want 200 or 503", i, c)
		}
	}

	// After the drain: no request may start a new flight.
	before := inner.runs.Load()
	for i := 0; i < 4; i++ {
		rec := post(t, srv, "/v1/run", runBody(fmt.Sprintf("late-%d", i), 1000))
		if rec.Code != 503 {
			t.Fatalf("post-drain request: status %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("post-drain 503 without Retry-After")
		}
	}
	if after := inner.runs.Load(); after != before {
		t.Fatalf("drained server still ran %d new flights", after-before)
	}
}

// TestChaosPartialSweepSurfacesProgress: a sweep that dies midway must
// report its completed/total progress in the 500 detail, evict the flight,
// and serve the clean sweep on retry.
func TestChaosPartialSweepSurfacesProgress(t *testing.T) {
	srv, ref, inner, _ := newChaosServer(t, chaos.Config{
		Seed: "partial", PPartial: 1, MaxFaultsPerKey: 1,
	}, func(c *server.Config) {
		c.Scales = map[string]experiments.Scale{"quick": {Name: "quick"}}
	})
	body := `{"scale": "quick", "timeout_ms": 5000}`

	rec := post(t, srv, "/v1/sweep", body)
	if rec.Code != 500 {
		t.Fatalf("partial sweep: status %d: %s", rec.Code, rec.Body)
	}
	var er struct {
		Error  string `json:"error"`
		Detail *struct {
			CompletedJobs int `json:"completed_jobs"`
			TotalJobs     int `json:"total_jobs"`
		} `json:"detail"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("500 body not JSON: %v: %s", err, rec.Body)
	}
	if er.Detail == nil || er.Detail.TotalJobs != len(experiments.SweepIDs) ||
		er.Detail.CompletedJobs < 0 || er.Detail.CompletedJobs >= er.Detail.TotalJobs {
		t.Fatalf("partial detail = %+v, want 0 <= completed < %d", er.Detail, len(experiments.SweepIDs))
	}
	if inner.reports.Load() != 0 {
		t.Fatalf("partial fault leaked through to the backend (%d calls)", inner.reports.Load())
	}

	want := post(t, ref, "/v1/sweep", body).Body.String()
	rec = post(t, srv, "/v1/sweep", body)
	if rec.Code != 200 || rec.Body.String() != want {
		t.Fatalf("sweep retry: status %d, byte-identical=%v", rec.Code, rec.Body.String() == want)
	}
	if inner.reports.Load() != 1 {
		t.Fatalf("recovered sweep ran backend %d times, want 1", inner.reports.Load())
	}
}
