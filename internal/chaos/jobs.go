package chaos

import (
	"sync"
	"time"

	"repro/internal/runner"
)

// WrapJobs returns a copy of jobs with fault injection spliced in front of
// every Run function. Jobs have no context of their own, so context-shaped
// faults degrade to the nearest job-shaped equivalent: KindStall and
// KindPartial fail like KindTransient (an error wrapping
// runner.ErrTransient, which runner.Run surfaces as a *runner.JobError),
// and KindLatency sleeps inline. Attempt numbers advance per job name
// across the returned slice's lifetime, so re-running a wrapped job list —
// a retry loop, a cache-evicted flight — replays the injector's
// deterministic fault schedule for each job.
//
// WrapJobs is a function rather than an Injector method because Go methods
// cannot introduce type parameters.
func WrapJobs[T any](inj *Injector, jobs []runner.Job[T]) []runner.Job[T] {
	var mu sync.Mutex
	state := make(map[string]*keyState, len(jobs))
	out := make([]runner.Job[T], len(jobs))
	for i, j := range jobs {
		inner := j.Run
		name := j.Name
		out[i] = runner.Job[T]{
			Name: name,
			Run: func() (T, error) {
				mu.Lock()
				st := state[name]
				if st == nil {
					st = &keyState{}
					state[name] = st
				}
				f := inj.Plan("job|"+name, st.attempts, st.faults)
				st.attempts++
				if f.Kind.Failing() {
					st.faults++
				}
				mu.Unlock()
				switch f.Kind {
				case KindLatency:
					time.Sleep(f.Delay)
				case KindTransient, KindStall, KindPartial:
					var zero T
					return zero, transientErr("job|" + name)
				}
				return inner()
			},
		}
	}
	return out
}
