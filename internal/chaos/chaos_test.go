package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/runner"
)

func mustInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInjectorRejectsBadProbabilities(t *testing.T) {
	for _, cfg := range []Config{
		{PLatency: -0.1},
		{PTransient: 1.5},
		{PStall: 2},
		{PPartial: -1},
	} {
		if _, err := NewInjector(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	cfg := Config{
		Seed: "det", PLatency: 0.3, PTransient: 0.3, PStall: 0.2, PPartial: 0.1,
	}
	a, b := mustInjector(t, cfg), mustInjector(t, cfg)
	for n := 0; n < 200; n++ {
		fa := a.Plan("some-key", n, 0)
		fb := b.Plan("some-key", n, 0)
		if fa != fb {
			t.Fatalf("attempt %d diverged: %+v vs %+v", n, fa, fb)
		}
	}
	// A different seed must produce a different schedule (with 200 draws at
	// these rates, identical schedules mean the seed is being ignored).
	c := mustInjector(t, Config{
		Seed: "other", PLatency: 0.3, PTransient: 0.3, PStall: 0.2, PPartial: 0.1,
	})
	same := true
	for n := 0; n < 200 && same; n++ {
		same = a.Plan("some-key", n, 0) == c.Plan("some-key", n, 0)
	}
	if same {
		t.Fatal("schedules identical across different seeds")
	}
}

func TestPlanCoversEveryKind(t *testing.T) {
	in := mustInjector(t, Config{
		Seed: "cover", PLatency: 0.2, PTransient: 0.2, PStall: 0.2, PPartial: 0.2,
	})
	seen := map[Kind]int{}
	for n := 0; n < 500; n++ {
		f := in.Plan("k", n, 0)
		seen[f.Kind]++
		if f.Kind == KindLatency && f.Delay <= 0 {
			t.Fatalf("latency fault with non-positive delay: %+v", f)
		}
		if f.Kind == KindPartial && (f.Frac <= 0 || f.Frac >= 1) {
			t.Fatalf("partial fault with frac %v outside (0, 1)", f.Frac)
		}
	}
	for _, k := range []Kind{KindNone, KindLatency, KindTransient, KindStall, KindPartial} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn in 500 attempts", k)
		}
	}
}

func TestFaultBudgetGuaranteesRecovery(t *testing.T) {
	in := mustInjector(t, Config{
		Seed: "budget", PTransient: 1, MaxFaultsPerKey: 3,
	})
	faults := 0
	for n := 0; n < 10; n++ {
		f := in.Plan("k", n, faults)
		if f.Kind.Failing() {
			faults++
		}
		if n < 3 && f.Kind != KindTransient {
			t.Fatalf("attempt %d: got %v, want transient while budget remains", n, f.Kind)
		}
		if n >= 3 && f.Kind.Failing() {
			t.Fatalf("attempt %d: %v injected past the %d-fault budget", n, f.Kind, 3)
		}
	}
}

func TestLatencyDoesNotConsumeBudget(t *testing.T) {
	in := mustInjector(t, Config{
		Seed: "lat", PLatency: 1, PTransient: 1, MaxFaultsPerKey: 1,
	})
	// PLatency=1 wins every draw; the budget must stay untouched, so the
	// kind never degrades to none.
	for n := 0; n < 20; n++ {
		if f := in.Plan("k", n, 0); f.Kind != KindLatency {
			t.Fatalf("attempt %d: got %v, want latency", n, f.Kind)
		}
	}
}

func TestWrapJobsInjectsAndRecovers(t *testing.T) {
	in := mustInjector(t, Config{
		Seed: "jobs", PTransient: 1, MaxFaultsPerKey: 2,
	})
	ran := 0
	jobs := WrapJobs(in, []runner.Job[int]{
		{Name: "j0", Run: func() (int, error) { ran++; return 42, nil }},
	})
	// First two executions fail transiently, the third runs the real job.
	for attempt := 0; attempt < 2; attempt++ {
		_, err := runner.Run(context.Background(), 1, jobs)
		if !errors.Is(err, runner.ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want transient", attempt, err)
		}
		var je *runner.JobError
		if !errors.As(err, &je) || je.Name != "j0" {
			t.Fatalf("attempt %d: err = %v, want JobError for j0", attempt, err)
		}
	}
	res, err := runner.Run(context.Background(), 1, jobs)
	if err != nil || res[0] != 42 {
		t.Fatalf("post-budget run: res=%v err=%v", res, err)
	}
	if ran != 1 {
		t.Fatalf("inner job ran %d times, want 1", ran)
	}
}

func TestWrapJobsLatencySleepsInline(t *testing.T) {
	in := mustInjector(t, Config{
		Seed: "sleepy", PLatency: 1, Latency: 2 * time.Millisecond,
	})
	jobs := WrapJobs(in, []runner.Job[int]{
		{Name: "j", Run: func() (int, error) { return 1, nil }},
	})
	start := time.Now()
	res, err := runner.Run(context.Background(), 1, jobs)
	if err != nil || res[0] != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if time.Since(start) <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindNone, KindLatency, KindTransient, KindStall, KindPartial} {
		if k.String() == "kind?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
