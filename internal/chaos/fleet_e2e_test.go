// Fleet e2e under chaos: a coordinator sharding over three real miraged
// worker stacks (server.Server over chaos-wrapped backends) must serve
// byte-identical responses to a single clean node while workers stall,
// fail transiently, die mid-request and restart. Test names carry the
// Chaos prefix so CI's chaos-smoke job runs this suite under -race.
//
// The fleet contract (DESIGN.md §14):
//   - sharded responses are byte-identical to a single-node server's;
//   - a worker killed mid-run costs no request: transport errors fail over
//     to the next replica on the ring transparently;
//   - a draining worker still answers cache peering, so its keys are
//     served from its cache — not recomputed — until the ring re-shards;
//   - a restarted worker re-enters warm: its disk store serves the keys it
//     owned before the restart with zero new simulations.

package chaos_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/store"
)

// mortal wraps a worker handler so tests can kill and resurrect it behind
// a stable URL (the ring addresses workers by URL, so a restarted worker
// must come back at the same address, exactly like a restarted process
// re-binding its port).
type mortal struct {
	mu sync.Mutex
	h  http.Handler
}

func (m *mortal) set(h http.Handler) {
	m.mu.Lock()
	m.h = h
	m.mu.Unlock()
}

func (m *mortal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	h := m.h
	m.mu.Unlock()
	if h == nil {
		// Dead: abort the connection so clients see a transport error, the
		// same shape as a killed process.
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, r)
}

// fleetPeerSecret is the shared peering secret every e2e worker runs with,
// so the whole suite exercises the authenticated peering path.
const fleetPeerSecret = "chaos-fleet-secret"

// fleetWorker is one worker slot: a stable URL fronting a (replaceable)
// server.Server over its own backend and optional disk store.
type fleetWorker struct {
	inner *fakeInner
	srv   *server.Server
	st    *store.Store
	mort  *mortal
	ts    *httptest.Server
	peers []string // fleet membership: the cache-peering allowlist
}

// newFleetWorkers allocates n workers' stable URL slots, then boots each
// with the full fleet allowlist and shared secret wired — the in-process
// equivalent of every worker getting -peers/-peer-auth. dirs[i] != ""
// adds a persistent store to worker i.
func newFleetWorkers(t *testing.T, n int, dirs []string, opt func(int, *server.Config)) []*fleetWorker {
	t.Helper()
	ws := make([]*fleetWorker, n)
	peers := make([]string, n)
	for i := range ws {
		ws[i] = &fleetWorker{mort: &mortal{}}
		ws[i].ts = httptest.NewServer(ws[i].mort)
		t.Cleanup(ws[i].ts.Close)
		peers[i] = ws[i].ts.URL
	}
	for i, w := range ws {
		w.peers = peers
		dir := ""
		if dirs != nil {
			dir = dirs[i]
		}
		var o func(*server.Config)
		if opt != nil {
			i := i
			o = func(c *server.Config) { opt(i, c) }
		}
		w.boot(t, dir, o)
	}
	return ws
}

// boot (re)builds the worker's server stack — process start or restart.
func (w *fleetWorker) boot(t *testing.T, dir string, opt func(*server.Config)) {
	t.Helper()
	w.inner = &fakeInner{}
	cfg := server.Config{
		Backend:        w.inner,
		DefaultTimeout: 30 * time.Second,
		PeerFetch:      fleet.NewPeerFetch(nil, w.peers, fleetPeerSecret),
		PeerAuth:       fleetPeerSecret,
	}
	if dir != "" {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		w.st = st
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	if opt != nil {
		opt(&cfg)
	}
	w.srv = server.New(cfg)
	w.mort.set(w.srv)
}

// kill simulates the process dying: every request aborts at the transport
// layer, including health probes and peering.
func (w *fleetWorker) kill() {
	w.mort.set(nil)
	if w.st != nil {
		w.st.Close()
	}
}

func newFleetCoordinator(t *testing.T, workers []*fleetWorker, opt func(*fleet.Config)) *fleet.Coordinator {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}
	cfg := fleet.Config{
		Workers:       urls,
		ProbeInterval: 50 * time.Millisecond,
		HedgeMin:      30 * time.Millisecond,
		HedgeMax:      30 * time.Millisecond,
	}
	if opt != nil {
		opt(&cfg)
	}
	c, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// through posts a body at the coordinator over real HTTP.
func through(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	var resp *http.Response
	var err error
	if body != "" {
		resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	} else {
		resp, err = http.Get(ts.URL + path)
	}
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: reading body: %v", path, err)
	}
	return resp, string(b)
}

// TestChaosFleetByteIdenticalUnderFaults: three workers injecting stalls,
// transients and partials must — through hedging, failover and retries —
// converge every key onto bytes identical to a clean single-node server.
func TestChaosFleetByteIdenticalUnderFaults(t *testing.T) {
	workers := newFleetWorkers(t, 3, nil, func(i int, c *server.Config) {
		inj, err := chaos.NewInjector(chaos.Config{
			Seed:            fmt.Sprintf("fleet-w%d", i),
			PTransient:      0.3,
			PStall:          0.3,
			PPartial:        0.2,
			MaxFaultsPerKey: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Backend = chaos.Wrap(c.Backend, inj)
	})
	coord := newFleetCoordinator(t, workers, nil)
	front := httptest.NewServer(coord)
	defer front.Close()
	ref := server.New(server.Config{Backend: &fakeInner{}, DefaultTimeout: 30 * time.Second})

	const seeds = 5
	for s := 0; s < seeds; s++ {
		body := runBody(fmt.Sprintf("fleet-%d", s), 2000)
		want := post(t, ref, "/v1/run", body)
		if want.Code != 200 {
			t.Fatalf("reference: status %d", want.Code)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, got := through(t, front, "/v1/run", body)
			if resp.StatusCode == 200 {
				if got != want.Body.String() {
					t.Fatalf("seed %d: fleet bytes diverged from single node:\n got: %s\nwant: %s",
						s, got, want.Body.String())
				}
				if resp.Header.Get("X-Mirage-Shard") == "" {
					t.Fatalf("seed %d: 200 without X-Mirage-Shard", s)
				}
				break
			}
			// Transients surface as 500s naming the injection; stalls as
			// 504s when every replica's budget conspires. Both are fixed by
			// retrying — anything else is a contract break.
			if resp.StatusCode != 500 && resp.StatusCode != 504 {
				t.Fatalf("seed %d: status %d: %s", s, resp.StatusCode, got)
			}
			if resp.StatusCode == 500 && !strings.Contains(got, "chaos: injected") {
				t.Fatalf("seed %d: 500 not from injection: %s", s, got)
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d never converged (last status %d)", s, resp.StatusCode)
			}
		}
	}

	// The sweep — the paper's Figures 7/8/9b — must converge too.
	sweepBody := `{"scale": "quick", "timeout_ms": 5000}`
	wantSweep := post(t, ref, "/v1/sweep", sweepBody)
	if wantSweep.Code != 200 {
		t.Fatalf("reference sweep: status %d", wantSweep.Code)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, got := through(t, front, "/v1/sweep", sweepBody)
		if resp.StatusCode == 200 {
			if got != wantSweep.Body.String() {
				t.Fatal("fleet sweep bytes diverged from single node")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never converged (last status %d)", resp.StatusCode)
		}
	}
}

// TestChaosFleetSurvivesWorkerKill: killing a worker mid-run loses no
// request — transport errors fail over to the next replica before the
// prober even notices — and the prober then re-shards it out of the ring.
func TestChaosFleetSurvivesWorkerKill(t *testing.T) {
	workers := newFleetWorkers(t, 3, nil, nil)
	coord := newFleetCoordinator(t, workers, nil)
	coord.ProbeOnce(context.Background())
	front := httptest.NewServer(coord)
	defer front.Close()
	ref := server.New(server.Config{Backend: &fakeInner{}, DefaultTimeout: 30 * time.Second})

	const seeds = 24
	want := make([]string, seeds)
	for s := range want {
		rec := post(t, ref, "/v1/run", runBody(fmt.Sprintf("kill-%d", s), 5000))
		if rec.Code != 200 {
			t.Fatalf("reference seed %d: status %d", s, rec.Code)
		}
		want[s] = rec.Body.String()
	}

	for s := 0; s < seeds; s++ {
		if s == seeds/3 {
			// Kill one worker mid-sweep-of-keys, probe NOT yet run: the next
			// requests owned by it must fail over on the transport error.
			workers[1].kill()
		}
		if s == seeds/2 {
			// Now let the prober notice; the ring re-shards around the corpse.
			coord.ProbeOnce(context.Background())
			if !coord.Ring().Down(workers[1].ts.URL) {
				t.Fatal("prober did not evict the killed worker")
			}
		}
		resp, got := through(t, front, "/v1/run", runBody(fmt.Sprintf("kill-%d", s), 5000))
		if resp.StatusCode != 200 {
			t.Fatalf("seed %d: status %d (a worker kill must never cost a request): %s",
				s, resp.StatusCode, got)
		}
		if got != want[s] {
			t.Fatalf("seed %d: bytes diverged after worker kill", s)
		}
	}
	reg := coord.Telemetry().Reg()
	if reg.Counter("fleet.ring.reshards").Value() == 0 {
		t.Fatal("kill never re-sharded the ring")
	}
}

// TestChaosFleetPeeringAndWarmRestart walks the full lifecycle the fleet
// exists for:
//  1. the owner computes a key once;
//  2. the owner drains — requests fail over, but the replica PEERS the
//     bytes off the draining owner's cache instead of recomputing;
//  3. the prober evicts the drained owner; the replica now serves from its
//     own cache;
//  4. the owner restarts and re-enters the ring warm: its disk store
//     serves the key with zero new simulations.
//
// Through all of it, the fleet simulates the key exactly once.
func TestChaosFleetPeeringAndWarmRestart(t *testing.T) {
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	workers := newFleetWorkers(t, 3, dirs, nil)
	coord := newFleetCoordinator(t, workers, nil)
	coord.ProbeOnce(context.Background())
	front := httptest.NewServer(coord)
	defer front.Close()

	totalRuns := func() int64 {
		var n int64
		for _, w := range workers {
			n += w.inner.runs.Load()
		}
		return n
	}

	// Derive the canonical key exactly as the coordinator does and find
	// which worker the ring makes its owner.
	const seed = "peer-0"
	key, err := server.CanonicalRunKey(&server.RunRequest{Mix: []string{"hmmer", "bzip2"}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ownerURL, ok := coord.Ring().Owner(key)
	if !ok {
		t.Fatal("ring has no owner for the key")
	}
	ownerIdx := -1
	for i, w := range workers {
		if w.ts.URL == ownerURL {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q is not a known worker", ownerURL)
	}
	body := runBody(seed, 5000)
	var want string
	owner := workers[ownerIdx]

	// 1. First request: the owner simulates, everyone else stays idle.
	resp, got := through(t, front, "/v1/run", body)
	if resp.StatusCode != 200 {
		t.Fatalf("initial request: status %d", resp.StatusCode)
	}
	want = got
	if shard := resp.Header.Get("X-Mirage-Shard"); shard != owner.ts.URL {
		t.Fatalf("served by %s, ring says owner is %s", shard, owner.ts.URL)
	}
	if totalRuns() != 1 {
		t.Fatalf("initial request ran %d simulations, want 1", totalRuns())
	}
	waitForStorePut(t, owner.st)

	// 2. Drain the owner (not yet probed out): the coordinator fails over
	// on the 503, and the replica peers the bytes off the draining owner —
	// its simulation-rejecting drain gate does not cover the peering
	// endpoint, so cached keys stay reachable to the fleet while it drains.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := owner.srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	resp, got = through(t, front, "/v1/run", body)
	if resp.StatusCode != 200 {
		t.Fatalf("failover request: status %d: %s", resp.StatusCode, got)
	}
	if got != want {
		t.Fatal("failover bytes diverged")
	}
	servedBy := resp.Header.Get("X-Mirage-Shard")
	if servedBy == owner.ts.URL {
		t.Fatal("draining owner served a simulation request")
	}
	if totalRuns() != 1 {
		t.Fatalf("failover recomputed the key (%d total runs, want 1 via peering)", totalRuns())
	}
	var replica *fleetWorker
	for _, w := range workers {
		if w.ts.URL == servedBy {
			replica = w
		}
	}
	if replica == nil {
		t.Fatalf("shard %q is not a known worker", servedBy)
	}
	if hits := replica.srv.Telemetry().Reg().Counter("server.peer.hits").Value(); hits != 1 {
		t.Fatalf("replica server.peer.hits = %d, want 1", hits)
	}

	// 3. The prober evicts the drained owner; the replica serves from its
	// own cache now (it adopted the key when it peered the bytes).
	coord.ProbeOnce(context.Background())
	if !coord.Ring().Down(owner.ts.URL) {
		t.Fatal("prober did not evict the draining owner")
	}
	resp, got = through(t, front, "/v1/run", body)
	if resp.StatusCode != 200 || got != want {
		t.Fatalf("post-evict request: status %d, identical=%v", resp.StatusCode, got == want)
	}
	if totalRuns() != 1 {
		t.Fatalf("post-evict request recomputed the key (%d total runs)", totalRuns())
	}

	// 4. Kill the owner process, restart it over the same store directory,
	// and let the prober re-admit it. It owns the key again — and serves it
	// from disk, warm, without a single new simulation.
	preRestart := totalRuns() // the owner's counter dies with its process
	owner.kill()
	coord.ProbeOnce(context.Background())
	owner.boot(t, dirs[ownerIdx], nil)
	coord.ProbeOnce(context.Background())
	if coord.Ring().Down(owner.ts.URL) {
		t.Fatal("restarted worker did not re-enter the ring")
	}
	resp, got = through(t, front, "/v1/run", body)
	if resp.StatusCode != 200 || got != want {
		t.Fatalf("warm-restart request: status %d, identical=%v", resp.StatusCode, got == want)
	}
	if shard := resp.Header.Get("X-Mirage-Shard"); shard != owner.ts.URL {
		t.Fatalf("restarted owner did not reclaim its key (served by %s)", shard)
	}
	if resp.Header.Get("X-Cache") != "disk" {
		t.Fatalf("warm restart served X-Cache %q, want disk", resp.Header.Get("X-Cache"))
	}
	if owner.inner.runs.Load() != 0 {
		t.Fatalf("restarted owner resimulated (%d runs), store should have served", owner.inner.runs.Load())
	}
	// The restarted owner got a fresh backend, so its pre-restart counter
	// (holding the lifecycle's single simulation) is gone; no LIVE backend
	// may have simulated since.
	if preRestart != 1 || totalRuns() != 0 {
		t.Fatalf("lifecycle ran %d simulations before restart and %d after, want exactly 1 fleet-wide",
			preRestart, totalRuns())
	}
}

// waitForStorePut blocks until the store has absorbed at least one write
// (write-through is asynchronous with respect to the response).
func waitForStorePut(t *testing.T, st *store.Store) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Puts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store never absorbed the write-through")
		}
		time.Sleep(time.Millisecond)
	}
}
