// Chaos variant of the warm-start e2e: a fault-injecting backend hammered
// through a store-backed server must never leave a poisoned entry on disk.
// After a restart, every persisted response is byte-identical to a clean
// server's, and keys that only ever failed are absent from the store.

package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/store"
)

// TestChaosStoreNeverPoisoned drives seeds through a chaos-wrapped backend
// (transient and partial failures) with client retries until each succeeds,
// then restarts onto the same store directory with a backend that injects a
// fault on every call. Each previously-succeeded key must come back 200
// from disk, byte-identical to an unfaulted reference server — proving
// failed flights never wrote through.
func TestChaosStoreNeverPoisoned(t *testing.T) {
	dir := t.TempDir()

	inj, err := chaos.NewInjector(chaos.Config{
		Seed:            "store-poison",
		PTransient:      0.45,
		PPartial:        0.15,
		MaxFaultsPerKey: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := &fakeInner{}
	st1, err := store.Open(dir, store.Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Backend:        chaos.Wrap(inner, inj),
		DefaultTimeout: 30 * time.Second,
		Store:          st1,
	})
	ref := server.New(server.Config{
		Backend:        &fakeInner{},
		DefaultTimeout: 30 * time.Second,
	})

	const seeds = 5
	want := make([]string, seeds)
	for s := 0; s < seeds; s++ {
		rec := post(t, ref, "/v1/run", runBody(fmt.Sprintf("poison-%d", s), 5000))
		if rec.Code != 200 {
			t.Fatalf("reference server: status %d: %s", rec.Code, rec.Body)
		}
		want[s] = rec.Body.String()
	}

	// Retry each seed until it succeeds; the injector's per-key fault
	// budget guarantees convergence. Every non-200 along the way is a
	// failed flight that must not have written through.
	failures := 0
	for s := 0; s < seeds; s++ {
		body := runBody(fmt.Sprintf("poison-%d", s), 5000)
		ok := false
		for attempt := 0; attempt < 8 && !ok; attempt++ {
			rec := post(t, srv, "/v1/run", body)
			switch rec.Code {
			case 200:
				if rec.Body.String() != want[s] {
					t.Fatalf("seed %d: faulted server diverged from reference:\n got: %s\nwant: %s",
						s, rec.Body, want[s])
				}
				ok = true
			case 500, 504:
				failures++
			default:
				t.Fatalf("seed %d attempt %d: unexpected status %d: %s", s, attempt, rec.Code, rec.Body)
			}
		}
		if !ok {
			t.Fatalf("seed %d never succeeded within the fault budget", s)
		}
	}
	if failures == 0 {
		t.Fatal("chaos injected no failures; the test proved nothing — tune the fault probabilities")
	}

	// Wait out the asynchronous write-through, then "crash".
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && st1.Stats().Puts < seeds {
		time.Sleep(time.Millisecond)
	}
	if got := st1.Stats().Puts; got != seeds {
		t.Fatalf("store absorbed %d puts, want exactly %d (one per succeeded key)", got, seeds)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: every call into the backend now faults deterministically, so
	// only the store can produce a 200. All persisted entries must match
	// the clean reference byte for byte.
	inj2, err := chaos.NewInjector(chaos.Config{
		Seed:            "store-poison-restart",
		PTransient:      1.0,
		MaxFaultsPerKey: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != seeds {
		t.Fatalf("recovered store holds %d entries, want %d", got, seeds)
	}
	if stats := st2.Stats(); stats.CorruptRecords != 0 || stats.TornBytes != 0 {
		t.Fatalf("clean shutdown left a damaged log: %+v", stats)
	}
	srv2 := server.New(server.Config{
		Backend:        chaos.Wrap(&fakeInner{}, inj2),
		DefaultTimeout: 30 * time.Second,
		Store:          st2,
	})
	for s := 0; s < seeds; s++ {
		rec := post(t, srv2, "/v1/run", runBody(fmt.Sprintf("poison-%d", s), 5000))
		if rec.Code != 200 {
			t.Fatalf("seed %d after restart: status %d (store should have served it): %s",
				s, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Cache"); got != "disk" {
			t.Fatalf("seed %d after restart: X-Cache = %q, want disk", s, got)
		}
		if rec.Body.String() != want[s] {
			t.Fatalf("seed %d: persisted bytes diverge from reference:\n got: %s\nwant: %s",
				s, rec.Body, want[s])
		}
	}

	// A key that never succeeded must miss the store and surface the
	// backend fault, not a fabricated response.
	rec := post(t, srv2, "/v1/run", runBody("never-succeeded", 5000))
	if rec.Code != 500 {
		t.Fatalf("unseen key after restart: status %d, want 500 (all-faulting backend): %s",
			rec.Code, rec.Body)
	}
}
