package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/server"
)

// Backend wraps a server.Backend with fault injection. Each operation is
// identified by a canonical key (the same request always maps to the same
// key, mirroring the server's singleflight keys), and successive calls for
// a key advance its attempt counter, so the injector's deterministic plan
// unfolds identically across runs: attempt 0 of a given request always
// draws the same fault.
type Backend struct {
	inner server.Backend
	inj   *Injector

	mu    sync.Mutex
	state map[string]*keyState
	stats map[Kind]int
}

type keyState struct {
	attempts int
	faults   int // failing faults absorbed (budget consumption)
}

// Wrap builds a fault-injecting Backend around inner.
func Wrap(inner server.Backend, inj *Injector) *Backend {
	return &Backend{
		inner: inner,
		inj:   inj,
		state: make(map[string]*keyState),
		stats: make(map[Kind]int),
	}
}

// Injected reports how many faults of each kind this backend has injected
// (KindNone counts untouched calls).
func (b *Backend) Injected() map[Kind]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Kind]int, len(b.stats))
	for k, v := range b.stats {
		out[k] = v
	}
	return out
}

// plan advances key's attempt counter and returns this attempt's fault.
func (b *Backend) plan(key string) Fault {
	b.mu.Lock()
	st := b.state[key]
	if st == nil {
		st = &keyState{}
		b.state[key] = st
	}
	f := b.inj.Plan(key, st.attempts, st.faults)
	st.attempts++
	if f.Kind.Failing() {
		st.faults++
	}
	b.stats[f.Kind]++
	b.mu.Unlock()
	return f
}

// transientErr is the injected load-dependent failure; it wraps
// runner.ErrTransient so the server's response cache evicts the flight.
func transientErr(key string) error {
	return fmt.Errorf("chaos: injected transient failure on %s: %w", key, runner.ErrTransient)
}

// delay sleeps for f.Delay or until ctx ends.
func delay(ctx context.Context, f Fault) error {
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runKey canonicalizes a simulation config into an operation key, mirroring
// the fields the server folds into its cache key.
func runKey(cfg core.Config) string {
	return fmt.Sprintf("run|%s|%s|%s|%s|%d",
		cfg.Topology, cfg.Policy, strings.Join(cfg.Benchmarks, ","), cfg.Seed, cfg.TargetInsts)
}

// reportsKey canonicalizes a reports request into an operation key.
func reportsKey(s experiments.Scale, ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	return fmt.Sprintf("reports|%s|%s", s.Name, strings.Join(sorted, ","))
}

// Run implements server.Backend. KindPartial degrades to KindTransient
// here: a single simulation has no batch to fail midway.
func (b *Backend) Run(ctx context.Context, cfg core.Config) (*core.MixResult, error) {
	key := runKey(cfg)
	f := b.plan(key)
	if f.Kind != KindNone {
		// Make the injection observable: the flight's request trace gains a
		// fault attribute (surfacing in access-log lines) and the registry
		// carried by ctx counts server.chaos.faults.<kind>.
		server.MarkFault(ctx, f.Kind.String())
	}
	switch f.Kind {
	case KindLatency:
		if err := delay(ctx, f); err != nil {
			return nil, err
		}
	case KindTransient, KindPartial:
		return nil, transientErr(key)
	case KindStall:
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.inner.Run(ctx, cfg)
}

// Reports implements server.Backend.
func (b *Backend) Reports(ctx context.Context, s experiments.Scale, ids []string) ([]*experiments.Report, error) {
	key := reportsKey(s, ids)
	f := b.plan(key)
	if f.Kind != KindNone {
		server.MarkFault(ctx, f.Kind.String())
	}
	switch f.Kind {
	case KindLatency:
		if err := delay(ctx, f); err != nil {
			return nil, err
		}
	case KindTransient:
		return nil, transientErr(key)
	case KindStall:
		<-ctx.Done()
		return nil, ctx.Err()
	case KindPartial:
		total := len(ids)
		if total == 0 {
			total = 1
		}
		completed := int(f.Frac * float64(total))
		if completed >= total {
			completed = total - 1
		}
		return nil, &runner.Canceled{
			Completed: completed,
			Total:     total,
			Cause:     transientErr(key),
		}
	}
	return b.inner.Reports(ctx, s, ids)
}
