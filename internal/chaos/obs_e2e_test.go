// Chaos observability e2e: injected faults must be visible from the
// outside — as server.chaos.faults.<kind> counters, as a fault field on the
// access-log entries of affected request IDs, and without disturbing the
// span timeline or Prometheus exposition. Test names carry the Chaos prefix
// so CI's chaos-smoke job (-run Chaos) covers them.

package chaos_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"log/slog"

	"repro/internal/chaos"
	"repro/internal/server"
)

// obsBuf is a goroutine-safe access-log destination.
type obsBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *obsBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *obsBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// findLine returns the access-log entry for a request ID, or nil.
func findLine(t *testing.T, b *obsBuf, id string) map[string]any {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line not JSON: %q: %v", line, err)
		}
		if m["msg"] == "request" && m["request_id"] == id {
			return m
		}
	}
	return nil
}

func postID(t *testing.T, h http.Handler, path, body, id string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestChaosFaultsVisibleInTelemetryAndAccessLog injects a deterministic
// transient fault and asserts it surfaces as a server.chaos.faults.transient
// counter (JSON and Prometheus exposition alike) and as a fault field on the
// affected request's log line — while the recovered retry logs clean.
func TestChaosFaultsVisibleInTelemetryAndAccessLog(t *testing.T) {
	var buf obsBuf
	srv, _, _, cb := newChaosServer(t, chaos.Config{
		Seed:            "obs-transient",
		PTransient:      1,
		MaxFaultsPerKey: 1,
	}, func(cfg *server.Config) {
		cfg.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	})

	// Attempt 1: the injected transient fails the flight with a 500.
	rec := postID(t, srv, "/v1/run", runBody("obs", 0), "chaos-faulted")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted attempt status = %d, want 500", rec.Code)
	}
	reg := srv.Telemetry().Reg()
	if got := reg.Counter("server.chaos.faults.transient").Value(); got != 1 {
		t.Errorf("server.chaos.faults.transient = %d, want 1", got)
	}
	line := findLine(t, &buf, "chaos-faulted")
	if line == nil {
		t.Fatalf("no access-log line for the faulted request:\n%s", buf.String())
	}
	if line["fault"] != "transient" {
		t.Errorf("faulted line fault = %v, want transient (line %v)", line["fault"], line)
	}
	if line["status"] != float64(http.StatusInternalServerError) {
		t.Errorf("faulted line status = %v, want 500", line["status"])
	}

	// Attempt 2: the per-key budget is spent, the retry recovers cleanly.
	rec = postID(t, srv, "/v1/run", runBody("obs", 0), "chaos-recovered")
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered attempt status = %d, want 200", rec.Code)
	}
	line = findLine(t, &buf, "chaos-recovered")
	if line == nil {
		t.Fatal("no access-log line for the recovered request")
	}
	if _, hasFault := line["fault"]; hasFault {
		t.Errorf("recovered line carries fault = %v, want none", line["fault"])
	}
	if got := reg.Counter("server.chaos.faults.transient").Value(); got != 1 {
		t.Errorf("fault counter moved on a clean flight: %d", got)
	}

	// The counter is scrapeable in the Prometheus exposition.
	mreq := httptest.NewRequest("GET", "/v1/metrics?format=prometheus", nil)
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, mreq)
	if !strings.Contains(mrec.Body.String(), "server_chaos_faults_transient 1") {
		t.Errorf("prometheus exposition missing chaos fault counter:\n%s", mrec.Body.String())
	}
	if got := cb.Injected()[chaos.KindTransient]; got != 1 {
		t.Errorf("backend injected stats = %d transients, want 1", got)
	}
}

// TestChaosColdSweepObservability is the acceptance e2e under the chaos
// backend: a cold /v1/sweep through a latency-injecting backend still yields
// the full observability picture — leader access-log line with the fault
// attribute, admission/simulate/encode spans in the trace export, and a
// finite per-route p99 in Prometheus format.
func TestChaosColdSweepObservability(t *testing.T) {
	var buf obsBuf
	srv, _, _, _ := newChaosServer(t, chaos.Config{
		Seed:     "obs-sweep",
		PLatency: 1,
	}, func(cfg *server.Config) {
		cfg.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	})

	rec := postID(t, srv, "/v1/sweep", `{"scale": "quick"}`, "chaos-sweep")
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", rec.Code, rec.Body.String())
	}
	line := findLine(t, &buf, "chaos-sweep")
	if line == nil {
		t.Fatalf("no access-log line for the sweep:\n%s", buf.String())
	}
	if line["route"] != "sweep" || line["cache"] != "miss" || line["role"] != "leader" {
		t.Errorf("sweep line = %v, want route=sweep cache=miss role=leader", line)
	}
	if line["fault"] != "latency" {
		t.Errorf("sweep line fault = %v, want latency", line["fault"])
	}

	treq := httptest.NewRequest("GET", "/debug/requests/trace", nil)
	trec := httptest.NewRecorder()
	srv.ServeHTTP(trec, treq)
	var events []map[string]any
	if err := json.Unmarshal(trec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace export not a JSON array: %v", err)
	}
	spans := map[string]bool{}
	for _, ev := range events {
		if args, _ := ev["args"].(map[string]any); args != nil && args["request_id"] == "chaos-sweep" {
			if name, _ := ev["name"].(string); name != "" {
				spans[name] = true
			}
		}
	}
	for _, want := range []string{"admission", "simulate", "encode"} {
		if !spans[want] {
			t.Errorf("span %q missing under chaos (have %v)", want, spans)
		}
	}

	p99 := srv.Telemetry().Reg().Histogram("server.http.latency_us.sweep").Quantile(0.99)
	if p99 <= 0 || math.IsInf(p99, 0) || math.IsNaN(p99) {
		t.Errorf("sweep latency p99 under chaos = %v, want finite and > 0", p99)
	}
}
