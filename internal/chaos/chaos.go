// Package chaos is a deterministic fault injector for the miraged service
// stack (DESIGN.md §11): it wraps a server.Backend (and runner job lists)
// with seeded latency spikes, transient errors, context-deadline blowouts
// and partial-sweep failures, so the e2e suite can prove the API contract —
// status mapping, Retry-After, cache hygiene, byte-identical retries,
// graceful drain — holds under the failures production infrastructure
// actually produces.
//
// Determinism is the point: every fault decision derives from
// (seed, operation key, attempt number) through internal/xrand, never from
// wall-clock or scheduling. A failing chaos run replays exactly from its
// seed, and two backends wrapped with the same seed fail identically.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/xrand"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// KindNone means the operation proceeds untouched.
	KindNone Kind = iota
	// KindLatency delays the operation, then lets it succeed. It models a
	// load spike; it consumes no fault budget because it is not a failure.
	KindLatency
	// KindTransient fails the operation with an error wrapping
	// runner.ErrTransient — the load-dependent failure class the response
	// cache must evict rather than memoize.
	KindTransient
	// KindStall blocks the operation until its context ends and returns
	// ctx.Err(), modeling a hung dependency. The server maps it to 504
	// (deadline) or 499 (client gone).
	KindStall
	// KindPartial fails a sweep midway with a *runner.Canceled carrying
	// completed/total progress, modeling a batch that died partway.
	KindPartial
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindLatency:
		return "latency"
	case KindTransient:
		return "transient"
	case KindStall:
		return "stall"
	case KindPartial:
		return "partial"
	}
	return "kind?"
}

// Config parameterizes an Injector. Probabilities are evaluated in the
// order latency, transient, stall, partial; at most one fault fires per
// attempt.
type Config struct {
	// Seed names the deterministic fault stream.
	Seed string
	// PLatency, PTransient, PStall, PPartial are per-attempt injection
	// probabilities in [0, 1].
	PLatency   float64
	PTransient float64
	PStall     float64
	PPartial   float64
	// Latency bounds the injected delay for KindLatency; the actual delay
	// is uniform in (0, Latency]. Default 5ms.
	Latency time.Duration
	// MaxFaultsPerKey bounds how many *failing* faults (transient, stall,
	// partial) one operation key absorbs; past it the key succeeds
	// unconditionally. This guarantees recovery: a retried request
	// eventually gets a clean flight, which the contract tests rely on.
	// 0 means unlimited. Latency injections do not consume the budget.
	MaxFaultsPerKey int
}

// Injector decides faults deterministically. Safe for concurrent use: the
// decision for (key, attempt) is a pure function of the seed, and the
// per-key attempt and budget counters are kept in a mutex-free way via
// Plan's explicit attempt numbers — callers that need automatic attempt
// tracking use the Backend wrapper, which serializes its counter map.
type Injector struct {
	cfg Config
}

// NewInjector validates cfg and builds an Injector.
func NewInjector(cfg Config) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PLatency", cfg.PLatency},
		{"PTransient", cfg.PTransient},
		{"PStall", cfg.PStall},
		{"PPartial", cfg.PPartial},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("chaos: %s = %v out of [0, 1]", p.name, p.v)
		}
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg}, nil
}

// Fault is one planned injection.
type Fault struct {
	Kind Kind
	// Delay is the injected latency for KindLatency.
	Delay time.Duration
	// Frac positions a partial failure within a batch: a KindPartial
	// fault fails after ⌈Frac·total⌉ of the batch completed. In (0, 1).
	Frac float64
}

// Plan decides the fault for attempt n of the operation named key. The
// decision is pure: same (seed, key, n) → same Fault, regardless of
// goroutine interleaving, host or time. faultsSoFar is how many failing
// faults the key already absorbed; at or past MaxFaultsPerKey only
// KindLatency and KindNone can be returned.
func (in *Injector) Plan(key string, n, faultsSoFar int) Fault {
	rng := xrand.NewString(fmt.Sprintf("chaos|%s|%s|%d", in.cfg.Seed, key, n))
	budgetLeft := in.cfg.MaxFaultsPerKey == 0 || faultsSoFar < in.cfg.MaxFaultsPerKey
	// Draw every probability unconditionally so the stream is identical
	// whether or not the budget is exhausted.
	latency := rng.Bool(in.cfg.PLatency)
	transient := rng.Bool(in.cfg.PTransient)
	stall := rng.Bool(in.cfg.PStall)
	partial := rng.Bool(in.cfg.PPartial)
	delayFrac := rng.Float64()
	partialFrac := rng.Float64()

	if latency {
		d := time.Duration(delayFrac * float64(in.cfg.Latency))
		if d <= 0 {
			d = time.Microsecond
		}
		return Fault{Kind: KindLatency, Delay: d}
	}
	if !budgetLeft {
		return Fault{Kind: KindNone}
	}
	switch {
	case transient:
		return Fault{Kind: KindTransient}
	case stall:
		return Fault{Kind: KindStall}
	case partial:
		f := 0.1 + 0.8*partialFrac
		return Fault{Kind: KindPartial, Frac: f}
	}
	return Fault{Kind: KindNone}
}

// Failing reports whether k consumes the per-key fault budget.
func (k Kind) Failing() bool {
	return k == KindTransient || k == KindStall || k == KindPartial
}
