// Software arbitration (Section 3.2.4): the same policies, but run in the
// OS layer rather than in hardware. The OS only sees counters at timeslice
// granularity (~10ms, i.e. many hardware intervals), so decisions are
// re-evaluated far less often — and the paper predicts lower effectiveness
// because memoizability decays sharply at coarse intervals (Section 2.3).

package arbiter

// Software wraps a hardware policy and re-evaluates it only every
// PollEvery intervals, holding the previous decision in between — the
// OS-timeslice analogue of the hardware arbitrator.
type Software struct {
	Inner Arbiter
	// PollEvery is how many hardware intervals one OS timeslice spans.
	PollEvery int

	last int
	held bool
}

// NewSoftware wraps inner with an OS-timeslice polling period.
func NewSoftware(inner Arbiter, pollEvery int) *Software {
	if pollEvery < 1 {
		pollEvery = 1
	}
	return &Software{Inner: inner, PollEvery: pollEvery, last: None}
}

// Name implements Arbiter.
func (s *Software) Name() string { return "software(" + s.Inner.Name() + ")" }

// Decide implements Arbiter.
func (s *Software) Decide(apps []AppState, interval int) int {
	if s.held && interval%s.PollEvery != 0 {
		// Between timeslices the OS cannot react; keep the assignment if
		// the app still exists.
		for _, a := range apps {
			if a.Index == s.last {
				return s.last
			}
		}
		return None
	}
	s.last = s.Inner.Decide(apps, interval)
	s.held = true
	return s.last
}
