package arbiter

import "testing"

// mkState builds a baseline app state that is content on its InO core.
func mkState(i int) AppState {
	return AppState{
		Index:             i,
		IPCInO:            1.5,
		IPCOoO:            2.0,
		SCMPKIInO:         0.5,
		SCMPKIOoO:         0.5,
		HaveOoOStats:      true,
		IntervalsSinceOoO: 20,
		Util:              0.2,
	}
}

func states(n int) []AppState {
	out := make([]AppState, n)
	for i := range out {
		out[i] = mkState(i)
	}
	return out
}

func TestSCMPKIPowersDownWhenNothingToDo(t *testing.T) {
	a := NewSCMPKI()
	if got := a.Decide(states(4), 0); got != None {
		t.Errorf("contented apps should power the OoO down, picked %d", got)
	}
}

func TestSCMPKIPicksHighestDelta(t *testing.T) {
	a := NewSCMPKI()
	ss := states(4)
	ss[2].SCMPKIInO = 8 // phase change: SC gone stale
	ss[1].SCMPKIInO = 3
	if got := a.Decide(ss, 0); got != 2 {
		t.Errorf("picked %d, want the app with the largest ΔSC-MPKI (2)", got)
	}
}

func TestSCMPKIAvoidsInherentlyUnmemoizable(t *testing.T) {
	a := NewSCMPKI()
	ss := states(3)
	// astar-style: misses everywhere — on the InO *and* on the OoO. The
	// ratio form of Eq 1 keeps Δ small.
	ss[1].SCMPKIInO = 12
	ss[1].SCMPKIOoO = 11
	if got := a.Decide(ss, 0); got != None {
		t.Errorf("unmemoizable app scheduled on the OoO (picked %d)", got)
	}
}

func TestSCMPKIDecayDampsPingPong(t *testing.T) {
	a := NewSCMPKI()
	ss := states(2)
	// Both stale, but app 0 just came back from the OoO (gcc-style).
	ss[0].SCMPKIInO = 6
	ss[0].IntervalsSinceOoO = 0
	ss[1].SCMPKIInO = 4
	ss[1].IntervalsSinceOoO = 30
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d; the decay factor should prefer the long-idle app", got)
	}
	// An app that just left the OoO must never bounce straight back.
	solo := states(1)
	solo[0].SCMPKIInO = 50
	solo[0].IntervalsSinceOoO = 0
	if got := a.Decide(solo, 0); got != None {
		t.Errorf("zero-age app re-migrated immediately (picked %d)", got)
	}
}

func TestSCMPKIBootstrapsUnknownApps(t *testing.T) {
	a := NewSCMPKI()
	ss := states(2)
	ss[1].HaveOoOStats = false
	ss[1].SCMPKIInO = 5 // missing everywhere, never measured on OoO
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d, want unmeasured app 1", got)
	}
}

func TestMaxSTPPicksWorstSlowdown(t *testing.T) {
	a := NewMaxSTP()
	ss := states(4)
	ss[3].IPCInO = 0.4 // hmmer-style: terrible on the InO
	if got := a.Decide(ss, 0); got != 3 {
		t.Errorf("picked %d, want worst-speedup app 3", got)
	}
}

func TestMaxSTPNeverPowersDown(t *testing.T) {
	a := NewMaxSTP()
	for i := 0; i < 10; i++ {
		if got := a.Decide(states(4), i); got == None {
			t.Fatal("maxSTP powered the OoO down")
		}
	}
}

func TestMaxSTPForcedSampling(t *testing.T) {
	a := NewMaxSTP()
	ss := states(4)
	ss[0].IPCInO = 0.4 // the usual pick
	ss[2].IntervalsSinceOoO = a.SampleEvery + 10
	if got := a.Decide(ss, 0); got != 2 {
		t.Errorf("picked %d, want force-sampled stale app 2", got)
	}
}

func TestMaxSTPSamplesNeverMeasuredFirst(t *testing.T) {
	a := NewMaxSTP()
	ss := states(3)
	ss[1].HaveOoOStats = false
	ss[1].IPCOoO = 0
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d, want never-sampled app 1", got)
	}
}

func TestFairRoundRobin(t *testing.T) {
	a := NewFair()
	ss := states(3)
	for i := 0; i < 9; i++ {
		if got := a.Decide(ss, i); got != i%3 {
			t.Errorf("interval %d picked %d, want %d", i, got, i%3)
		}
	}
	if got := a.Decide(nil, 0); got != None {
		t.Error("empty app list should pick none")
	}
}

func TestSCMPKIFairGrantsBelowShare(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	ss[1].Util = 0.05 // far below 1/4 share
	if got := a.Decide(ss, 1); got != 1 {
		t.Errorf("picked %d, want under-served app 1 at its turn", got)
	}
}

func TestSCMPKIFairSkipsSatisfiedApps(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	// Candidate app 2 meets its share through memoization credit and its
	// SC is fresh: skip and power down (Section 5.3's energy point).
	ss[2].Util = 0.5
	ss[2].SCMPKIInO = 0.3
	if got := a.Decide(ss, 2); got != None {
		t.Errorf("picked %d, want OoO powered down for a satisfied candidate", got)
	}
}

func TestSCMPKIFairStalenessEscapeHatch(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	ss[2].Util = 0.5
	ss[2].SCMPKIInO = 10 // SC went stale: migrate despite met share
	if got := a.Decide(ss, 2); got != 2 {
		t.Errorf("picked %d, want stale candidate 2", got)
	}
}

func TestNames(t *testing.T) {
	for _, a := range []Arbiter{NewSCMPKI(), NewMaxSTP(), NewSCMPKIMaxSTP(), NewFair(), NewSCMPKIFair()} {
		if a.Name() == "" {
			t.Errorf("%T has no name", a)
		}
	}
}

func TestDeltaSCMPKIDenominatorFloor(t *testing.T) {
	a := mkState(0)
	a.SCMPKIOoO = 0 // perfectly memoizable phase
	a.SCMPKIInO = 1
	d := deltaSCMPKI(a)
	if d <= 0 || d > 1000 {
		t.Errorf("Δ with zero denominator = %v, want positive and finite", d)
	}
}
