package arbiter

import "testing"

// mkState builds a baseline app state that is content on its InO core.
func mkState(i int) AppState {
	return AppState{
		Index:             i,
		IPCInO:            1.5,
		IPCOoO:            2.0,
		SCMPKIInO:         0.5,
		SCMPKIOoO:         0.5,
		HaveOoOStats:      true,
		IntervalsSinceOoO: 20,
		Util:              0.2,
	}
}

func states(n int) []AppState {
	out := make([]AppState, n)
	for i := range out {
		out[i] = mkState(i)
	}
	return out
}

func TestSCMPKIPowersDownWhenNothingToDo(t *testing.T) {
	a := NewSCMPKI()
	if got := a.Decide(states(4), 0); got != None {
		t.Errorf("contented apps should power the OoO down, picked %d", got)
	}
}

func TestSCMPKIPicksHighestDelta(t *testing.T) {
	a := NewSCMPKI()
	ss := states(4)
	ss[2].SCMPKIInO = 8 // phase change: SC gone stale
	ss[1].SCMPKIInO = 3
	if got := a.Decide(ss, 0); got != 2 {
		t.Errorf("picked %d, want the app with the largest ΔSC-MPKI (2)", got)
	}
}

func TestSCMPKIAvoidsInherentlyUnmemoizable(t *testing.T) {
	a := NewSCMPKI()
	ss := states(3)
	// astar-style: misses everywhere — on the InO *and* on the OoO. The
	// ratio form of Eq 1 keeps Δ small.
	ss[1].SCMPKIInO = 12
	ss[1].SCMPKIOoO = 11
	if got := a.Decide(ss, 0); got != None {
		t.Errorf("unmemoizable app scheduled on the OoO (picked %d)", got)
	}
}

func TestSCMPKIDecayDampsPingPong(t *testing.T) {
	a := NewSCMPKI()
	ss := states(2)
	// Both stale, but app 0 just came back from the OoO (gcc-style).
	ss[0].SCMPKIInO = 6
	ss[0].IntervalsSinceOoO = 0
	ss[1].SCMPKIInO = 4
	ss[1].IntervalsSinceOoO = 30
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d; the decay factor should prefer the long-idle app", got)
	}
	// An app that just left the OoO must never bounce straight back.
	solo := states(1)
	solo[0].SCMPKIInO = 50
	solo[0].IntervalsSinceOoO = 0
	if got := a.Decide(solo, 0); got != None {
		t.Errorf("zero-age app re-migrated immediately (picked %d)", got)
	}
}

func TestSCMPKIBootstrapsUnknownApps(t *testing.T) {
	a := NewSCMPKI()
	ss := states(2)
	ss[1].HaveOoOStats = false
	ss[1].SCMPKIInO = 5 // missing everywhere, never measured on OoO
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d, want unmeasured app 1", got)
	}
}

func TestMaxSTPPicksWorstSlowdown(t *testing.T) {
	a := NewMaxSTP()
	ss := states(4)
	ss[3].IPCInO = 0.4 // hmmer-style: terrible on the InO
	if got := a.Decide(ss, 0); got != 3 {
		t.Errorf("picked %d, want worst-speedup app 3", got)
	}
}

func TestMaxSTPNeverPowersDown(t *testing.T) {
	a := NewMaxSTP()
	for i := 0; i < 10; i++ {
		if got := a.Decide(states(4), i); got == None {
			t.Fatal("maxSTP powered the OoO down")
		}
	}
}

func TestMaxSTPForcedSampling(t *testing.T) {
	a := NewMaxSTP()
	ss := states(4)
	ss[0].IPCInO = 0.4 // the usual pick
	ss[2].IntervalsSinceOoO = a.SampleEvery + 10
	if got := a.Decide(ss, 0); got != 2 {
		t.Errorf("picked %d, want force-sampled stale app 2", got)
	}
}

func TestMaxSTPForcedSamplingAtExactDeadline(t *testing.T) {
	a := NewMaxSTP()
	ss := states(4)
	ss[0].IPCInO = 0.4 // the throughput pick absent staleness
	// Regression: an app exactly at its SampleEvery deadline is due *now* —
	// the old `age > SampleEvery` comparison let it slip one interval.
	ss[2].IntervalsSinceOoO = a.SampleEvery
	if got := a.Decide(ss, 0); got != 2 {
		t.Errorf("picked %d, want app 2 force-sampled exactly at its deadline", got)
	}
	ss[2].IntervalsSinceOoO = a.SampleEvery - 1
	if got := a.Decide(ss, 0); got != 0 {
		t.Errorf("picked %d, want throughput pick 0 one interval before the deadline", got)
	}
}

func TestMaxSTPForcedSamplingTieKeepsFirst(t *testing.T) {
	a := NewMaxSTP()
	ss := states(3)
	ss[0].IntervalsSinceOoO = a.SampleEvery
	ss[2].IntervalsSinceOoO = a.SampleEvery
	if got := a.Decide(ss, 0); got != 0 {
		t.Errorf("picked %d, want first equally-stale app 0", got)
	}
}

func TestMaxSTPSamplesNeverMeasuredFirst(t *testing.T) {
	a := NewMaxSTP()
	ss := states(3)
	ss[1].HaveOoOStats = false
	ss[1].IPCOoO = 0
	if got := a.Decide(ss, 0); got != 1 {
		t.Errorf("picked %d, want never-sampled app 1", got)
	}
}

func TestFairRoundRobin(t *testing.T) {
	a := NewFair()
	ss := states(3)
	for i := 0; i < 9; i++ {
		if got := a.Decide(ss, i); got != i%3 {
			t.Errorf("interval %d picked %d, want %d", i, got, i%3)
		}
	}
	if got := a.Decide(nil, 0); got != None {
		t.Error("empty app list should pick none")
	}
}

// drop returns states(n) with the given stable indices removed — the live
// slice after those applications finished.
func drop(n int, gone ...int) []AppState {
	out := make([]AppState, 0, n)
	for i := 0; i < n; i++ {
		skip := false
		for _, g := range gone {
			if i == g {
				skip = true
			}
		}
		if !skip {
			out = append(out, mkState(i))
		}
	}
	return out
}

func TestFairShrinkingMixKeepsStableTurns(t *testing.T) {
	a := NewFair()
	// 4 apps; app 1 finished. Survivors keep the turn slots their stable
	// index owned before the shrink (app 1's vacated slot falls to the next
	// live index). The old position-based rotation computed interval % 3 over
	// the shrunken slice, shifting every app's phase: at interval 4 it handed
	// app 0's turn to app 2.
	ss := drop(4, 1)
	want := []int{0, 2, 2, 3, 0, 2, 2, 3}
	for i, w := range want {
		if got := a.Decide(ss, i); got != w {
			t.Errorf("interval %d picked %d, want %d", i, got, w)
		}
	}
}

func TestFairRotationIgnoresSliceOrder(t *testing.T) {
	a := NewFair()
	ss := states(4)
	// The turn belongs to a stable index, not a slice position: presenting
	// the same apps in a different order must not change the decision.
	shuffled := []AppState{ss[3], ss[1], ss[0], ss[2]}
	for i := 0; i < 8; i++ {
		if got := a.Decide(shuffled, i); got != i%4 {
			t.Errorf("interval %d picked %d from shuffled slice, want %d", i, got, i%4)
		}
	}
}

func TestSCMPKIFairGrantsBelowShare(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	ss[1].Util = 0.05 // far below 1/4 share
	if got := a.Decide(ss, 1); got != 1 {
		t.Errorf("picked %d, want under-served app 1 at its turn", got)
	}
}

func TestSCMPKIFairSkipsSatisfiedApps(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	// Candidate app 2 meets its share through memoization credit and its
	// SC is fresh: skip and power down (Section 5.3's energy point).
	ss[2].Util = 0.5
	ss[2].SCMPKIInO = 0.3
	if got := a.Decide(ss, 2); got != None {
		t.Errorf("picked %d, want OoO powered down for a satisfied candidate", got)
	}
}

func TestSCMPKIFairStalenessEscapeHatch(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	ss[2].Util = 0.5
	ss[2].SCMPKIInO = 10 // SC went stale: migrate despite met share
	if got := a.Decide(ss, 2); got != 2 {
		t.Errorf("picked %d, want stale candidate 2", got)
	}
}

func TestSCMPKIFairShrinkingMixRotation(t *testing.T) {
	a := NewSCMPKIFair()
	ss := drop(4, 1)
	for i := range ss {
		ss[i].Util = 0 // everyone under-served: every turn is granted
	}
	want := []int{0, 2, 2, 3}
	for i, w := range want {
		if got := a.Decide(ss, i); got != w {
			t.Errorf("interval %d picked %d, want stable-index turn %d", i, got, w)
		}
	}
}

func TestSCMPKIFairEscapeHatchThresholdBoundary(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	ss[2].Util = 0.5 // share met: only staleness can justify a migration
	// Δ = (SCMPKIInO - den)/den with den = SCMPKIOoO = 0.5. Exactly at the
	// threshold is not strictly greater: power down.
	ss[2].SCMPKIInO = 0.5 * (1 + a.Threshold)
	if got := a.Decide(ss, 2); got != None {
		t.Errorf("picked %d at Δ == Threshold, want power-down", got)
	}
	ss[2].SCMPKIInO += 0.01
	if got := a.Decide(ss, 2); got != 2 {
		t.Errorf("picked %d just above the threshold, want stale candidate 2", got)
	}
}

func TestSCMPKIFairEscapeHatchNeverMeasured(t *testing.T) {
	a := NewSCMPKIFair()
	ss := states(4)
	// A never-measured candidate uses the neutral denominator (1.0), so a
	// missy InO phase escapes even with its share met through memoization.
	ss[2].Util = 0.9
	ss[2].HaveOoOStats = false
	ss[2].SCMPKIOoO = 0
	ss[2].SCMPKIInO = 5
	if got := a.Decide(ss, 2); got != 2 {
		t.Errorf("picked %d, want never-measured stale candidate 2", got)
	}
}

func TestValidDecision(t *testing.T) {
	ss := drop(4, 1) // live stable indices {0, 2, 3}
	for _, pick := range []int{None, 0, 2, 3} {
		if !ValidDecision(ss, pick) {
			t.Errorf("pick %d rejected, want valid", pick)
		}
	}
	for _, pick := range []int{1, 4, -2} {
		if ValidDecision(ss, pick) {
			t.Errorf("pick %d accepted, want invalid", pick)
		}
	}
	if !ValidDecision(nil, None) || ValidDecision(nil, 0) {
		t.Error("empty slice: only None is a valid decision")
	}
}

func TestNames(t *testing.T) {
	for _, a := range []Arbiter{NewSCMPKI(), NewMaxSTP(), NewSCMPKIMaxSTP(), NewFair(), NewSCMPKIFair()} {
		if a.Name() == "" {
			t.Errorf("%T has no name", a)
		}
	}
}

func TestDeltaSCMPKIDenominatorFloor(t *testing.T) {
	a := mkState(0)
	a.SCMPKIOoO = 0 // perfectly memoizable phase
	a.SCMPKIInO = 1
	d := deltaSCMPKI(a)
	if d <= 0 || d > 1000 {
		t.Errorf("Δ with zero denominator = %v, want positive and finite", d)
	}
}
