package arbiter

import "testing"

func TestSoftwareHoldsBetweenTimeslices(t *testing.T) {
	inner := NewFair()
	sw := NewSoftware(inner, 5)
	ss := states(3)
	first := sw.Decide(ss, 0)
	for i := 1; i < 5; i++ {
		if got := sw.Decide(ss, i); got != first {
			t.Errorf("interval %d re-decided to %d while holding %d", i, got, first)
		}
	}
	// At the timeslice boundary the inner policy runs again (Fair has
	// rotated to interval 5 % 3 = 2).
	if got := sw.Decide(ss, 5); got != 2 {
		t.Errorf("timeslice boundary picked %d, want 2", got)
	}
}

func TestSoftwareDropsVanishedApp(t *testing.T) {
	sw := NewSoftware(NewFair(), 10)
	ss := states(3)
	sw.Decide(ss, 0) // holds app 0
	// App 0 disappears from the snapshot (e.g. filtered by a multi-OoO
	// picker); the holder must not return a dangling index.
	if got := sw.Decide(ss[1:], 3); got != None {
		t.Errorf("held a vanished app: %d", got)
	}
}

func TestSoftwarePollClamp(t *testing.T) {
	sw := NewSoftware(NewFair(), 0)
	if sw.PollEvery != 1 {
		t.Errorf("poll period %d, want clamped to 1", sw.PollEvery)
	}
}

// countingArbiter wraps a fixed pick and records how often it is consulted.
type countingArbiter struct {
	calls int
	pick  int
}

func (c *countingArbiter) Name() string { return "counting" }

func (c *countingArbiter) Decide(apps []AppState, interval int) int {
	c.calls++
	return c.pick
}

func TestSoftwareDecimatesInnerPolls(t *testing.T) {
	inner := &countingArbiter{pick: 1}
	sw := NewSoftware(inner, 10)
	ss := states(3)
	for i := 0; i < 50; i++ {
		if got := sw.Decide(ss, i); got != 1 {
			t.Fatalf("interval %d picked %d, want held decision 1", i, got)
		}
	}
	// The inner policy runs only at timeslice boundaries: 0, 10, 20, 30, 40.
	if inner.calls != 5 {
		t.Errorf("inner arbitrator consulted %d times over 50 intervals, want 5", inner.calls)
	}
}

func TestSoftwareName(t *testing.T) {
	if got := NewSoftware(NewSCMPKI(), 4).Name(); got != "software(SC-MPKI)" {
		t.Errorf("name %q", got)
	}
}

// TestSoftwareLessReactive: against a scenario where staleness appears
// mid-timeslice, the software arbitrator reacts one timeslice late — the
// Section 3.2.4 prediction that OS-granularity arbitration is weaker.
func TestSoftwareLessReactive(t *testing.T) {
	hw := NewSCMPKI()
	sw := NewSoftware(NewSCMPKI(), 8)
	ss := states(4)
	// Nothing to do at interval 0: both power down (software holds None).
	if hw.Decide(ss, 0) != None || sw.Decide(ss, 0) != None {
		t.Fatal("expected both arbitrators to gate the OoO initially")
	}
	// A phase change at interval 3 spikes app 1's ΔSC-MPKI.
	ss[1].SCMPKIInO = 10
	if got := hw.Decide(ss, 3); got != 1 {
		t.Fatalf("hardware arbitrator missed the spike (picked %d)", got)
	}
	if got := sw.Decide(ss, 3); got != None {
		t.Errorf("software arbitrator reacted mid-timeslice (picked %d)", got)
	}
	if got := sw.Decide(ss, 8); got != 1 {
		t.Errorf("software arbitrator missed the spike at its timeslice (picked %d)", got)
	}
}
