// Package arbiter implements the runtime schedulers of Section 3.2: the
// hardware arbitrator integrated with the OoO core that polls performance
// counters from all applications at every interval boundary and decides who
// gets the lone OoO next — or whether to power it down.
//
// Five policies are provided:
//
//   - SCMPKI: the paper's energy-efficiency arbitrator (Eq 1) — migrate the
//     application whose ΔSC-MPKI is highest above a threshold, damped by a
//     decay factor since its last OoO visit; power the OoO down otherwise.
//   - MaxSTP: the traditional Het-CMP throughput scheduler (Eq 2) — always
//     give the OoO to the application with the lowest expected speedup,
//     force-sampling every application periodically to refresh stale IPCs.
//   - SCMPKIMaxSTP: MaxSTP acting on Mirage hardware (memoized InO IPCs).
//   - Fair: plain round-robin (equal time share on a traditional Het-CMP).
//   - SCMPKIFair: fairness with memoization credit (Eq 3) — round-robin,
//     but skip (and power down) when the candidate already meets its OoO
//     share through memoized execution.
package arbiter

import "math"

// AppState is the per-application counter snapshot the arbitrator polls at
// an interval boundary.
type AppState struct {
	// Index identifies the application within the cluster.
	Index int
	// OnOoO reports whether the app ran on the OoO during the last interval.
	OnOoO bool
	// IPCInO is the IPC observed over the last interval the app ran on its
	// InO core (with memoization, replay intervals raise it).
	IPCInO float64
	// IPCOoO is the IPC measured the last time the app ran on the OoO
	// (Eq 2 approximates current OoO IPC by the last sample). Zero when the
	// app has never been sampled.
	IPCOoO float64
	// SCMPKIInO is the Schedule-Cache misses per kilo-instruction observed
	// on the InO core over the last interval.
	SCMPKIInO float64
	// SCMPKIOoO is the memoizability of the current phase, measured on the
	// OoO during the last memoize phase (Eq 1 denominator).
	SCMPKIOoO float64
	// HaveOoOStats reports whether SCMPKIOoO/IPCOoO have ever been measured.
	HaveOoOStats bool
	// IntervalsSinceOoO counts intervals since the last OoO visit.
	IntervalsSinceOoO int
	// Util is the Eq 3 utilization share: (t_OoO + t_memoized*speedup)/t_total.
	Util float64
}

// None means the OoO is powered down for the next interval.
const None = -1

// Arbiter decides which application occupies the OoO each interval.
type Arbiter interface {
	Name() string
	// Decide returns the index of the application to run on the OoO for
	// the next interval, or None to power the OoO down.
	Decide(apps []AppState, interval int) int
}

// deltaSCMPKI computes Eq 1 with a floor on the denominator so perfectly
// memoized phases (SC-MPKI_OoO == 0) don't divide by zero.
func deltaSCMPKI(a AppState) float64 {
	const eps = 0.05
	den := a.SCMPKIOoO
	if !a.HaveOoOStats {
		// Never memoized: assume neutral memoizability so a high InO MPKI
		// bootstraps the first visit.
		den = 1.0
	}
	if den < eps {
		den = eps
	}
	return (a.SCMPKIInO - den) / den
}

// SCMPKI is the energy-efficiency arbitrator of Section 3.2.1.
type SCMPKI struct {
	// Threshold is the minimum decayed ΔSC-MPKI that justifies waking the
	// OoO; below it the OoO is power-gated for the interval.
	Threshold float64
	// DecayLag controls the ping-pong damper: an application's Δ is scaled
	// by s/(s+DecayLag) where s is intervals since its last OoO visit.
	DecayLag float64
}

// NewSCMPKI returns the arbitrator with the defaults used in the paper's
// evaluation.
func NewSCMPKI() *SCMPKI { return &SCMPKI{Threshold: 0.5, DecayLag: 4} }

// Name implements Arbiter.
func (s *SCMPKI) Name() string { return "SC-MPKI" }

// Decide implements Arbiter.
func (s *SCMPKI) Decide(apps []AppState, interval int) int {
	best, bestVal := None, s.Threshold
	for _, a := range apps {
		d := deltaSCMPKI(a)
		if s.DecayLag > 0 {
			since := float64(a.IntervalsSinceOoO)
			d *= since / (since + s.DecayLag)
		}
		if d > bestVal {
			best, bestVal = a.Index, d
		}
	}
	return best
}

// MaxSTP is the traditional throughput arbitrator of Section 3.2.2.
type MaxSTP struct {
	// SampleEvery forces each application onto the OoO at least once per
	// this many intervals so IPCOoO estimates don't go stale (50 M cycles
	// at the paper's 1 M-cycle interval).
	SampleEvery int
}

// NewMaxSTP returns the arbitrator with the paper's 50-interval forced
// sampling period.
func NewMaxSTP() *MaxSTP { return &MaxSTP{SampleEvery: 50} }

// Name implements Arbiter.
func (m *MaxSTP) Name() string { return "maxSTP" }

// Decide implements Arbiter.
func (m *MaxSTP) Decide(apps []AppState, interval int) int {
	// Forced sampling first: pick the stalest app at or past its deadline —
	// an app exactly SampleEvery intervals old is due now, not next interval
	// (apps never sampled count as infinitely stale). Ties keep the first
	// app in slice order.
	stalest, staleAge := None, -1
	for _, a := range apps {
		age := a.IntervalsSinceOoO
		if !a.HaveOoOStats {
			age = math.MaxInt32
		}
		if age >= m.SampleEvery && age > staleAge {
			stalest, staleAge = a.Index, age
		}
	}
	if stalest != None {
		return stalest
	}
	// Otherwise reserve the OoO for the worst slowdown (Eq 2).
	best, bestSpeedup := None, math.Inf(1)
	for _, a := range apps {
		if a.IPCOoO <= 0 {
			return a.Index
		}
		sp := a.IPCInO / a.IPCOoO
		if sp < bestSpeedup {
			best, bestSpeedup = a.Index, sp
		}
	}
	return best
}

// SCMPKIMaxSTP is MaxSTP running on Mirage hardware: identical policy, but
// because memoized InO execution already runs near OoO speed, the slowest
// speedup naturally points at non-memoized applications.
type SCMPKIMaxSTP struct{ MaxSTP }

// NewSCMPKIMaxSTP returns the Mirage throughput arbitrator.
func NewSCMPKIMaxSTP() *SCMPKIMaxSTP { return &SCMPKIMaxSTP{MaxSTP{SampleEvery: 50}} }

// Name implements Arbiter.
func (m *SCMPKIMaxSTP) Name() string { return "SC-MPKI+maxSTP" }

// Fair is plain round-robin (Section 3.2.3's baseline on traditional
// hardware): every application gets an equal OoO time share, whether or not
// it benefits.
type Fair struct{}

// NewFair returns the round-robin arbitrator.
func NewFair() *Fair { return &Fair{} }

// Name implements Arbiter.
func (f *Fair) Name() string { return "Fair" }

// rotate returns the position in apps of the application whose turn it is:
// the smallest stable Index at or after interval mod P, wrapping to the
// smallest live Index, where P spans the largest live Index. Rotating over
// stable indices (rather than positions in the currently-live slice) keeps
// each surviving application's turn fixed when others finish and leave the
// slice — indexing the live slice directly would skew the rotation and hand
// some applications double turns. Returns -1 for an empty slice.
func rotate(apps []AppState, interval int) int {
	if len(apps) == 0 {
		return -1
	}
	maxIdx := 0
	for _, a := range apps {
		if a.Index > maxIdx {
			maxIdx = a.Index
		}
	}
	want := interval % (maxIdx + 1)
	at, wrap := -1, 0
	for i, a := range apps {
		if a.Index < apps[wrap].Index {
			wrap = i
		}
		if a.Index >= want && (at < 0 || a.Index < apps[at].Index) {
			at = i
		}
	}
	if at < 0 {
		return wrap
	}
	return at
}

// Decide implements Arbiter.
func (f *Fair) Decide(apps []AppState, interval int) int {
	if at := rotate(apps, interval); at >= 0 {
		return apps[at].Index
	}
	return None
}

// SCMPKIFair is the fairness arbitrator with memoization credit (Eq 3):
// time spent executing memoized schedules near OoO speed counts toward an
// application's OoO share, so applications already meeting their share are
// skipped and the OoO powered down — fairness without the energy bill.
type SCMPKIFair struct {
	// Threshold mirrors SCMPKI.Threshold for the staleness escape hatch: a
	// candidate whose SC went stale migrates even if its Util is met.
	Threshold float64
}

// NewSCMPKIFair returns the fairness arbitrator with defaults.
func NewSCMPKIFair() *SCMPKIFair { return &SCMPKIFair{Threshold: 0.5} }

// Name implements Arbiter.
func (f *SCMPKIFair) Name() string { return "SC-MPKI-fair" }

// Decide implements Arbiter.
func (f *SCMPKIFair) Decide(apps []AppState, interval int) int {
	at := rotate(apps, interval)
	if at < 0 {
		return None
	}
	share := 1.0 / float64(len(apps))
	a := apps[at]
	// The candidate takes its turn unless it already meets its share and
	// its Schedule Cache is still fresh — then conserve energy instead.
	if a.Util < share || deltaSCMPKI(a) > f.Threshold {
		return a.Index
	}
	return None
}

// ValidDecision reports whether pick is a legal Decide result over apps:
// None, or the stable Index of one of the presented applications. The
// cluster's invariant audit (DESIGN.md §11) applies it to every arbitration
// decision — a policy returning an index it was never shown (e.g. an app
// already granted a slot this boundary) is a scheduling bug that would
// otherwise skew occupancy silently.
func ValidDecision(apps []AppState, pick int) bool {
	if pick == None {
		return true
	}
	for _, a := range apps {
		if a.Index == pick {
			return true
		}
	}
	return false
}
