package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// val derives a deterministic payload from a key, so any byte the store
// hands back can be checked against ground truth without bookkeeping.
func val(key string, n int) []byte {
	r := xrand.NewString("val/" + key)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := []string{"run|a", "sweep|quick", "figure|7"}
	for i, k := range keys {
		if err := s.Put(k, val(k, 100+i)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	if got, ok := s.Get("missing"); ok || got != nil {
		t.Fatalf("Get(missing) = %q, %v; want miss", got, ok)
	}
	for i, k := range keys {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, val(k, 100+i)) {
			t.Fatalf("Get(%s) = %d bytes, %v; want %d bytes", k, len(got), ok, 100+i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != len(keys) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(keys))
	}
	for i, k := range keys {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, val(k, 100+i)) {
			t.Fatalf("reopened Get(%s) = %d bytes, %v", k, len(got), ok)
		}
	}
	if st := s2.Stats(); st.Recovered != int64(len(keys)) || st.CorruptRecords != 0 || st.TornBytes != 0 {
		t.Fatalf("clean reopen stats = %+v", st)
	}
}

func TestStoreOverwriteLastWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("Get(k) = %q, %v", got, ok)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if got, ok := s2.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("reopened Get(k) = %q, %v; want last write to win", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

// TestStorePropertyOracle drives random interleavings of Put/Get/reopen
// against a map-model oracle. Uncapped, the store must agree with the map
// exactly; hits must always carry the oracle's bytes.
func TestStorePropertyOracle(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := xrand.NewString(fmt.Sprintf("store-prop/%d", seed))
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			oracle := map[string][]byte{}
			keyOf := func() string { return fmt.Sprintf("key-%d", r.Intn(40)) }
			for op := 0; op < 2000; op++ {
				switch {
				case r.Bool(0.45): // Put
					k := keyOf()
					v := val(fmt.Sprintf("%s/%d", k, op), 1+r.Intn(300))
					if err := s.Put(k, v); err != nil {
						t.Fatalf("op %d: Put: %v", op, err)
					}
					oracle[k] = v
				case r.Bool(0.05): // reopen (simulated restart)
					if err := s.Close(); err != nil {
						t.Fatalf("op %d: Close: %v", op, err)
					}
					s = mustOpen(t, dir, Options{})
				default: // Get
					k := keyOf()
					got, ok := s.Get(k)
					want, inOracle := oracle[k]
					if ok != inOracle {
						t.Fatalf("op %d: Get(%s) hit=%v, oracle=%v", op, k, ok, inOracle)
					}
					if ok && !bytes.Equal(got, want) {
						t.Fatalf("op %d: Get(%s) returned wrong bytes", op, k)
					}
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle has %d", s.Len(), len(oracle))
			}
		})
	}
}

// TestStorePropertyOracleCapped is the capped variant: evictions make
// misses legal, but a hit must still carry exactly the oracle's bytes, and
// the key written by the immediately preceding Put must always be present.
func TestStorePropertyOracleCapped(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := xrand.NewString(fmt.Sprintf("store-prop-cap/%d", seed))
			dir := t.TempDir()
			const cap = 8 << 10
			s := mustOpen(t, dir, Options{MaxBytes: cap})
			oracle := map[string][]byte{}
			lastPut := ""
			var evictions, compactions int64 // accumulated across restarts
			for op := 0; op < 3000; op++ {
				switch {
				case r.Bool(0.5):
					k := fmt.Sprintf("key-%d", r.Intn(60))
					v := val(fmt.Sprintf("%s/%d", k, op), 1+r.Intn(256))
					if err := s.Put(k, v); err != nil {
						t.Fatalf("op %d: Put: %v", op, err)
					}
					oracle[k] = v
					lastPut = k
				case r.Bool(0.05):
					st := s.Stats()
					evictions += st.Evictions
					compactions += st.Compactions
					if err := s.Close(); err != nil {
						t.Fatalf("op %d: Close: %v", op, err)
					}
					s = mustOpen(t, dir, Options{MaxBytes: cap})
				default:
					k := fmt.Sprintf("key-%d", r.Intn(60))
					got, ok := s.Get(k)
					if !ok {
						continue // evicted: a miss is legal under a cap
					}
					want, inOracle := oracle[k]
					if !inOracle {
						t.Fatalf("op %d: Get(%s) fabricated a hit", op, k)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: Get(%s) returned wrong bytes", op, k)
					}
				}
				if lastPut != "" {
					if got, ok := s.Get(lastPut); !ok || !bytes.Equal(got, oracle[lastPut]) {
						t.Fatalf("op %d: most recent Put(%s) not retrievable (hit=%v)", op, lastPut, ok)
					}
				}
				if lb := s.LogBytes(); lb > cap {
					t.Fatalf("op %d: log grew to %d bytes past cap %d", op, lb, cap)
				}
			}
			st := s.Stats()
			evictions += st.Evictions
			compactions += st.Compactions
			if evictions == 0 || compactions == 0 {
				t.Fatalf("capped run exercised no eviction/compaction (evict=%d compact=%d)", evictions, compactions)
			}
		})
	}
}

// buildLog writes n records into a fresh store and returns the raw log
// bytes plus each record's end offset (the write frontier after record i).
func buildLog(t *testing.T, n int) (data []byte, keys []string, ends []int64) {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := s.Put(k, val(k, 20+7*i)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		ends = append(ends, s.LogBytes())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return data, keys, ends
}

// writeLog drops raw bytes into a fresh dir as the store log.
func writeLog(t *testing.T, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStoreCrashEveryTruncationOffset kills the log at every byte offset —
// the every-offset torn-write battery. Records fully contained in the
// prefix must be recovered with exact bytes; everything else must be a
// miss; and the recovered store must accept new writes and reopen cleanly.
func TestStoreCrashEveryTruncationOffset(t *testing.T) {
	data, keys, ends := buildLog(t, 6)
	for cut := 0; cut <= len(data); cut++ {
		dir := writeLog(t, data[:cut])
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		for i, k := range keys {
			got, ok := s.Get(k)
			if intact := ends[i] <= int64(cut); intact != ok {
				t.Fatalf("cut=%d: Get(%s) hit=%v, want %v", cut, k, ok, intact)
			} else if ok && !bytes.Equal(got, val(k, 20+7*i)) {
				t.Fatalf("cut=%d: Get(%s) returned corrupt bytes", cut, k)
			}
		}
		// The survivor must be a working store: append and reopen cleanly.
		if err := s.Put("after-crash", []byte("fresh")); err != nil {
			t.Fatalf("cut=%d: Put after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if got, ok := s2.Get("after-crash"); !ok || string(got) != "fresh" {
			t.Fatalf("cut=%d: post-recovery write lost (hit=%v)", cut, ok)
		}
		if st := s2.Stats(); st.TornBytes != 0 || st.CorruptRecords != 0 {
			t.Fatalf("cut=%d: second reopen not clean: %+v", cut, st)
		}
		s2.Close()
	}
}

// TestStoreBitFlipEveryByte flips bits at every byte of the log and asserts
// the blast radius: Open never fails or returns corrupt bytes, a flip
// inside record i costs at most record i (resync preserves its neighbors),
// and a flip in the file header costs only warmth (fresh store).
func TestStoreBitFlipEveryByte(t *testing.T) {
	data, keys, ends := buildLog(t, 5)
	recOf := func(off int) int {
		for i, e := range ends {
			if int64(off) < e {
				return i
			}
		}
		return -1
	}
	for _, mask := range []byte{0x01, 0x80} {
		for off := 0; off < len(data); off++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= mask
			dir := writeLog(t, mut)
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("off=%d mask=%#x: Open: %v", off, mask, err)
			}
			if off < headerLen {
				// Header flip: the whole log is unreadable; the store must
				// come up empty and usable, never wrong.
				if s.Len() != 0 {
					t.Fatalf("off=%d mask=%#x: header flip recovered %d entries", off, mask, s.Len())
				}
			} else {
				hit := recOf(off)
				for i, k := range keys {
					got, ok := s.Get(k)
					if i != hit && !ok {
						t.Fatalf("off=%d mask=%#x: flip in record %d lost record %d", off, mask, hit, i)
					}
					if ok && !bytes.Equal(got, val(k, 20+7*i)) {
						t.Fatalf("off=%d mask=%#x: Get(%s) returned corrupt bytes", off, mask, k)
					}
				}
			}
			if err := s.Put("post-flip", []byte("ok")); err != nil {
				t.Fatalf("off=%d mask=%#x: Put: %v", off, mask, err)
			}
			if got, ok := s.Get("post-flip"); !ok || string(got) != "ok" {
				t.Fatalf("off=%d mask=%#x: post-flip write unreadable", off, mask)
			}
			s.Close()
		}
	}
}

func TestStoreEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	// Each record is recHdrLen + 1 + 100 = 117 bytes. With a 500-byte cap,
	// the fifth put overflows the file (8 + 5*117 = 593) and the store
	// evicts down to half the cap (live ≤ 242 → the 2 most recent survive).
	s := mustOpen(t, dir, Options{MaxBytes: 500})
	for _, k := range []string{"a", "b", "c", "d"} {
		if err := s.Put(k, val(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("a"); !ok { // refresh a: recency becomes a,d,c,b
		t.Fatal("a missing before eviction")
	}
	if err := s.Put("e", val("e", 100)); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]bool{"e": true, "a": true, "d": false, "c": false, "b": false} {
		if _, ok := s.Get(k); ok != want {
			t.Errorf("after eviction Get(%s) hit=%v, want %v", k, ok, want)
		}
	}
	if st := s.Stats(); st.Evictions == 0 || st.Compactions == 0 {
		t.Fatalf("no eviction/compaction recorded: %+v", st)
	}
}

func TestStoreCompactionDropsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	const cap = 4 << 10
	s := mustOpen(t, dir, Options{MaxBytes: cap})
	// Overwrite a handful of keys until dead records force a compaction.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", i%4)
		if err := s.Put(k, val(fmt.Sprintf("%s/%d", k, i), 200)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction despite %d puts into a %d-byte cap", st.Puts, cap)
	}
	if lb := s.LogBytes(); lb > cap {
		t.Fatalf("log is %d bytes, cap %d", lb, cap)
	}
	for i := 196; i < 200; i++ {
		k := fmt.Sprintf("k%d", i%4)
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, val(fmt.Sprintf("%s/%d", k, i), 200)) {
			t.Fatalf("post-compaction Get(%s) wrong (hit=%v)", k, ok)
		}
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{MaxBytes: cap})
	for i := 196; i < 200; i++ {
		k := fmt.Sprintf("k%d", i%4)
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, val(fmt.Sprintf("%s/%d", k, i), 200)) {
			t.Fatalf("reopen-after-compaction Get(%s) wrong (hit=%v)", k, ok)
		}
	}
}

func TestStoreOversizeValueSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxBytes: 1 << 10})
	if err := s.Put("big", make([]byte, 600)); err != nil {
		t.Fatalf("oversize Put must not error: %v", err)
	}
	if _, ok := s.Get("big"); ok {
		t.Fatal("oversize value was stored")
	}
	if st := s.Stats(); st.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", st.Oversize)
	}
}

// TestStoreGetVerifiesAfterOpen corrupts the file underneath a live store
// and proves Get degrades to a miss instead of serving the corrupt bytes.
func TestStoreGetVerifiesAfterOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("k", val("k", 64)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Smash one byte in the value region (last byte of the file).
	if _, err := f.WriteAt([]byte{0xff}, int64(s.LogBytes()-1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, ok := s.Get("k"); ok {
		t.Fatalf("Get served %d corrupt bytes", len(got))
	}
	if st := s.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", st.CorruptRecords)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry not dropped")
	}
}

func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxBytes: 64 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := xrand.NewString(fmt.Sprintf("store-conc/%d", w))
			for op := 0; op < 500; op++ {
				k := fmt.Sprintf("key-%d", r.Intn(16))
				if r.Bool(0.5) {
					// Every writer writes the same deterministic bytes per
					// key, so readers can verify any hit.
					if err := s.Put(k, val(k, 128)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if got, ok := s.Get(k); ok && !bytes.Equal(got, val(k, 128)) {
					t.Errorf("Get(%s) returned wrong bytes", k)
					return
				}
			}
		}()
	}
	wg.Wait()
}
