package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen feeds adversarial raw bytes to the store as its log file
// and asserts the recovery contract: Open never panics or errors on any
// input, every entry it recovers re-verifies on read (no fabricated hits),
// the recovered store accepts writes, and a second Open over the recovered
// file is clean and agrees with the first (recovery is idempotent).
//
// The committed seed corpus covers a valid log, a truncated record, a
// flipped length field, a log whose values embed record magics, and plain
// garbage; the CI fuzz-smoke job extends it with coverage-guided inputs.
func FuzzStoreOpen(f *testing.F) {
	// Valid two-record log.
	f.Add(buildFuzzLog(f, map[string]string{"run|a": "hello", "sweep|b": "world"}))
	// Truncated mid-record (torn tail).
	full := buildFuzzLog(f, map[string]string{"k1": "0123456789", "k2": "abcdefghij"})
	f.Add(full[:len(full)-7])
	// Flipped byte in a length field.
	flipped := append([]byte(nil), full...)
	if len(flipped) > headerLen+6 {
		flipped[headerLen+6] ^= 0x40
	}
	f.Add(flipped)
	// Values that contain record magics (resync decoys).
	f.Add(buildFuzzLog(f, map[string]string{"decoy": "xxmrc1yymrc1zz"}))
	// Header-only, empty, and garbage.
	f.Add([]byte("mirstor1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte("mrc1\x00\xff"), 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{MaxBytes: 1 << 20})
		if err != nil {
			t.Fatalf("Open on adversarial input errored: %v", err)
		}
		keys := s.Keys()
		vals := make(map[string][]byte, len(keys))
		for _, k := range keys {
			v, ok := s.Get(k)
			if !ok {
				t.Fatalf("recovered key %q does not verify on read", k)
			}
			vals[k] = v
		}
		if err := s.Put("fuzz-probe", []byte("probe")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if v, ok := s.Get("fuzz-probe"); !ok || string(v) != "probe" {
			t.Fatalf("probe write unreadable (hit=%v)", ok)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		s2, err := Open(dir, Options{MaxBytes: 1 << 20})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer s2.Close()
		if st := s2.Stats(); st.TornBytes != 0 || st.CorruptRecords != 0 {
			t.Fatalf("recovery not idempotent: second open saw %+v", st)
		}
		for _, k := range keys {
			v, ok := s2.Get(k)
			if !ok || !bytes.Equal(v, vals[k]) {
				t.Fatalf("entry %q changed across reopen (hit=%v)", k, ok)
			}
		}
	})
}

// buildFuzzLog materializes entries through a real store and returns the
// raw log bytes.
func buildFuzzLog(f *testing.F, entries map[string]string) []byte {
	f.Helper()
	dir := f.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for k, v := range entries {
		if err := s.Put(k, []byte(v)); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}
