// Package store is the disk tier behind the miraged response cache: a
// content-addressed result store mapping canonical job keys to encoded
// response bytes, so warm results survive process restarts and can be
// pre-baked and shipped to new workers (DESIGN.md §13).
//
// The on-disk format is a single checksummed append-only log
// (<dir>/store.log): an 8-byte file header followed by records, each
//
//	magic   uint32  "mrc1" (little-endian on disk)
//	keyLen  uint32
//	valLen  uint32
//	crc     uint32  CRC-32C over keyLen ∥ valLen ∥ key ∥ val
//	key     keyLen bytes
//	val     valLen bytes
//
// Everything that matters lives in the recovery rules, because a cache that
// can serve corrupt bytes is worse than no cache:
//
//   - Open scans the log sequentially. A record is accepted only when its
//     magic, bounds and CRC all hold; the last accepted record for a key
//     wins.
//   - On any invalid record (bad magic, impossible lengths, CRC mismatch),
//     the scan resynchronizes: it advances one byte and searches for the
//     next record magic, so one flipped bit loses at most the record it
//     landed in, never the entries behind it.
//   - Whatever garbage remains after the last accepted record — a torn
//     write from a crash mid-append, or trailing junk — is truncated, so
//     the next append extends a clean tail.
//   - Get re-verifies the record checksum and the key bytes on every read;
//     corruption that lands after Open (or a checksum collision fabricating
//     a hit) turns into a miss plus an eviction, never into wrong bytes.
//
// MaxBytes caps the disk footprint: the in-memory index evicts
// least-recently-used entries (appends make keys "used", Gets refresh
// them), and when the log file itself outgrows the cap the store compacts —
// live records are rewritten oldest-recency-first into a temp file that
// atomically replaces the log, so a crash mid-compaction leaves either the
// old log or the new one, both valid.
//
// All methods are safe for concurrent use. The package is stdlib-only plus
// the repository's nil-safe telemetry counters.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Log format constants. The file magic versions the whole log; bumping it
// makes old files unreadable (Open starts fresh rather than guessing).
var fileMagic = []byte("mirstor1")

const (
	recMagic   = 0x3163726d // "mrc1" little-endian
	recHdrLen  = 16         // magic + keyLen + valLen + crc
	headerLen  = 8
	maxKeyLen  = 1 << 16 // canonical job keys are short; anything past this is garbage
	logName    = "store.log"
	tmpName    = "store.log.tmp"
	defaultCap = 256 << 20 // 256 MiB
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes Open. The zero value is usable.
type Options struct {
	// MaxBytes caps the log file's size on disk; <= 0 selects 256 MiB.
	// Eviction keeps live entries under the cap and compaction keeps the
	// file under it (a compaction halves the live set, so steady-state
	// overflow doesn't thrash).
	MaxBytes int64
	// Registry receives the store's operational counters (store.hits,
	// store.misses, store.puts, store.evictions, store.compactions,
	// store.corrupt_records, ...). nil disables instrumentation.
	Registry *telemetry.Registry
}

// Stats is a snapshot of the store's operational counters since Open.
type Stats struct {
	Hits           int64 // Get served bytes
	Misses         int64 // Get found nothing (or dropped a corrupt record)
	Puts           int64 // records appended
	PutBytes       int64 // payload bytes appended
	Evictions      int64 // LRU evictions (size cap)
	Compactions    int64 // log rewrites
	CorruptRecords int64 // records rejected by magic/bounds/CRC (Open + Get)
	TornBytes      int64 // trailing garbage truncated at Open
	Oversize       int64 // Puts skipped because one record would exceed the cap
	Recovered      int64 // live entries recovered at Open
}

// entry locates one live record in the log.
type entry struct {
	off   int64 // record start (magic)
	total int64 // full record length including header
	vlen  int64 // value length
	// LRU links: the store keeps a doubly-linked recency list through its
	// entries; head = most recently used.
	key        string
	prev, next *entry
}

// Store is an open result store. Create with Open; Close releases the file.
type Store struct {
	dir      string
	maxBytes int64
	reg      *telemetry.Registry

	mu         sync.Mutex
	f          *os.File
	index      map[string]*entry
	head, tail *entry // recency list; head = MRU
	liveBytes  int64  // bytes of live records (header included)
	logBytes   int64  // current file length
	closed     bool
	stats      Stats
}

// Open opens (creating if absent) the store in dir, recovering the log per
// the package's recovery rules. A leftover temp file from an interrupted
// compaction is removed. Open never fails on a corrupt log — corruption
// costs entries, not availability; it fails only on real I/O errors.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	_ = os.Remove(filepath.Join(dir, tmpName))
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultCap
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		reg:      opts.Registry,
		index:    make(map[string]*entry),
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if s.stats.CorruptRecords > 0 {
		// Corrupt regions skipped by the scan are still dead bytes in the
		// middle of the file; compact now so the log on disk is fully valid
		// the moment Open returns (and recovery is idempotent).
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	s.count("store.recovered", s.stats.Recovered)
	s.count("store.corrupt_records", s.stats.CorruptRecords)
	s.count("store.torn_bytes", s.stats.TornBytes)
	return s, nil
}

// count adds n to a registry counter (no-op on nil registry or n == 0).
func (s *Store) count(name string, n int64) {
	if n != 0 {
		s.reg.Counter(name).Add(n)
	}
}

// recover scans the log, builds the index and truncates the torn tail.
func (s *Store) recover() error {
	data, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(data) < headerLen || !bytes.Equal(data[:headerLen], fileMagic) {
		// Unrecognized or empty file: start fresh. The store is a cache, so
		// an unreadable log costs warmth, not correctness.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.f.WriteAt(fileMagic, 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if len(data) > 0 {
			s.stats.TornBytes += int64(len(data))
		}
		s.logBytes = headerLen
		return nil
	}

	var magicBuf [4]byte
	binary.LittleEndian.PutUint32(magicBuf[:], recMagic)
	off := int64(headerLen)
	lastGood := off
	for {
		// Find the next candidate record start.
		i := bytes.Index(data[off:], magicBuf[:])
		if i < 0 {
			break
		}
		p := off + int64(i)
		rec, total, ok := parseRecord(data, p)
		if !ok {
			// Invalid candidate: resynchronize one byte past the magic.
			off = p + 1
			continue
		}
		if p > lastGood {
			// Bytes between the last accepted record and this one are an
			// unreadable region (a skipped corrupt record); they stay dead
			// in the file until compaction.
			s.stats.CorruptRecords++
		}
		s.insertLocked(rec.key, &entry{off: p, total: total, vlen: rec.vlen, key: rec.key})
		off = p + total
		lastGood = off
	}
	if int64(len(data)) > lastGood {
		s.stats.TornBytes += int64(len(data)) - lastGood
		if err := s.f.Truncate(lastGood); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.logBytes = lastGood
	s.stats.Recovered = int64(len(s.index))
	return nil
}

// parsed is the outcome of validating one record in a byte slice.
type parsed struct {
	key  string
	vlen int64
}

// parseRecord validates the record starting at data[p]: magic, bounds and
// CRC. It returns the parsed key/value-length and the record's total size.
func parseRecord(data []byte, p int64) (parsed, int64, bool) {
	n := int64(len(data))
	if p+recHdrLen > n {
		return parsed{}, 0, false
	}
	h := data[p : p+recHdrLen]
	if binary.LittleEndian.Uint32(h[0:4]) != recMagic {
		return parsed{}, 0, false
	}
	klen := int64(binary.LittleEndian.Uint32(h[4:8]))
	vlen := int64(binary.LittleEndian.Uint32(h[8:12]))
	want := binary.LittleEndian.Uint32(h[12:16])
	if klen == 0 || klen > maxKeyLen || p+recHdrLen+klen+vlen > n {
		return parsed{}, 0, false
	}
	crc := crc32.Update(0, castagnoli, h[4:12])
	crc = crc32.Update(crc, castagnoli, data[p+recHdrLen:p+recHdrLen+klen+vlen])
	if crc != want {
		return parsed{}, 0, false
	}
	key := string(data[p+recHdrLen : p+recHdrLen+klen])
	return parsed{key: key, vlen: vlen}, recHdrLen + klen + vlen, true
}

// --- recency list (guarded by s.mu) ---

func (s *Store) lruUnlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) lruPushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// insertLocked makes e the live entry for key (replacing any earlier one)
// and the most recently used.
func (s *Store) insertLocked(key string, e *entry) {
	if old, ok := s.index[key]; ok {
		s.lruUnlink(old)
		s.liveBytes -= old.total
	}
	s.index[key] = e
	s.lruPushFront(e)
	s.liveBytes += e.total
}

// dropLocked removes key's entry from the index and recency list.
func (s *Store) dropLocked(e *entry) {
	s.lruUnlink(e)
	s.liveBytes -= e.total
	delete(s.index, e.key)
}

// Get returns the stored bytes for key. The record is re-verified (CRC and
// key bytes) on every read: verification failure evicts the entry and
// reports a miss, so corrupt bytes can never leave the store. A hit
// refreshes the key's recency.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok || s.closed {
		s.stats.Misses++
		s.count("store.misses", 1)
		return nil, false
	}
	buf := make([]byte, e.total)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		s.dropLocked(e)
		s.stats.CorruptRecords++
		s.stats.Misses++
		s.count("store.corrupt_records", 1)
		s.count("store.misses", 1)
		return nil, false
	}
	rec, _, valid := parseRecord(buf, 0)
	if !valid || rec.key != key {
		s.dropLocked(e)
		s.stats.CorruptRecords++
		s.stats.Misses++
		s.count("store.corrupt_records", 1)
		s.count("store.misses", 1)
		return nil, false
	}
	s.lruUnlink(e)
	s.lruPushFront(e)
	s.stats.Hits++
	s.count("store.hits", 1)
	return buf[e.total-e.vlen:], true
}

// Put stores val under key, evicting least-recently-used entries and
// compacting the log as needed to respect the size cap. A single record
// larger than half the cap is skipped (counted, not an error): one giant
// response must not wipe the whole cache. Storing under an existing key
// replaces its value.
func (s *Store) Put(key string, val []byte) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("store: invalid key length %d", len(key))
	}
	total := int64(recHdrLen + len(key) + len(val))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if total > s.maxBytes/2 {
		s.stats.Oversize++
		s.count("store.oversize", 1)
		return nil
	}
	rec := make([]byte, total)
	binary.LittleEndian.PutUint32(rec[0:4], recMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[recHdrLen:], key)
	copy(rec[recHdrLen+len(key):], val)
	crc := crc32.Update(0, castagnoli, rec[4:12])
	crc = crc32.Update(crc, castagnoli, rec[recHdrLen:])
	binary.LittleEndian.PutUint32(rec[12:16], crc)
	if _, err := s.f.WriteAt(rec, s.logBytes); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	e := &entry{off: s.logBytes, total: total, vlen: int64(len(val)), key: key}
	s.logBytes += total
	s.insertLocked(key, e)
	s.stats.Puts++
	s.stats.PutBytes += int64(len(val))
	s.count("store.puts", 1)
	s.count("store.put_bytes", int64(len(val)))

	// Keep the file under the cap. Live bytes can only exceed the cap when
	// the file does too, so one trigger covers both; evicting down to half
	// the cap before compacting amortizes the rewrites (each compaction
	// buys at least cap/2 bytes of appends before the next).
	if s.logBytes > s.maxBytes {
		s.evictLocked(s.maxBytes / 2)
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked drops LRU entries until live bytes fit under limit.
func (s *Store) evictLocked(limit int64) {
	for s.liveBytes+headerLen > limit && s.tail != nil {
		s.dropLocked(s.tail)
		s.stats.Evictions++
		s.count("store.evictions", 1)
	}
}

// compactLocked rewrites live records into a fresh log (oldest recency
// first, so a reopened store's recovered order approximates recency) and
// atomically replaces the old file.
func (s *Store) compactLocked() error {
	tmpPath := filepath.Join(s.dir, tmpName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(fileMagic); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	// New offsets are staged and applied only after the rename commits, so a
	// failed compaction leaves the index pointing into the intact old log.
	type move struct {
		e   *entry
		off int64
	}
	var moves []move
	off := int64(headerLen)
	for e := s.tail; e != nil; e = e.prev {
		buf := make([]byte, e.total)
		if _, err := s.f.ReadAt(buf, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		moves = append(moves, move{e, off})
		off += e.total
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	for _, m := range moves {
		m.e.off = m.off
	}
	old := s.f
	s.f = tmp
	old.Close()
	s.logBytes = off
	s.stats.Compactions++
	s.count("store.compactions", 1)
	return nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// LiveBytes returns the bytes held by live records (headers included).
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// LogBytes returns the log file's current size.
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logBytes
}

// Keys returns the live keys in sorted order (tests and pre-bake tooling).
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the operational counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close syncs and closes the log. Further operations return misses/errors.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.f.Close()
}
