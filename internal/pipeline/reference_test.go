package pipeline

// This file is a frozen copy of the pre-event-driven pipeline engine (the
// per-cycle rescan implementation this package shipped before the rewrite).
// It exists only as a test oracle: the equivalence property test runs a few
// hundred random requests through both engines and requires field-for-field
// identical Results, and the golden fixtures in testdata/ were generated
// from exactly this code. Do not "fix" or optimise it — its behaviour,
// including every stall-accounting quirk, is the specification.

import (
	"repro/internal/isa"
)

// refDyn mirrors the old per-dynamic-instruction state, including the
// per-dyn materialised predecessor index slices the new engine eliminates.
type refDyn struct {
	static   int
	iter     int
	lat      int
	issued   int
	complete int
	preds    []int
}

type refFUState struct {
	busyUntil [isa.NumFUs][]int
	issuedAt  [isa.NumFUs][]int
}

func newRefFUState() *refFUState {
	f := &refFUState{}
	for u := isa.FU(0); u < isa.NumFUs; u++ {
		n := isa.FUCount[u]
		f.busyUntil[u] = make([]int, n)
		f.issuedAt[u] = make([]int, n)
		for i := 0; i < n; i++ {
			f.issuedAt[u][i] = -1
		}
	}
	return f
}

func (f *refFUState) tryIssue(c isa.Class, cycle int) bool {
	u := isa.UnitFor(c)
	units := f.busyUntil[u]
	for i := range units {
		if units[i] <= cycle && f.issuedAt[u][i] != cycle {
			f.issuedAt[u][i] = cycle
			if !isa.Pipelined[c] {
				units[i] = cycle + isa.Latency[c]
			}
			return true
		}
	}
	return false
}

// referenceRun is the old pipeline.Run, verbatim apart from renames.
func referenceRun(req Request) Result {
	t := req.Trace
	if t == nil || len(t.Insts) == 0 || req.Iterations <= 0 {
		return Result{}
	}
	n := len(t.Insts)
	if req.Width <= 0 {
		req.Width = isa.IssueWidth
	}
	if req.Policy == Dataflow && req.Window <= 0 {
		req.Window = isa.ROBSize
	}
	if req.ProbeSpan <= 0 {
		req.ProbeSpan = 1
	}
	if req.ProbeSpan > req.Iterations {
		req.ProbeSpan = req.Iterations
	}
	if req.Policy == RecordedOrder {
		if len(req.Order) != n*req.ProbeSpan {
			panic("pipeline: RecordedOrder requires a full probe-span order")
		}
		if req.Iterations%req.ProbeSpan != 0 {
			req.Iterations += req.ProbeSpan - req.Iterations%req.ProbeSpan
		}
	}

	total := n * req.Iterations
	dyns := make([]refDyn, total)
	loadSeq := 0
	for it := 0; it < req.Iterations; it++ {
		for j := 0; j < n; j++ {
			d := &dyns[it*n+j]
			d.static = j
			d.iter = it
			d.issued = -1
			in := t.Insts[j]
			d.lat = isa.Latency[in.Op]
			if in.Op == isa.Load && req.LoadLatency != nil {
				d.lat = req.LoadLatency(loadSeq)
				loadSeq++
			}
			for _, p := range req.Deps.Preds[j] {
				d.preds = append(d.preds, it*n+p)
			}
			if it > 0 {
				for _, p := range req.Deps.CarriedPreds[j] {
					d.preds = append(d.preds, (it-1)*n+p)
				}
			}
		}
	}

	res := Result{IterEnd: make([]int, req.Iterations)}
	switch req.Policy {
	case Dataflow:
		refRunDataflow(req, dyns, &res)
	default:
		refRunInOrder(req, dyns, &res)
	}
	span := req.ProbeSpan
	probe := (req.Iterations / 2 / span) * span
	if probe+span > req.Iterations {
		probe = req.Iterations - span
	}
	refExtractProbe(dyns[probe*n:(probe+span)*n], &res)
	return res
}

func refReadyTime(dyns []refDyn, d *refDyn) int {
	ready := 0
	for _, p := range d.preds {
		pd := &dyns[p]
		if pd.issued < 0 {
			return -1
		}
		if pd.complete > ready {
			ready = pd.complete
		}
	}
	return ready
}

func refRunDataflow(req Request, dyns []refDyn, res *Result) {
	t := req.Trace
	n := len(t.Insts)
	total := len(dyns)
	fus := newRefFUState()

	dispatched := 0
	retired := 0
	issuedCount := 0
	iterGate := make([]int, req.Iterations)
	if req.FetchGate != nil {
		iterGate[0] = req.FetchGate(0)
	}
	cycle := 0
	inflight := make([]int, 0, req.Window+req.Width)

	for retired < total {
		for c := 0; c < req.Width && retired < total; c++ {
			d := &dyns[retired]
			if d.issued >= 0 && d.complete <= cycle {
				retired++
			} else {
				break
			}
		}

		for c := 0; c < req.Width && dispatched < total; c++ {
			d := &dyns[dispatched]
			if dispatched-retired >= req.Window {
				break
			}
			if cycle < iterGate[d.iter] {
				break
			}
			inflight = append(inflight, dispatched)
			dispatched++
		}

		issuedThis := 0
		fuBlocked := false
		for i := 0; i < len(inflight) && issuedThis < req.Width; i++ {
			idx := inflight[i]
			d := &dyns[idx]
			rt := refReadyTime(dyns, d)
			if rt < 0 || rt > cycle {
				continue
			}
			in := t.Insts[d.static]
			if !fus.tryIssue(in.Op, cycle) {
				fuBlocked = true
				continue
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(in.Op)]++
			issuedThis++
			issuedCount++
			inflight = append(inflight[:i], inflight[i+1:]...)
			i--
			if d.static == n-1 && d.iter+1 < req.Iterations {
				gate := 0
				if req.Mispredicts != nil && req.Mispredicts(d.iter) {
					gate = d.complete + req.MispredictPenalty
				}
				if req.FetchGate != nil {
					if fg := req.FetchGate(d.iter + 1); cycle+fg > gate {
						gate = cycle + fg
					}
				}
				if gate > iterGate[d.iter+1] {
					iterGate[d.iter+1] = gate
				}
			}
			if d.static == n-1 {
				res.IterEnd[d.iter] = d.complete
			}
		}
		if issuedThis == 0 && len(inflight) > 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			} else {
				res.StallDataCycles++
			}
		}
		if issuedThis == 0 && len(inflight) == 0 && dispatched < total &&
			cycle < iterGate[dyns[dispatched].iter] {
			res.StallFetchCycles++
		}
		cycle++
		if cycle > 1<<26 {
			panic("pipeline: dataflow simulation did not converge")
		}
	}
	res.Issued = issuedCount
	res.Cycles = 0
	for i := range dyns {
		if dyns[i].complete > res.Cycles {
			res.Cycles = dyns[i].complete
		}
	}
	refFinalizeIterEnds(dyns, len(t.Insts), res)
}

func refRunInOrder(req Request, dyns []refDyn, res *Result) {
	t := req.Trace
	n := len(t.Insts)
	fus := newRefFUState()
	issuedCount := 0
	cycle := 0
	gate := 0
	if req.FetchGate != nil {
		gate = req.FetchGate(0)
	}

	seq := make([]int, 0, len(dyns))
	if req.Policy == RecordedOrder {
		span := req.ProbeSpan
		for g := 0; g < req.Iterations/span; g++ {
			base := g * span * n
			for _, pos := range req.Order {
				seq = append(seq, base+int(pos))
			}
		}
	} else {
		for i := range dyns {
			seq = append(seq, i)
		}
	}

	next := 0
	for next < len(seq) {
		if cycle < gate {
			res.StallFetchCycles += gate - cycle
			cycle = gate
		}
		issuedThis := 0
		fuBlocked := false
		for issuedThis < req.Width && next < len(seq) {
			d := &dyns[seq[next]]
			rt := refReadyTime(dyns, d)
			if rt < 0 {
				panic("pipeline: in-order issue saw unissued predecessor")
			}
			if rt > cycle {
				break
			}
			in := t.Insts[d.static]
			if !fus.tryIssue(in.Op, cycle) {
				fuBlocked = true
				break
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(in.Op)]++
			issuedThis++
			issuedCount++

			if d.static == n-1 {
				res.IterEnd[d.iter] = d.complete
				if d.iter+1 < req.Iterations {
					g := 0
					if req.Mispredicts != nil && req.Mispredicts(d.iter) {
						g = d.complete + req.MispredictPenalty
					}
					if req.FetchGate != nil {
						if fg := req.FetchGate(d.iter + 1); cycle+fg > g {
							g = cycle + fg
						}
					}
					if g > gate {
						gate = g
					}
				}
			}
			next++
		}
		if issuedThis == 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			}
			d := &dyns[seq[next]]
			rt := refReadyTime(dyns, d)
			if rt > cycle {
				res.StallDataCycles += rt - cycle
				cycle = rt
				continue
			}
			if !fuBlocked {
				res.StallDataCycles++
			}
			cycle++
			if cycle > 1<<26 {
				panic("pipeline: in-order simulation did not converge")
			}
			continue
		}
		cycle++
	}
	res.Issued = issuedCount
	res.Cycles = 0
	for i := range dyns {
		if dyns[i].complete > res.Cycles {
			res.Cycles = dyns[i].complete
		}
	}
	refFinalizeIterEnds(dyns, n, res)
}

func refFinalizeIterEnds(dyns []refDyn, n int, res *Result) {
	iters := len(dyns) / n
	for it := 0; it < iters; it++ {
		end := 0
		for j := 0; j < n; j++ {
			if c := dyns[it*n+j].complete; c > end {
				end = c
			}
		}
		res.IterEnd[it] = end
	}
}

func refExtractProbe(blockDyns []refDyn, res *Result) {
	n := len(blockDyns)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for k := i; k > 0; k-- {
			a, b := &blockDyns[order[k-1]], &blockDyns[order[k]]
			if a.issued > b.issued || (a.issued == b.issued && order[k-1] > order[k]) {
				order[k-1], order[k] = order[k], order[k-1]
			} else {
				break
			}
		}
	}
	res.IssueOrder = make([]uint16, n)
	maxSeen := -1
	for k, idx := range order {
		res.IssueOrder[k] = uint16(idx)
		if idx < maxSeen {
			res.Reordered++
		}
		if idx > maxSeen {
			maxSeen = idx
		}
	}
}
