package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// qcfg returns a deterministic quick-check configuration so property
// failures are reproducible rather than time-seeded.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(1))}
}

// randomTrace generates a small well-formed trace from a seed: a random mix
// of op classes over a handful of rolling registers, ending in a branch.
func randomTrace(seed uint64) *trace.Trace {
	rng := xrand.New(seed)
	n := 8 + rng.Intn(40)
	t := &trace.Trace{
		ID:      trace.ID(seed),
		Streams: []trace.StreamSpec{{WorkingSet: 4096, Stride: 8}},
	}
	classes := []isa.Class{isa.IntALU, isa.IntALU, isa.IntMul, isa.FPAdd, isa.Load, isa.Store}
	for i := 0; i < n; i++ {
		op := classes[rng.Intn(len(classes))]
		in := isa.Inst{Op: op}
		src := isa.Reg(1 + rng.Intn(8))
		dst := isa.Reg(1 + rng.Intn(8))
		if op == isa.FPAdd || op == isa.FPMul || op == isa.FPDiv {
			src += isa.NumIntRegs
			dst += isa.NumIntRegs
		}
		switch op {
		case isa.Store:
			in.Src1, in.Src2, in.Dst = src, 0, isa.NoReg
		case isa.Load:
			in.Src1, in.Dst = 0, dst
		default:
			in.Src1, in.Src2, in.Dst = src, isa.Reg(1+rng.Intn(8)), dst
		}
		t.Insts = append(t.Insts, in)
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

// TestPropertyDataflowNeverSlower: over random traces, OoO issue never
// loses to in-order issue, and replaying the OoO's own recorded order never
// loses to program order nor beats the dataflow machine itself.
func TestPropertyDataflowNeverSlower(t *testing.T) {
	check := func(seed uint64) bool {
		tr := randomTrace(seed%10_000 + 1)
		g := trace.BuildDepGraph(tr)
		df := Run(Request{Trace: tr, Deps: g, Iterations: 8, Policy: Dataflow,
			Width: 3, Window: 128, ProbeSpan: 2})
		io := Run(Request{Trace: tr, Deps: g, Iterations: 8, Policy: ProgramOrder, Width: 3})
		if df.Cycles > io.Cycles+2 {
			t.Logf("seed %d: dataflow %d > in-order %d", seed, df.Cycles, io.Cycles)
			return false
		}
		re := Run(Request{Trace: tr, Deps: g, Iterations: 8, Policy: RecordedOrder,
			Order: df.IssueOrder, ProbeSpan: 2, Width: 3})
		// Replay may modestly lose to program order on adversarial traces
		// (head-of-line blocking in the recorded permutation); the cluster
		// layer falls back to plain InO execution in that case. Here we
		// only bound the loss.
		if float64(re.Cycles) > 1.35*float64(io.Cycles)+4 {
			t.Logf("seed %d: replay %d far above in-order %d", seed, re.Cycles, io.Cycles)
			return false
		}
		// Greedy oldest-first wakeup/select is not provably optimal, so a
		// replayed permutation may finish a handful of cycles earlier;
		// anything beyond that indicates a dependence-tracking bug.
		if float64(re.Cycles) < 0.93*float64(df.Cycles)-4 {
			t.Logf("seed %d: replay %d beats dataflow %d", seed, re.Cycles, df.Cycles)
			return false
		}
		return true
	}
	if err := quick.Check(check, qcfg(60)); err != nil {
		t.Error(err)
	}
}

// TestPropertyIssueRespectsDependences: in every policy, no instruction
// issues before its register producers complete.
func TestPropertyIssueRespectsDependences(t *testing.T) {
	check := func(seed uint64) bool {
		tr := randomTrace(seed%10_000 + 50_000)
		g := trace.BuildDepGraph(tr)
		for _, pol := range []Policy{Dataflow, ProgramOrder} {
			res := Run(Request{Trace: tr, Deps: g, Iterations: 4, Policy: pol,
				Width: 3, Window: 128})
			// Reconstruct issue cycles by re-running and inspecting the
			// probe block: the probe order is sorted by issue time, so a
			// consumer must appear after its producer.
			pos := make(map[int]int)
			for k, p := range res.IssueOrder {
				pos[int(p)] = k
			}
			n := len(tr.Insts)
			for j := 0; j < n; j++ {
				for _, p := range g.Preds[j] {
					if pos[j] < pos[p] {
						t.Logf("seed %d policy %d: consumer %d issued before producer %d",
							seed, pol, j, p)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, qcfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyCyclesScaleWithIterations: more iterations never finish
// earlier, and per-iteration cost stabilizes.
func TestPropertyCyclesScaleWithIterations(t *testing.T) {
	check := func(seed uint64) bool {
		tr := randomTrace(seed%10_000 + 90_000)
		g := trace.BuildDepGraph(tr)
		prev := 0
		for _, iters := range []int{2, 4, 8} {
			res := Run(Request{Trace: tr, Deps: g, Iterations: iters,
				Policy: ProgramOrder, Width: 3})
			if res.Cycles < prev {
				return false
			}
			prev = res.Cycles
		}
		return true
	}
	if err := quick.Check(check, qcfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyMaxLiveVersionsBounds: versions are at least 1 and no more
// than the number of writes to the hottest register in the block.
func TestPropertyMaxLiveVersions(t *testing.T) {
	check := func(seed uint64) bool {
		tr := randomTrace(seed%10_000 + 130_000)
		g := trace.BuildDepGraph(tr)
		res := Run(Request{Trace: tr, Deps: g, Iterations: 8, Policy: Dataflow,
			Width: 3, Window: 128, ProbeSpan: 2})
		v := MaxLiveVersions(tr, res.IssueOrder)
		if v < 1 {
			return false
		}
		writes := map[isa.Reg]int{}
		span := len(res.IssueOrder) / len(tr.Insts)
		for _, in := range tr.Insts {
			if in.HasDst() {
				writes[in.Dst] += span
			}
		}
		maxW := 1
		for _, w := range writes {
			if w > maxW {
				maxW = w
			}
		}
		// +1: the loop-carried value from before the block.
		return v <= maxW+1
	}
	if err := quick.Check(check, qcfg(40)); err != nil {
		t.Error(err)
	}
}
