package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// randomRequest builds one random but well-formed request from a seed. It
// returns a factory, not a request: both engines must receive their own
// instance so stateful callbacks (seeded rngs) replay identically for each.
func randomRequest(seed uint64) func() Request {
	rng := xrand.New(seed)
	tr := randomTrace(seed%50_000 + 1)
	deps := trace.BuildDepGraph(tr)
	policy := Policy(rng.Intn(3))
	width := 1 + rng.Intn(4)
	windows := []int{4, 8, 16, 32, 64, 128}
	window := windows[rng.Intn(len(windows))]
	iters := 1 + rng.Intn(10)
	span := 1 + rng.Intn(4)
	if span > iters {
		span = iters
	}
	penalty := rng.Intn(16)

	useMem := rng.Bool(0.7)
	memSeed := rng.Uint64()
	useMiss := rng.Bool(0.5)
	missSeed := rng.Uint64()
	missP := rng.Float64()
	useGate := rng.Bool(0.5)
	gateEvery := 1 + rng.Intn(4)
	gateStall := 1 + rng.Intn(40)

	var order []uint16
	if policy == RecordedOrder {
		order = recordedOrderFor(tr, span)
	}

	return func() Request {
		req := Request{
			Trace:             tr,
			Deps:              deps,
			Iterations:        iters,
			Policy:            policy,
			Order:             order,
			ProbeSpan:         span,
			Width:             width,
			Window:            window,
			MispredictPenalty: penalty,
		}
		if useMem {
			req.LoadLatency = memLatPattern(memSeed)
		}
		if useMiss {
			req.Mispredicts = mispredictPattern(missSeed, missP)
		}
		if useGate {
			req.FetchGate = fetchGatePattern(gateEvery, gateStall)
		}
		return req
	}
}

// TestEquivalenceWithReference drives ~200 random trace/dep/latency configs
// through the event-driven engine and the frozen pre-rewrite reference, and
// requires the Results to match field for field — cycles, IterEnd, the full
// stall breakdown, FUBusy, Issued, IssueOrder and Reordered.
func TestEquivalenceWithReference(t *testing.T) {
	failures := 0
	for seed := uint64(1); seed <= 200; seed++ {
		mk := randomRequest(seed*2654435761 + 17)
		want := referenceRun(mk())
		got := Run(mk())
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d (policy %d): engine diverged from reference\n got: %+v\nwant: %+v",
				seed, mk().Policy, got, want)
			if failures++; failures >= 5 {
				t.Fatal("stopping after 5 divergent seeds")
			}
		}
	}
}

// TestEquivalenceEngineReuse re-runs a mix of requests through one shared
// Engine and requires results identical to fresh pooled runs: scratch reuse
// must not leak state between simulations.
func TestEquivalenceEngineReuse(t *testing.T) {
	e := NewEngine()
	for seed := uint64(1); seed <= 60; seed++ {
		mk := randomRequest(seed*911 + 3)
		want := referenceRun(mk())
		got := e.Run(mk())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: reused engine diverged from reference\n got: %+v\nwant: %+v", seed, got, want)
		}
	}
}

// refMaxLiveVersions is the pre-rewrite O(n^2) overlap sweep, kept as the
// oracle for the sort-based linear sweep that replaced it.
func refMaxLiveVersions(t *trace.Trace, order []uint16) int {
	n := len(order)
	inst := func(p int) isa.Inst { return t.Insts[p%len(t.Insts)] }
	pos := make([]int, n)
	for k, s := range order {
		pos[s] = k
	}
	type life struct{ start, end int }
	lives := make(map[isa.Reg][]life)
	lastWrite := make(map[isa.Reg]int)
	writeEnd := make(map[int]int)

	for j := 0; j < n; j++ {
		in := inst(j)
		for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
			if !src.Valid() {
				continue
			}
			if w, ok := lastWrite[src]; ok {
				if pos[j] > writeEnd[w] {
					writeEnd[w] = pos[j]
				}
			}
		}
		if in.HasDst() {
			lastWrite[in.Dst] = j
		}
	}
	for j := 0; j < n; j++ {
		in := inst(j)
		if !in.HasDst() {
			continue
		}
		end, ok := writeEnd[j]
		if !ok {
			end = pos[j]
		}
		if lastWrite[in.Dst] == j {
			end = n
		}
		lives[in.Dst] = append(lives[in.Dst], life{start: pos[j], end: end})
	}
	maxV := 1
	for _, ls := range lives {
		for _, a := range ls {
			overlap := 0
			for _, b := range ls {
				if b.start <= a.start && a.start <= b.end {
					overlap++
				}
			}
			if overlap > maxV {
				maxV = overlap
			}
		}
	}
	return maxV
}

// TestMaxLiveVersionsMatchesReference checks the linear sweep against the
// O(n^2) oracle over random schedules of random traces.
func TestMaxLiveVersionsMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		tr := randomTrace(seed%50_000 + 7_000)
		span := 1 + int(seed%4)
		res := referenceRun(Request{
			Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
			Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: span,
		})
		got := MaxLiveVersions(tr, res.IssueOrder)
		want := refMaxLiveVersions(tr, res.IssueOrder)
		if got != want {
			t.Errorf("seed %d span %d: MaxLiveVersions %d, reference %d", seed, span, got, want)
		}
	}
}
