package pipeline

import (
	"math/bits"

	"repro/internal/isa"
)

// calendar is a calendar queue bucketed by cycle: pending wakeup events
// (instructions whose operands become ready at a known future cycle) live in
// the bucket of their cycle. The ring covers a power-of-two horizon of
// future cycles; scheduling past the horizon grows the ring. Buckets are
// reused across runs, so the steady state allocates nothing.
type calendar struct {
	buckets [][]int32 // buckets[c&mask] holds the events of cycle c
	mask    int
	pending int // events scheduled and not yet drained
}

func (q *calendar) reset() {
	if q.buckets == nil {
		q.buckets = make([][]int32, 256)
		q.mask = 255
	}
	if q.pending > 0 {
		for i := range q.buckets {
			q.buckets[i] = q.buckets[i][:0]
		}
	}
	q.pending = 0
}

// schedule files a wakeup for idx at cycle at (strictly after now).
func (q *calendar) schedule(now, at int, idx int32) {
	if at-now > q.mask {
		q.grow(now, at-now)
	}
	q.buckets[at&q.mask] = append(q.buckets[at&q.mask], idx)
	q.pending++
}

// grow widens the ring to cover at least horizon future cycles, re-homing
// the pending events (each live bucket holds exactly one cycle's events, at
// most mask cycles ahead of now).
func (q *calendar) grow(now, horizon int) {
	size := len(q.buckets)
	for size-1 < horizon {
		size <<= 1
	}
	nb := make([][]int32, size)
	nmask := size - 1
	for off := 0; off <= q.mask; off++ {
		c := now + off
		old := q.buckets[c&q.mask]
		if len(old) > 0 {
			nb[c&nmask] = append(nb[c&nmask], old...)
		}
	}
	q.buckets = nb
	q.mask = nmask
}

// drain invokes fn for every event filed at exactly cycle now and empties
// the bucket. The skip logic guarantees no bucket before now is non-empty.
func (q *calendar) drain(now int, fn func(int32)) {
	b := q.buckets[now&q.mask]
	if len(b) == 0 {
		return
	}
	q.pending -= len(b)
	for _, idx := range b {
		fn(idx)
	}
	q.buckets[now&q.mask] = b[:0]
}

// next returns the earliest cycle > now holding a pending event, or -1 if
// none are pending. Events are always within the ring horizon of now.
func (q *calendar) next(now int) int {
	if q.pending == 0 {
		return -1
	}
	for off := 1; off <= q.mask+1; off++ {
		if len(q.buckets[(now+off)&q.mask]) > 0 {
			return now + off
		}
	}
	return -1
}

// readySet is the age-ordered set of dispatched, unissued, operand-ready
// instructions: a bitmap over dynamic instruction indexes. Ascending bit
// order is age order, so oldest-ready-first selection is a find-first-set
// scan, and insert/remove are O(1) — this replaces the O(window) slice
// delete of the previous engine.
type readySet struct {
	words []uint64
	count int
}

func (s *readySet) reset(total int) {
	n := (total + 63) >> 6
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	} else {
		s.words = s.words[:n]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.count = 0
}

func (s *readySet) add(idx int) {
	s.words[idx>>6] |= 1 << (idx & 63)
	s.count++
}

func (s *readySet) remove(idx int) {
	s.words[idx>>6] &^= 1 << (idx & 63)
	s.count--
}

// scan calls fn on each set index in ascending (age) order within
// [lo, hi), stopping early when fn returns false. fn may remove the index
// it was called on, but must not set or clear other bits.
func (s *readySet) scan(lo, hi int, fn func(int) bool) {
	if s.count == 0 || hi <= lo {
		return
	}
	w := lo >> 6
	last := (hi - 1) >> 6
	for ; w <= last; w++ {
		word := s.words[w]
		if w == lo>>6 {
			word &^= (1 << (lo & 63)) - 1 // mask bits below lo
		}
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			idx := w<<6 + bit
			if idx >= hi {
				return
			}
			if !fn(idx) {
				return
			}
		}
	}
}

// fuState tracks per-pool unit occupancy. Pipelined ops occupy a unit for
// the issue cycle only; unpipelined ops (divides) hold it for their latency.
// The same claim rule as the previous engine, restructured for reuse: the
// backing arrays are allocated once per Engine and reset per run.
type fuState struct {
	busyUntil [isa.NumFUs][]int
	issuedAt  [isa.NumFUs][]int
}

func (f *fuState) init() {
	for u := isa.FU(0); u < isa.NumFUs; u++ {
		n := isa.FUCount[u]
		f.busyUntil[u] = make([]int, n)
		f.issuedAt[u] = make([]int, n)
	}
}

func (f *fuState) reset() {
	for u := isa.FU(0); u < isa.NumFUs; u++ {
		for i := range f.busyUntil[u] {
			f.busyUntil[u][i] = 0
			f.issuedAt[u][i] = -1
		}
	}
}

// tryIssue claims a unit of class c at the given cycle. Returns false if no
// unit is free this cycle.
func (f *fuState) tryIssue(c isa.Class, cycle int) bool {
	u := isa.UnitFor(c)
	units := f.busyUntil[u]
	for i := range units {
		if units[i] <= cycle && f.issuedAt[u][i] != cycle {
			f.issuedAt[u][i] = cycle
			if !isa.Pipelined[c] {
				units[i] = cycle + isa.Latency[c]
			}
			return true
		}
	}
	return false
}

// minBusyOf returns the earliest cycle > now at which some unit of pool u
// frees up. Callers only ask when every unit of the pool is busy past now.
func (f *fuState) minBusyOf(u isa.FU, now int) int {
	min := -1
	for _, b := range f.busyUntil[u] {
		if b > now && (min < 0 || b < min) {
			min = b
		}
	}
	return min
}

// nextExpiry returns the earliest cycle > now at which any unit of any pool
// frees up, or -1 if every unit is already free.
func (f *fuState) nextExpiry(now int) int {
	min := -1
	for u := isa.FU(0); u < isa.NumFUs; u++ {
		for _, b := range f.busyUntil[u] {
			if b > now && (min < 0 || b < min) {
				min = b
			}
		}
	}
	return min
}
