package pipeline

import "repro/internal/isa"

// audit cross-checks the final dynamic-instruction state of a run against
// the machine invariants (DESIGN.md §11). It is independent of the engine's
// event-driven bookkeeping on purpose: it recomputes occupancy and ordering
// from nothing but the per-dyn (issued, complete, latency) triples and the
// dependence graph, so a bug in the wakeup lists, the calendar queue or the
// cycle-skipping logic cannot hide itself. Runs only under -audit; cost is
// O(dyns + edges) time and O(cycles touched) map space per request.
func (e *Engine) audit(req *Request, fd *flatDeps, res *Result) {
	aud := req.Audit
	where := req.AuditLabel
	if where == "" {
		where = "pipeline"
	}
	n := fd.n
	total := len(e.dyns)

	// Per-dyn arithmetic and dependence-edge ordering: every instruction
	// issued, completion is issue + latency, and no consumer issued before a
	// producer's result was available.
	issued := 0
	for idx := 0; idx < total; idx++ {
		d := &e.dyns[idx]
		if !aud.Checkf(d.issued >= 0, "pipeline.issued", where,
			"dyn %d (static %d, iter %d) never issued", idx, d.static, d.iter) {
			continue
		}
		issued++
		aud.Checkf(d.lat >= 1 && d.complete == d.issued+d.lat, "pipeline.latency", where,
			"dyn %d completes at %d, want issue %d + latency %d", idx, d.complete, d.issued, d.lat)
		j := int(d.static)
		base := int(d.iter) * n
		for _, p := range fd.preds[fd.predOff[2*j]:fd.predOff[2*j+1]] {
			pd := &e.dyns[base+int(p)]
			aud.Checkf(d.issued >= pd.complete, "pipeline.dep_order", where,
				"dyn %d issued at %d before intra-iteration pred %d completed at %d",
				idx, d.issued, base+int(p), pd.complete)
		}
		if d.iter > 0 {
			cb := base - n
			for _, p := range fd.preds[fd.predOff[2*j+1]:fd.predOff[2*j+2]] {
				pd := &e.dyns[cb+int(p)]
				aud.Checkf(d.issued >= pd.complete, "pipeline.dep_order", where,
					"dyn %d issued at %d before loop-carried pred %d completed at %d",
					idx, d.issued, cb+int(p), pd.complete)
			}
		}
	}
	aud.Checkf(res.Issued == issued, "pipeline.issued_count", where,
		"result reports %d issues, state holds %d", res.Issued, issued)

	// In-order policies issue along their sequence with monotone non-
	// decreasing cycles — the stall-on-use contract. Dataflow has no such
	// order (that is its point).
	if req.Policy != Dataflow {
		prev := 0
		for i := 0; i < total; i++ {
			k := i
			if req.Policy == RecordedOrder {
				k = int(e.seq[i])
			}
			d := &e.dyns[k]
			if d.issued < 0 {
				continue // already reported above
			}
			aud.Checkf(d.issued >= prev, "pipeline.inorder_monotone", where,
				"sequence position %d issued at cycle %d after a successor at %d", i, d.issued, prev)
			if d.issued > prev {
				prev = d.issued
			}
		}
	}

	// Structural capacity, recomputed from scratch: per-cycle issues bounded
	// by the superscalar width, and per-pool unit claims bounded by the pool
	// size — an unpipelined op (divide) holds its unit for its full latency,
	// a pipelined op for the issue cycle only.
	issuesAt := make(map[int]int, total)
	type poolCycle struct {
		u isa.FU
		c int
	}
	claims := make(map[poolCycle]int, total)
	for idx := 0; idx < total; idx++ {
		d := &e.dyns[idx]
		if d.issued < 0 {
			continue
		}
		issuesAt[d.issued]++
		op := e.cls[d.static]
		u := isa.UnitFor(op)
		claims[poolCycle{u, d.issued}]++
		if !isa.Pipelined[op] {
			for c := d.issued + 1; c < d.complete; c++ {
				claims[poolCycle{u, c}]++
			}
		}
	}
	for c, k := range issuesAt {
		aud.Checkf(k <= req.Width, "pipeline.width", where,
			"cycle %d issued %d instructions, width is %d", c, k, req.Width)
	}
	for pc, k := range claims {
		aud.Checkf(k <= isa.FUCount[pc.u], "pipeline.fu_capacity", where,
			"cycle %d holds %d claims on FU pool %d, capacity %d", pc.c, k, pc.u, isa.FUCount[pc.u])
	}
}
