// Package pipeline contains the cycle-level issue simulator shared by the
// three core models. One engine, three issue policies:
//
//   - Dataflow: the OoO backend — instructions issue oldest-ready-first out
//     of a ROB-limited window (wakeup/select), overlapping loop iterations.
//   - ProgramOrder: the InO backend — strict in-order, stall-on-use issue.
//   - RecordedOrder: the OinO mode — in-order stall-on-use issue, but in the
//     order a memoized OoO schedule dictates rather than program order.
//
// All three respect the same functional-unit pools and superscalar width
// (Section 4.2: the InO has the same width and FUs as the OoO so schedules
// transfer directly), the same register dependences, and per-dynamic-load
// latencies supplied by the memory hierarchy.
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Policy selects the issue order rule.
type Policy uint8

const (
	// Dataflow is OoO wakeup/select issue inside a ROB window.
	Dataflow Policy = iota
	// ProgramOrder is in-order, stall-on-use issue.
	ProgramOrder
	// RecordedOrder is in-order stall-on-use issue following a memoized
	// schedule's order.
	RecordedOrder
)

// Request describes one trace-execution simulation: how many back-to-back
// iterations of the trace to run and under which policy.
type Request struct {
	Trace *trace.Trace
	Deps  *trace.DepGraph
	// Iterations is the number of consecutive trace iterations to simulate.
	Iterations int
	Policy     Policy
	// Order is the issue order for RecordedOrder, covering ProbeSpan
	// consecutive iterations (len(Order) == ProbeSpan * len(Trace.Insts)).
	Order []uint16
	// ProbeSpan is how many consecutive iterations one schedule unit
	// covers. Recording across iterations preserves the OoO's
	// cross-iteration overlap, which in-order replay needs (see
	// ooo.ScheduleSpan). Defaults to 1.
	ProbeSpan int

	Width  int
	Window int // ROB capacity; used by Dataflow only
	// MispredictPenalty is the front-end refill depth charged after a
	// mispredicted trace-terminating branch.
	MispredictPenalty int

	// LoadLatency returns the latency of the k-th dynamic load overall
	// (caller resolves it against the cache hierarchy). If nil, all loads
	// take the L1-hit latency.
	LoadLatency func(loadSeq int) int
	// Mispredicts reports whether the terminating branch of iteration i
	// mispredicts. If nil, no branch ever mispredicts.
	Mispredicts func(iter int) bool
	// FetchGate returns extra cycles gating the start of iteration i
	// (instruction-cache or Schedule-Cache miss stalls). May be nil.
	FetchGate func(iter int) int
}

// Result is the outcome of a simulation.
type Result struct {
	// Cycles is the cycle at which the last instruction completed.
	Cycles int
	// IterEnd[i] is the completion cycle of iteration i's last instruction.
	IterEnd []int
	// IssueOrder is the issue order observed for the probe block (ProbeSpan
	// iterations out of the middle of the run). Entries index into the
	// block: value it*len(Trace.Insts)+j is instruction j of the block's
	// it-th iteration.
	IssueOrder []uint16
	// Reordered counts probe-block instructions issued before an older
	// instruction of the same block.
	Reordered int
	// Issued is the total number of instructions issued.
	Issued int
	// FUBusy[f] accumulates issue events per functional-unit pool (an
	// energy proxy).
	FUBusy [isa.NumFUs]uint64
	// LoadStallCycles estimates cycles the issue stage spent unable to
	// issue anything (an energy/utilization proxy).
	LoadStallCycles int
	// StallDataCycles, StallFUCycles and StallFetchCycles break issue
	// stalls down by cause — operand not ready, every free functional unit
	// of the needed class busy, and front end gated (I-fetch miss or branch
	// redirect). Data and FU stalls partition LoadStallCycles' events;
	// fetch stalls are counted separately in cycles skipped at the gate.
	StallDataCycles  int
	StallFUCycles    int
	StallFetchCycles int
}

// SteadyCyclesPerIter returns the marginal cycles per iteration measured
// over the back half of the run, where caches and iteration overlap have
// reached steady state.
func (r *Result) SteadyCyclesPerIter() float64 {
	n := len(r.IterEnd)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return float64(r.IterEnd[0])
	}
	half := n / 2
	span := r.IterEnd[n-1] - r.IterEnd[half-1]
	iters := n - half
	if span <= 0 || iters <= 0 {
		return float64(r.IterEnd[n-1]) / float64(n)
	}
	return float64(span) / float64(iters)
}

// dynamic instruction state.
type dyn struct {
	static   int // index within the trace
	iter     int
	lat      int
	issued   int // cycle issued, -1 before
	complete int
	numPreds int   // unresolved predecessor count is tracked via readyAt
	readyAt  int   // max completion over predecessors (computed on the fly)
	preds    []int // indexes into the dyn slice
}

// fuState tracks per-pool unit occupancy. Pipelined ops occupy a unit for
// the issue cycle only; unpipelined ops (divides) hold it for their latency.
type fuState struct {
	busyUntil [isa.NumFUs][]int
	issuedAt  [isa.NumFUs][]int
}

func newFUState() *fuState {
	f := &fuState{}
	for u := isa.FU(0); u < isa.NumFUs; u++ {
		n := isa.FUCount[u]
		f.busyUntil[u] = make([]int, n)
		f.issuedAt[u] = make([]int, n)
		for i := 0; i < n; i++ {
			f.issuedAt[u][i] = -1
		}
	}
	return f
}

// tryIssue claims a unit of class c at the given cycle. Returns false if no
// unit is free this cycle.
func (f *fuState) tryIssue(c isa.Class, cycle int) bool {
	u := isa.UnitFor(c)
	units := f.busyUntil[u]
	for i := range units {
		if units[i] <= cycle && f.issuedAt[u][i] != cycle {
			f.issuedAt[u][i] = cycle
			if !isa.Pipelined[c] {
				units[i] = cycle + isa.Latency[c]
			}
			return true
		}
	}
	return false
}

// Run simulates the request and returns the result. It panics on malformed
// requests (simulator-internal misuse, not user input).
func Run(req Request) Result {
	t := req.Trace
	if t == nil || len(t.Insts) == 0 || req.Iterations <= 0 {
		return Result{}
	}
	n := len(t.Insts)
	if req.Width <= 0 {
		req.Width = isa.IssueWidth
	}
	if req.Policy == Dataflow && req.Window <= 0 {
		req.Window = isa.ROBSize
	}
	if req.ProbeSpan <= 0 {
		req.ProbeSpan = 1
	}
	if req.ProbeSpan > req.Iterations {
		req.ProbeSpan = req.Iterations
	}
	if req.Policy == RecordedOrder {
		if len(req.Order) != n*req.ProbeSpan {
			panic("pipeline: RecordedOrder requires a full probe-span order")
		}
		if req.Iterations%req.ProbeSpan != 0 {
			req.Iterations += req.ProbeSpan - req.Iterations%req.ProbeSpan
		}
	}

	total := n * req.Iterations
	dyns := make([]dyn, total)
	loadSeq := 0
	for it := 0; it < req.Iterations; it++ {
		for j := 0; j < n; j++ {
			d := &dyns[it*n+j]
			d.static = j
			d.iter = it
			d.issued = -1
			in := t.Insts[j]
			d.lat = isa.Latency[in.Op]
			if in.Op == isa.Load && req.LoadLatency != nil {
				d.lat = req.LoadLatency(loadSeq)
				loadSeq++
			}
			for _, p := range req.Deps.Preds[j] {
				d.preds = append(d.preds, it*n+p)
			}
			if it > 0 {
				for _, p := range req.Deps.CarriedPreds[j] {
					d.preds = append(d.preds, (it-1)*n+p)
				}
			}
		}
	}

	res := Result{IterEnd: make([]int, req.Iterations)}
	switch req.Policy {
	case Dataflow:
		runDataflow(req, dyns, &res)
	default:
		runInOrder(req, dyns, &res)
	}
	span := req.ProbeSpan
	probe := (req.Iterations / 2 / span) * span
	if probe+span > req.Iterations {
		probe = req.Iterations - span
	}
	extractProbe(dyns[probe*n:(probe+span)*n], &res)
	return res
}

// readyTime returns the earliest cycle d can issue given its predecessors.
func readyTime(dyns []dyn, d *dyn) int {
	ready := 0
	for _, p := range d.preds {
		pd := &dyns[p]
		if pd.issued < 0 {
			return -1 // predecessor not even issued yet
		}
		if pd.complete > ready {
			ready = pd.complete
		}
	}
	return ready
}

func runDataflow(req Request, dyns []dyn, res *Result) {
	t := req.Trace
	n := len(t.Insts)
	total := len(dyns)
	fus := newFUState()

	dispatched := 0 // next undipatched index
	retired := 0
	issuedCount := 0
	// iterGate[i] is the earliest cycle iteration i may begin dispatching
	// (branch mispredict redirect or fetch stall).
	iterGate := make([]int, req.Iterations)
	if req.FetchGate != nil {
		iterGate[0] = req.FetchGate(0)
	}
	cycle := 0
	// inflight holds dispatched, unissued instruction indexes in age order.
	inflight := make([]int, 0, req.Window+req.Width)

	for retired < total {
		// Retire in order (commit width = issue width).
		for c := 0; c < req.Width && retired < total; c++ {
			d := &dyns[retired]
			if d.issued >= 0 && d.complete <= cycle {
				retired++
			} else {
				break
			}
		}

		// Dispatch into the window.
		for c := 0; c < req.Width && dispatched < total; c++ {
			d := &dyns[dispatched]
			if dispatched-retired >= req.Window {
				break
			}
			if cycle < iterGate[d.iter] {
				break
			}
			inflight = append(inflight, dispatched)
			dispatched++
		}

		// Issue oldest-ready-first.
		issuedThis := 0
		fuBlocked := false
		for i := 0; i < len(inflight) && issuedThis < req.Width; i++ {
			idx := inflight[i]
			d := &dyns[idx]
			rt := readyTime(dyns, d)
			if rt < 0 || rt > cycle {
				continue
			}
			in := t.Insts[d.static]
			if !fus.tryIssue(in.Op, cycle) {
				fuBlocked = true
				continue
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(in.Op)]++
			issuedThis++
			issuedCount++
			inflight = append(inflight[:i], inflight[i+1:]...)
			i--
			// Terminating branch: resolve redirect for the next iteration.
			if d.static == n-1 && d.iter+1 < req.Iterations {
				gate := 0
				if req.Mispredicts != nil && req.Mispredicts(d.iter) {
					gate = d.complete + req.MispredictPenalty
				}
				if req.FetchGate != nil {
					if fg := req.FetchGate(d.iter + 1); cycle+fg > gate {
						gate = cycle + fg
					}
				}
				if gate > iterGate[d.iter+1] {
					iterGate[d.iter+1] = gate
				}
			}
			if d.static == n-1 {
				res.IterEnd[d.iter] = d.complete
			}
		}
		if issuedThis == 0 && len(inflight) > 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			} else {
				res.StallDataCycles++
			}
		}
		if issuedThis == 0 && len(inflight) == 0 && dispatched < total &&
			cycle < iterGate[dyns[dispatched].iter] {
			// The window is empty and the front end is gated: a pure fetch
			// stall (mispredict redirect or I-fetch miss).
			res.StallFetchCycles++
		}
		cycle++
		if cycle > 1<<26 {
			panic("pipeline: dataflow simulation did not converge")
		}
	}
	res.Issued = issuedCount
	res.Cycles = 0
	for i := range dyns {
		if dyns[i].complete > res.Cycles {
			res.Cycles = dyns[i].complete
		}
	}
	finalizeIterEnds(dyns, len(t.Insts), res)
}

func runInOrder(req Request, dyns []dyn, res *Result) {
	t := req.Trace
	n := len(t.Insts)
	fus := newFUState()
	issuedCount := 0
	cycle := 0
	gate := 0
	if req.FetchGate != nil {
		gate = req.FetchGate(0)
	}

	// order of dynamic issue: program order or recorded order per iteration.
	seq := make([]int, 0, len(dyns))
	if req.Policy == RecordedOrder {
		span := req.ProbeSpan
		for g := 0; g < req.Iterations/span; g++ {
			base := g * span * n
			for _, pos := range req.Order {
				seq = append(seq, base+int(pos))
			}
		}
	} else {
		for i := range dyns {
			seq = append(seq, i)
		}
	}

	next := 0
	for next < len(seq) {
		if cycle < gate {
			res.StallFetchCycles += gate - cycle
			cycle = gate
		}
		issuedThis := 0
		fuBlocked := false
		for issuedThis < req.Width && next < len(seq) {
			d := &dyns[seq[next]]
			rt := readyTime(dyns, d)
			if rt < 0 {
				panic("pipeline: in-order issue saw unissued predecessor")
			}
			if rt > cycle {
				break // stall-on-use: strictly stop at first stalled inst
			}
			in := t.Insts[d.static]
			if !fus.tryIssue(in.Op, cycle) {
				fuBlocked = true
				break
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(in.Op)]++
			issuedThis++
			issuedCount++

			if d.static == n-1 {
				res.IterEnd[d.iter] = d.complete
				if d.iter+1 < req.Iterations {
					g := 0
					if req.Mispredicts != nil && req.Mispredicts(d.iter) {
						g = d.complete + req.MispredictPenalty
					}
					if req.FetchGate != nil {
						if fg := req.FetchGate(d.iter + 1); cycle+fg > g {
							g = cycle + fg
						}
					}
					if g > gate {
						gate = g
					}
				}
			}
			next++
		}
		if issuedThis == 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			}
			// Jump to the earliest cycle something can proceed.
			d := &dyns[seq[next]]
			rt := readyTime(dyns, d)
			if rt > cycle {
				res.StallDataCycles += rt - cycle
				cycle = rt
				continue
			}
			if !fuBlocked {
				res.StallDataCycles++
			}
			cycle++
			if cycle > 1<<26 {
				panic("pipeline: in-order simulation did not converge")
			}
			continue
		}
		cycle++
	}
	res.Issued = issuedCount
	res.Cycles = 0
	for i := range dyns {
		if dyns[i].complete > res.Cycles {
			res.Cycles = dyns[i].complete
		}
	}
	finalizeIterEnds(dyns, n, res)
}

// finalizeIterEnds makes IterEnd reflect the completion of every
// instruction in the iteration, not just the terminating branch.
func finalizeIterEnds(dyns []dyn, n int, res *Result) {
	iters := len(dyns) / n
	for it := 0; it < iters; it++ {
		end := 0
		for j := 0; j < n; j++ {
			if c := dyns[it*n+j].complete; c > end {
				end = c
			}
		}
		res.IterEnd[it] = end
	}
}

// extractProbe derives the issue order and reorder count of one probe block
// (ProbeSpan iterations). Block positions are it*n+j for instruction j of
// the block's it-th iteration.
func extractProbe(blockDyns []dyn, res *Result) {
	n := len(blockDyns)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (issue cycle, block position) — stable, tiny n.
	for i := 1; i < n; i++ {
		for k := i; k > 0; k-- {
			a, b := &blockDyns[order[k-1]], &blockDyns[order[k]]
			if a.issued > b.issued || (a.issued == b.issued && order[k-1] > order[k]) {
				order[k-1], order[k] = order[k], order[k-1]
			} else {
				break
			}
		}
	}
	res.IssueOrder = make([]uint16, n)
	maxSeen := -1
	for k, idx := range order {
		res.IssueOrder[k] = uint16(idx)
		if idx < maxSeen {
			res.Reordered++
		}
		if idx > maxSeen {
			maxSeen = idx
		}
	}
}

// MaxLiveVersions computes, for a schedule order over a block of one or
// more unrolled trace iterations, the maximum number of simultaneously-live
// renamed versions any architectural register needs during replay. OinO
// hardware caps this at isa.OinOMaxVersions. Block position p corresponds
// to instruction p % len(t.Insts) of iteration p / len(t.Insts).
func MaxLiveVersions(t *trace.Trace, order []uint16) int {
	n := len(order) // block length (span * trace length)
	inst := func(p int) isa.Inst { return t.Insts[p%len(t.Insts)] }
	pos := make([]int, n) // schedule position of each block position
	for k, s := range order {
		pos[s] = k
	}
	// For each register, collect writer lifetimes in schedule positions:
	// a version is live from its write position until the last read of that
	// version (or end of trace for values carried out).
	type life struct{ start, end int }
	lives := make(map[isa.Reg][]life)
	lastWrite := make(map[isa.Reg]int) // block position of last writer in program order
	writeEnd := make(map[int]int)      // block writer position -> last reader schedule pos

	for j := 0; j < n; j++ {
		in := inst(j)
		for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
			if !src.Valid() {
				continue
			}
			if w, ok := lastWrite[src]; ok {
				if pos[j] > writeEnd[w] {
					writeEnd[w] = pos[j]
				}
			}
		}
		if in.HasDst() {
			lastWrite[in.Dst] = j
		}
	}
	for j := 0; j < n; j++ {
		in := inst(j)
		if !in.HasDst() {
			continue
		}
		end, ok := writeEnd[j]
		if !ok {
			end = pos[j]
		}
		if lastWrite[in.Dst] == j {
			end = n // carried out of the block: live until replay end
		}
		lives[in.Dst] = append(lives[in.Dst], life{start: pos[j], end: end})
	}
	maxV := 1
	for _, ls := range lives {
		// Sweep: count overlapping lifetimes.
		for _, a := range ls {
			overlap := 0
			for _, b := range ls {
				if b.start <= a.start && a.start <= b.end {
					overlap++
				}
			}
			if overlap > maxV {
				maxV = overlap
			}
		}
	}
	return maxV
}
