// Package pipeline contains the cycle-level issue simulator shared by the
// three core models. One engine, three issue policies:
//
//   - Dataflow: the OoO backend — instructions issue oldest-ready-first out
//     of a ROB-limited window (wakeup/select), overlapping loop iterations.
//   - ProgramOrder: the InO backend — strict in-order, stall-on-use issue.
//   - RecordedOrder: the OinO mode — in-order stall-on-use issue, but in the
//     order a memoized OoO schedule dictates rather than program order.
//
// All three respect the same functional-unit pools and superscalar width
// (Section 4.2: the InO has the same width and FUs as the OoO so schedules
// transfer directly), the same register dependences, and per-dynamic-load
// latencies supplied by the memory hierarchy.
//
// The implementation (engine.go, events.go) is event-driven: wakeup lists
// propagate readiness, a calendar queue holds future wakeups, and the main
// loops jump over cycles in which nothing can happen. Results are
// bit-identical to the original cycle-by-cycle engine, whose frozen copy
// serves as the test oracle (reference_test.go).
package pipeline

import (
	"sort"

	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Policy selects the issue order rule.
type Policy uint8

const (
	// Dataflow is OoO wakeup/select issue inside a ROB window.
	Dataflow Policy = iota
	// ProgramOrder is in-order, stall-on-use issue.
	ProgramOrder
	// RecordedOrder is in-order stall-on-use issue following a memoized
	// schedule's order.
	RecordedOrder
)

// Request describes one trace-execution simulation: how many back-to-back
// iterations of the trace to run and under which policy.
type Request struct {
	Trace *trace.Trace
	Deps  *trace.DepGraph
	// Iterations is the number of consecutive trace iterations to simulate.
	Iterations int
	Policy     Policy
	// Order is the issue order for RecordedOrder, covering ProbeSpan
	// consecutive iterations (len(Order) == ProbeSpan * len(Trace.Insts)).
	Order []uint16
	// ProbeSpan is how many consecutive iterations one schedule unit
	// covers. Recording across iterations preserves the OoO's
	// cross-iteration overlap, which in-order replay needs (see
	// ooo.ScheduleSpan). Defaults to 1.
	ProbeSpan int

	Width  int
	Window int // ROB capacity; used by Dataflow only
	// MispredictPenalty is the front-end refill depth charged after a
	// mispredicted trace-terminating branch.
	MispredictPenalty int

	// LoadLatency returns the latency of the k-th dynamic load overall
	// (caller resolves it against the cache hierarchy). If nil, all loads
	// take the L1-hit latency.
	LoadLatency func(loadSeq int) int
	// Mispredicts reports whether the terminating branch of iteration i
	// mispredicts. If nil, no branch ever mispredicts.
	Mispredicts func(iter int) bool
	// FetchGate returns extra cycles gating the start of iteration i
	// (instruction-cache or Schedule-Cache miss stalls). May be nil.
	FetchGate func(iter int) int

	// Audit, when non-nil, cross-checks the final schedule against the
	// machine invariants after the run (audit.go, DESIGN.md §11); the
	// default nil costs one comparison. AuditLabel locates violations
	// (core label and benchmark).
	Audit      *invariant.Auditor
	AuditLabel string
}

// Result is the outcome of a simulation.
type Result struct {
	// Cycles is the cycle at which the last instruction completed.
	Cycles int
	// IterEnd[i] is the completion cycle of iteration i's last instruction.
	IterEnd []int
	// IssueOrder is the issue order observed for the probe block (ProbeSpan
	// iterations out of the middle of the run). Entries index into the
	// block: value it*len(Trace.Insts)+j is instruction j of the block's
	// it-th iteration.
	IssueOrder []uint16
	// Reordered counts probe-block instructions issued before an older
	// instruction of the same block.
	Reordered int
	// Issued is the total number of instructions issued.
	Issued int
	// FUBusy[f] accumulates issue events per functional-unit pool (an
	// energy proxy).
	FUBusy [isa.NumFUs]uint64
	// LoadStallCycles estimates cycles the issue stage spent unable to
	// issue anything (an energy/utilization proxy).
	LoadStallCycles int
	// StallDataCycles, StallFUCycles and StallFetchCycles break issue
	// stalls down by cause — operand not ready, every free functional unit
	// of the needed class busy, and front end gated (I-fetch miss or branch
	// redirect). Data and FU stalls partition LoadStallCycles' events;
	// fetch stalls are counted separately in cycles skipped at the gate.
	StallDataCycles  int
	StallFUCycles    int
	StallFetchCycles int
}

// SteadyCyclesPerIter returns the marginal cycles per iteration measured
// over the back half of the run, where caches and iteration overlap have
// reached steady state.
func (r *Result) SteadyCyclesPerIter() float64 {
	n := len(r.IterEnd)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return float64(r.IterEnd[0])
	}
	half := n / 2
	span := r.IterEnd[n-1] - r.IterEnd[half-1]
	iters := n - half
	if span <= 0 || iters <= 0 {
		return float64(r.IterEnd[n-1]) / float64(n)
	}
	return float64(span) / float64(iters)
}

// regLife is one renamed-register lifetime in schedule positions.
type regLife struct {
	reg   isa.Reg
	start int
	end   int
}

// MaxLiveVersions computes, for a schedule order over a block of one or
// more unrolled trace iterations, the maximum number of simultaneously-live
// renamed versions any architectural register needs during replay. OinO
// hardware caps this at isa.OinOMaxVersions. Block position p corresponds
// to instruction p % len(t.Insts) of iteration p / len(t.Insts).
//
// A version is live from its write position until the last read of that
// version (or end of block for values carried out). The maximum overlap per
// register is found with a sorted two-pointer sweep over lifetime endpoints
// — O(n log n) against the previous all-pairs stabbing count.
func MaxLiveVersions(t *trace.Trace, order []uint16) int {
	n := len(order) // block length (span * trace length)
	tn := len(t.Insts)
	pos := make([]int, n) // schedule position of each block position
	for k, s := range order {
		pos[s] = k
	}
	var lastWrite [isa.NumRegs]int // block position of last writer in program order
	for r := range lastWrite {
		lastWrite[r] = -1
	}
	// writeEnd[w] is the latest reader schedule position recorded for writer
	// w; seen[w] marks whether any reader recorded one. A reader at schedule
	// position 0 never records (0 > 0 is false) — the original map-based
	// sweep behaved the same way via the map's zero value, and replay
	// version counts are part of the simulator's frozen behaviour.
	writeEnd := make([]int, n)
	seen := make([]bool, n)
	for j := 0; j < n; j++ {
		in := t.Insts[j%tn]
		for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
			if !src.Valid() {
				continue
			}
			if w := lastWrite[src]; w >= 0 && pos[j] > writeEnd[w] {
				writeEnd[w] = pos[j]
				seen[w] = true
			}
		}
		if in.HasDst() {
			lastWrite[in.Dst] = j
		}
	}
	lives := make([]regLife, 0, n)
	for j := 0; j < n; j++ {
		in := t.Insts[j%tn]
		if !in.HasDst() {
			continue
		}
		end := pos[j]
		if seen[j] {
			end = writeEnd[j]
		}
		if lastWrite[in.Dst] == j {
			end = n // carried out of the block: live until replay end
		}
		if end < pos[j] {
			// Degenerate lifetime (all reads scheduled before the write):
			// it covers no point, and the maximum overlap is always attained
			// at a non-degenerate lifetime's start, so it cannot contribute.
			continue
		}
		lives = append(lives, regLife{reg: in.Dst, start: pos[j], end: end})
	}
	sort.Slice(lives, func(a, b int) bool {
		if lives[a].reg != lives[b].reg {
			return lives[a].reg < lives[b].reg
		}
		return lives[a].start < lives[b].start
	})
	maxV := 1
	ends := make([]int, 0, len(lives))
	for lo := 0; lo < len(lives); {
		hi := lo
		for hi < len(lives) && lives[hi].reg == lives[lo].reg {
			hi++
		}
		// Count the maximum number of lifetimes of this register covering
		// any one lifetime's start: starts are sorted; sweep ends alongside.
		ends = ends[:0]
		for i := lo; i < hi; i++ {
			ends = append(ends, lives[i].end)
		}
		sort.Ints(ends)
		k := 0
		for i := lo; i < hi; i++ {
			for ends[k] < lives[i].start {
				k++
			}
			if v := (i - lo) - k + 1; v > maxV {
				maxV = v
			}
		}
		lo = hi
	}
	return maxV
}
