package pipeline

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/trace"
)

// The event-driven engine. The original engine rescanned every in-flight
// instruction's predecessors every cycle and advanced time one cycle at a
// time; this one propagates readiness along successor (wakeup) lists when an
// instruction issues, keeps the ready set as an age-ordered bitmap, files
// future wakeups in a calendar queue, and jumps over cycles in which nothing
// can happen — charging the skipped span to the same stall counters the
// cycle-by-cycle loop would have. Results are bit-identical to the original
// engine (see reference_test.go and DESIGN.md §9 for the argument).

// edyn is the per-dynamic-instruction state. Stored flat and reused across
// runs; every field is (re)initialized by prepare.
type edyn struct {
	lat      int
	issued   int // cycle issued, -1 before
	complete int
	readyAt  int   // running max of completes over *issued* predecessors
	npred    int32 // predecessors not yet issued (counted with multiplicity)
	static   int32 // index within the trace
	iter     int32
}

// flatDeps is the CSR (compressed sparse row) flattening of a DepGraph:
// predecessor and successor adjacency in single backing arrays, built once
// per trace and memoized on the graph. Duplicate edges (both source operands
// reading the same producer) are kept — npred counts them with multiplicity,
// so the successor lists must too.
//
// For static instruction j, intra-iteration predecessors live at
// preds[predOff[2j]:predOff[2j+1]] and loop-carried predecessors at
// preds[predOff[2j+1]:predOff[2j+2]]; succOff/succs use the same layout for
// the reverse edges.
type flatDeps struct {
	n       int
	predOff []int32
	preds   []int32
	succOff []int32
	succs   []int32
}

func flatDepsOf(g *trace.DepGraph) *flatDeps {
	return g.Derived(func() any { return buildFlatDeps(g) }).(*flatDeps)
}

func buildFlatDeps(g *trace.DepGraph) *flatDeps {
	n := len(g.Preds)
	fd := &flatDeps{n: n}
	total := 0
	for j := 0; j < n; j++ {
		total += len(g.Preds[j]) + len(g.CarriedPreds[j])
	}
	fd.predOff = make([]int32, 2*n+1)
	fd.preds = make([]int32, 0, total)
	for j := 0; j < n; j++ {
		fd.predOff[2*j] = int32(len(fd.preds))
		for _, p := range g.Preds[j] {
			fd.preds = append(fd.preds, int32(p))
		}
		fd.predOff[2*j+1] = int32(len(fd.preds))
		for _, p := range g.CarriedPreds[j] {
			fd.preds = append(fd.preds, int32(p))
		}
	}
	fd.predOff[2*n] = int32(len(fd.preds))

	// Invert into successor lists, preserving multiplicity and, within each
	// producer's list, consumer program order.
	cnt := make([]int32, 2*n+1)
	for j := 0; j < n; j++ {
		for _, p := range g.Preds[j] {
			cnt[2*p]++
		}
		for _, p := range g.CarriedPreds[j] {
			cnt[2*p+1]++
		}
	}
	fd.succOff = make([]int32, 2*n+1)
	off := int32(0)
	for i := 0; i < 2*n; i++ {
		fd.succOff[i] = off
		off += cnt[i]
	}
	fd.succOff[2*n] = off
	fd.succs = make([]int32, total)
	cursor := make([]int32, 2*n)
	copy(cursor, fd.succOff[:2*n])
	for j := 0; j < n; j++ {
		for _, p := range g.Preds[j] {
			fd.succs[cursor[2*p]] = int32(j)
			cursor[2*p]++
		}
		for _, p := range g.CarriedPreds[j] {
			fd.succs[cursor[2*p+1]] = int32(j)
			cursor[2*p+1]++
		}
	}
	return fd
}

// Engine holds the reusable simulation scratch: dynamic-instruction state,
// the ready bitmap, the wakeup calendar, functional-unit occupancy, and the
// issue-order sort buffer. A steady-state Run allocates only the two slices
// the Result carries out (IterEnd and IssueOrder). An Engine is not safe for
// concurrent use; each worker owns one (the package-level Run draws from a
// pool).
type Engine struct {
	dyns     []edyn
	iterGate []int
	seq      []int32
	cls      []isa.Class
	ready    readySet
	cal      calendar
	fus      fuState
	orderBuf []int32
}

// NewEngine returns an engine with empty scratch; buffers grow to fit the
// largest request seen and are retained.
func NewEngine() *Engine {
	e := &Engine{}
	e.fus.init()
	return e
}

var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// Run simulates the request and returns the result. It panics on malformed
// requests (simulator-internal misuse, not user input). The simulation runs
// on a pooled engine; callers that measure in a loop should hold their own
// Engine instead.
func Run(req Request) Result {
	e := enginePool.Get().(*Engine)
	res := e.Run(req)
	enginePool.Put(e)
	return res
}

// Run simulates the request on this engine's scratch storage.
func (e *Engine) Run(req Request) Result {
	t := req.Trace
	if t == nil || len(t.Insts) == 0 || req.Iterations <= 0 {
		return Result{}
	}
	n := len(t.Insts)
	if req.Width <= 0 {
		req.Width = isa.IssueWidth
	}
	if req.Policy == Dataflow && req.Window <= 0 {
		req.Window = isa.ROBSize
	}
	if req.ProbeSpan <= 0 {
		req.ProbeSpan = 1
	}
	if req.ProbeSpan > req.Iterations {
		req.ProbeSpan = req.Iterations
	}
	if req.Policy == RecordedOrder {
		if len(req.Order) != n*req.ProbeSpan {
			panic("pipeline: RecordedOrder requires a full probe-span order")
		}
		if req.Iterations%req.ProbeSpan != 0 {
			req.Iterations += req.ProbeSpan - req.Iterations%req.ProbeSpan
		}
	}

	fd := flatDepsOf(req.Deps)
	e.prepare(&req, fd)

	res := Result{IterEnd: make([]int, req.Iterations)}
	switch req.Policy {
	case Dataflow:
		e.runDataflow(&req, fd, &res)
	default:
		e.runInOrder(&req, fd, &res)
	}
	span := req.ProbeSpan
	probe := (req.Iterations / 2 / span) * span
	if probe+span > req.Iterations {
		probe = req.Iterations - span
	}
	e.extractProbe(probe*n, (probe+span)*n, &res)
	if req.Audit != nil {
		e.audit(&req, fd, &res)
	}
	return res
}

// prepare sizes the scratch for the request and initializes per-dynamic
// state: latencies (drawing LoadLatency per dynamic load in program order,
// exactly like the original engine), predecessor counts, and issue state.
func (e *Engine) prepare(req *Request, fd *flatDeps) {
	t := req.Trace
	n := fd.n
	iters := req.Iterations
	total := n * iters

	if cap(e.dyns) < total {
		e.dyns = make([]edyn, total)
	}
	e.dyns = e.dyns[:total]
	if cap(e.iterGate) < iters {
		e.iterGate = make([]int, iters)
	}
	e.iterGate = e.iterGate[:iters]
	for i := range e.iterGate {
		e.iterGate[i] = 0
	}
	if cap(e.cls) < n {
		e.cls = make([]isa.Class, n)
	}
	e.cls = e.cls[:n]
	for j := 0; j < n; j++ {
		e.cls[j] = t.Insts[j].Op
	}

	loadSeq := 0
	for it := 0; it < iters; it++ {
		base := it * n
		for j := 0; j < n; j++ {
			d := &e.dyns[base+j]
			d.static = int32(j)
			d.iter = int32(it)
			d.issued = -1
			d.complete = 0
			d.readyAt = 0
			op := e.cls[j]
			d.lat = isa.Latency[op]
			if op == isa.Load && req.LoadLatency != nil {
				d.lat = req.LoadLatency(loadSeq)
				loadSeq++
			}
			np := fd.predOff[2*j+1] - fd.predOff[2*j]
			if it > 0 {
				np += fd.predOff[2*j+2] - fd.predOff[2*j+1]
			}
			d.npred = np
		}
	}
}

// readyTime returns the earliest cycle idx can issue given its predecessors'
// completion times, or -1 if a predecessor has not issued. Used by the
// in-order paths, where predecessors always precede consumers in the issue
// sequence.
func (e *Engine) readyTime(fd *flatDeps, idx int) int {
	d := &e.dyns[idx]
	j := int(d.static)
	base := int(d.iter) * fd.n
	ready := 0
	for _, p := range fd.preds[fd.predOff[2*j]:fd.predOff[2*j+1]] {
		pd := &e.dyns[base+int(p)]
		if pd.issued < 0 {
			return -1
		}
		if pd.complete > ready {
			ready = pd.complete
		}
	}
	if d.iter > 0 {
		cb := base - fd.n
		for _, p := range fd.preds[fd.predOff[2*j+1]:fd.predOff[2*j+2]] {
			pd := &e.dyns[cb+int(p)]
			if pd.issued < 0 {
				return -1
			}
			if pd.complete > ready {
				ready = pd.complete
			}
		}
	}
	return ready
}

// wake notifies the successors of a just-issued instruction: fold its
// completion time into their readyAt, drop their unresolved-predecessor
// count, and when the count hits zero on an already-dispatched successor,
// file a calendar wakeup. readyAt is then at least complete >= cycle+1
// (every latency is >= 1), so the wakeup is strictly in the future — an
// instruction can never become issue-eligible in the cycle its last
// predecessor issues, which is exactly the original engine's readyTime rule.
func (e *Engine) wake(fd *flatDeps, idx, cycle, dispatched, iters, complete int) {
	d := &e.dyns[idx]
	j := int(d.static)
	base := int(d.iter) * fd.n
	for _, k := range fd.succs[fd.succOff[2*j]:fd.succOff[2*j+1]] {
		e.wakeOne(base+int(k), cycle, dispatched, complete)
	}
	if int(d.iter)+1 < iters {
		nb := base + fd.n
		for _, k := range fd.succs[fd.succOff[2*j+1]:fd.succOff[2*j+2]] {
			e.wakeOne(nb+int(k), cycle, dispatched, complete)
		}
	}
}

func (e *Engine) wakeOne(s, cycle, dispatched, complete int) {
	d := &e.dyns[s]
	if complete > d.readyAt {
		d.readyAt = complete
	}
	d.npred--
	if d.npred == 0 && s < dispatched {
		e.cal.schedule(cycle, d.readyAt, int32(s))
	}
}

func (e *Engine) runDataflow(req *Request, fd *flatDeps, res *Result) {
	n := fd.n
	total := len(e.dyns)
	width := req.Width
	window := req.Window
	iters := req.Iterations
	iterGate := e.iterGate
	e.ready.reset(total)
	e.cal.reset()
	e.fus.reset()
	if req.FetchGate != nil {
		iterGate[0] = req.FetchGate(0)
	}

	dispatched := 0 // next undispatched index
	retired := 0
	issuedCount := 0
	inflightCount := 0 // dispatched but not yet issued
	cycle := 0

	for retired < total {
		// Deliver wakeups due this cycle into the ready set.
		e.cal.drain(cycle, func(idx int32) { e.ready.add(int(idx)) })

		// Retire in order (commit width = issue width).
		for c := 0; c < width && retired < total; c++ {
			d := &e.dyns[retired]
			if d.issued >= 0 && d.complete <= cycle {
				retired++
			} else {
				break
			}
		}

		// Dispatch into the window. An instruction whose operands are already
		// complete goes straight to the ready set; one whose operands resolve
		// at a known future cycle files a calendar wakeup; one with unissued
		// predecessors is woken by them.
		for c := 0; c < width && dispatched < total; c++ {
			if dispatched-retired >= window {
				break
			}
			if cycle < iterGate[dispatched/n] {
				break
			}
			d := &e.dyns[dispatched]
			if d.npred == 0 {
				if d.readyAt <= cycle {
					e.ready.add(dispatched)
				} else {
					e.cal.schedule(cycle, d.readyAt, int32(dispatched))
				}
			}
			inflightCount++
			dispatched++
		}

		// Issue oldest-ready-first: an ascending scan of the ready bitmap is
		// age order, the same order the original engine walked its in-flight
		// list — so FU claims and rng callback draws happen in the same order.
		issuedThis := 0
		fuBlocked := false
		e.ready.scan(retired, dispatched, func(idx int) bool {
			d := &e.dyns[idx]
			op := e.cls[d.static]
			if !e.fus.tryIssue(op, cycle) {
				fuBlocked = true
				return true // a later instruction of another class may fit
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(op)]++
			issuedThis++
			issuedCount++
			inflightCount--
			e.ready.remove(idx)
			e.wake(fd, idx, cycle, dispatched, iters, d.complete)
			if int(d.static) == n-1 {
				if it := int(d.iter); it+1 < iters {
					// Terminating branch: resolve the next iteration's
					// front-end redirect.
					gate := 0
					if req.Mispredicts != nil && req.Mispredicts(it) {
						gate = d.complete + req.MispredictPenalty
					}
					if req.FetchGate != nil {
						if fg := req.FetchGate(it + 1); cycle+fg > gate {
							gate = cycle + fg
						}
					}
					if gate > iterGate[it+1] {
						iterGate[it+1] = gate
					}
				}
				res.IterEnd[d.iter] = d.complete
			}
			return issuedThis < width
		})

		if issuedThis == 0 && inflightCount > 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			} else {
				res.StallDataCycles++
			}
		}
		fetchGated := issuedThis == 0 && inflightCount == 0 && dispatched < total &&
			cycle < iterGate[dispatched/n]
		if fetchGated {
			// The window is empty and the front end is gated: a pure fetch
			// stall (mispredict redirect or I-fetch miss).
			res.StallFetchCycles++
		}

		// Cycle skipping: if nothing issued and no per-cycle progress (retire
		// or dispatch drain) is pending, jump to the next cycle at which the
		// machine state can change, charging the skipped span to the same
		// stall counters this cycle received — the skipped cycles are
		// provably identical idle cycles.
		if issuedThis == 0 && retired < total {
			if next := e.nextDataflowEvent(cycle, retired, dispatched, total, window, n); next > cycle+1 {
				span := next - cycle - 1
				if inflightCount > 0 {
					res.LoadStallCycles += span
					if fuBlocked {
						res.StallFUCycles += span
					} else {
						res.StallDataCycles += span
					}
				} else if fetchGated {
					// The gate may open mid-span when dispatch stays
					// window-blocked past it; fetch stalls are only counted
					// while the gate is closed.
					if g := iterGate[dispatched/n]; g < next {
						res.StallFetchCycles += g - cycle - 1
					} else {
						res.StallFetchCycles += span
					}
				}
				cycle = next - 1
			}
		}
		cycle++
		if cycle > 1<<26 {
			panic("pipeline: dataflow simulation did not converge")
		}
	}
	res.Issued = issuedCount
	e.finishRun(n, res)
}

// nextDataflowEvent returns the earliest cycle after now at which the
// dataflow machine state can change, or now+1 when the next cycle does
// per-cycle work (width-limited retire or dispatch draining) and no skip is
// possible. Candidate events: the in-order head completing (retirement and
// window-full dispatch unblock), the front-end gate of the next iteration
// opening, a calendar wakeup making an instruction data-ready, and a busy
// functional unit freeing (only relevant when ready instructions exist —
// in an idle cycle every ready instruction is FU-blocked).
func (e *Engine) nextDataflowEvent(now, retired, dispatched, total, window, n int) int {
	best := -1
	upd := func(c int) {
		if best < 0 || c < best {
			best = c
		}
	}
	if retired < total {
		d := &e.dyns[retired]
		if d.issued >= 0 {
			if d.complete <= now {
				return now + 1 // width-limited retirement continues next cycle
			}
			upd(d.complete)
		}
	}
	if dispatched < total && dispatched-retired < window {
		g := e.iterGate[dispatched/n]
		if g <= now {
			return now + 1 // dispatch has room and is not gated: it drains
		}
		upd(g)
	}
	if c := e.cal.next(now); c >= 0 {
		upd(c)
	}
	if e.ready.count > 0 {
		if c := e.fus.nextExpiry(now); c >= 0 {
			upd(c)
		}
	}
	if best < 0 {
		return now + 1
	}
	return best
}

func (e *Engine) runInOrder(req *Request, fd *flatDeps, res *Result) {
	n := fd.n
	total := len(e.dyns)
	width := req.Width
	iters := req.Iterations
	e.fus.reset()
	issuedCount := 0
	cycle := 0
	gate := 0
	if req.FetchGate != nil {
		gate = req.FetchGate(0)
	}

	// Dynamic issue sequence: program order, or the recorded pattern repeated
	// per span group. Program order needs no table — seq is the identity.
	recorded := req.Policy == RecordedOrder
	if recorded {
		if cap(e.seq) < total {
			e.seq = make([]int32, 0, total)
		}
		e.seq = e.seq[:0]
		span := req.ProbeSpan
		for g := 0; g < iters/span; g++ {
			base := int32(g * span * n)
			for _, pos := range req.Order {
				e.seq = append(e.seq, base+int32(pos))
			}
		}
	}
	at := func(i int) int {
		if recorded {
			return int(e.seq[i])
		}
		return i
	}

	next := 0
	for next < total {
		if cycle < gate {
			res.StallFetchCycles += gate - cycle
			cycle = gate
		}
		issuedThis := 0
		fuBlocked := false
		var blockedOp isa.Class
		for issuedThis < width && next < total {
			d := &e.dyns[at(next)]
			rt := e.readyTime(fd, at(next))
			if rt < 0 {
				panic("pipeline: in-order issue saw unissued predecessor")
			}
			if rt > cycle {
				break // stall-on-use: strictly stop at first stalled inst
			}
			op := e.cls[d.static]
			if !e.fus.tryIssue(op, cycle) {
				fuBlocked = true
				blockedOp = op
				break
			}
			d.issued = cycle
			d.complete = cycle + d.lat
			res.FUBusy[isa.UnitFor(op)]++
			issuedThis++
			issuedCount++

			if int(d.static) == n-1 {
				res.IterEnd[d.iter] = d.complete
				if it := int(d.iter); it+1 < iters {
					g := 0
					if req.Mispredicts != nil && req.Mispredicts(it) {
						g = d.complete + req.MispredictPenalty
					}
					if req.FetchGate != nil {
						if fg := req.FetchGate(it + 1); cycle+fg > g {
							g = cycle + fg
						}
					}
					if g > gate {
						gate = g
					}
				}
			}
			next++
		}
		if issuedThis == 0 {
			res.LoadStallCycles++
			if fuBlocked {
				res.StallFUCycles++
			}
			// Jump to the earliest cycle something can proceed.
			rt := e.readyTime(fd, at(next))
			if rt > cycle {
				res.StallDataCycles += rt - cycle
				cycle = rt
				continue
			}
			if !fuBlocked {
				res.StallDataCycles++
			}
			if fuBlocked {
				// The head is data-ready but every unit of its class is busy
				// past this cycle; each intervening cycle replays the same
				// failed claim, so jump to the first expiry, charging the
				// span as the per-cycle loop would have.
				if m := e.fus.minBusyOf(isa.UnitFor(blockedOp), cycle); m > cycle+1 {
					extra := m - cycle - 1
					res.LoadStallCycles += extra
					res.StallFUCycles += extra
					cycle = m - 1
				}
			}
			cycle++
			if cycle > 1<<26 {
				panic("pipeline: in-order simulation did not converge")
			}
			continue
		}
		cycle++
	}
	res.Issued = issuedCount
	e.finishRun(n, res)
}

// finishRun derives Cycles and the per-iteration completion times from the
// final dynamic state: IterEnd reflects the completion of every instruction
// in the iteration, not just the terminating branch.
func (e *Engine) finishRun(n int, res *Result) {
	res.Cycles = 0
	iters := len(e.dyns) / n
	for it := 0; it < iters; it++ {
		end := 0
		for j := 0; j < n; j++ {
			if c := e.dyns[it*n+j].complete; c > end {
				end = c
			}
		}
		res.IterEnd[it] = end
		if end > res.Cycles {
			res.Cycles = end
		}
	}
}

// extractProbe derives the issue order and reorder count of one probe block
// (ProbeSpan iterations, dyns[lo:hi]). Block positions are it*n+j for
// instruction j of the block's it-th iteration.
func (e *Engine) extractProbe(lo, hi int, res *Result) {
	n := hi - lo
	if cap(e.orderBuf) < n {
		e.orderBuf = make([]int32, n)
	}
	order := e.orderBuf[:n]
	for i := range order {
		order[i] = int32(i)
	}
	block := e.dyns[lo:hi]
	// Insertion sort by (issue cycle, block position) — stable, tiny n.
	for i := 1; i < n; i++ {
		for k := i; k > 0; k-- {
			a, b := &block[order[k-1]], &block[order[k]]
			if a.issued > b.issued || (a.issued == b.issued && order[k-1] > order[k]) {
				order[k-1], order[k] = order[k], order[k-1]
			} else {
				break
			}
		}
	}
	res.IssueOrder = make([]uint16, n)
	maxSeen := int32(-1)
	for k, idx := range order {
		res.IssueOrder[k] = uint16(idx)
		if idx < maxSeen {
			res.Reordered++
		}
		if idx > maxSeen {
			maxSeen = idx
		}
	}
}
