package pipeline

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/trace"
)

// auditRun runs tr under pol with an auditor attached and returns it.
func auditRun(tr *trace.Trace, pol Policy, iters int) *invariant.Auditor {
	aud := invariant.New(nil)
	Run(Request{
		Trace:      tr,
		Deps:       trace.BuildDepGraph(tr),
		Iterations: iters,
		Policy:     pol,
		Width:      isa.IssueWidth,
		Window:     isa.ROBSize,
		Audit:      aud,
		AuditLabel: "audit-test",
	})
	return aud
}

func TestAuditCleanOnEveryPolicy(t *testing.T) {
	for _, tr := range []*trace.Trace{blockedChains(4, 10), serialChain(30)} {
		for _, pol := range []Policy{ProgramOrder, Dataflow} {
			if aud := auditRun(tr, pol, 8); aud.Total() != 0 {
				t.Errorf("policy %v: %v", pol, aud.Err())
			}
		}
	}
}

func TestAuditCleanOnRecordedOrder(t *testing.T) {
	tr := blockedChains(3, 8)
	deps := trace.BuildDepGraph(tr)
	probe := Run(Request{
		Trace: tr, Deps: deps, Iterations: 8,
		Policy: Dataflow, Width: isa.IssueWidth, Window: isa.ROBSize, ProbeSpan: 2,
	})
	aud := invariant.New(nil)
	Run(Request{
		Trace: tr, Deps: deps, Iterations: 8,
		Policy: RecordedOrder, Order: probe.IssueOrder, ProbeSpan: 2,
		Width: isa.IssueWidth,
		Audit: aud, AuditLabel: "audit-test",
	})
	if aud.Total() != 0 {
		t.Fatalf("recorded-order replay: %v", aud.Err())
	}
}

// violated reports whether the auditor retained a violation of check.
func violated(aud *invariant.Auditor, check string) bool {
	for _, v := range aud.Violations() {
		if v.Check == check {
			return true
		}
	}
	return false
}

// tamper runs tr in-order on a private engine, lets corrupt mutate the
// engine's final state, re-audits, and returns the auditor. This white-box
// harness proves the audit actually detects broken schedules rather than
// vacuously passing.
func tamper(t *testing.T, corrupt func(e *Engine, res *Result)) *invariant.Auditor {
	t.Helper()
	tr := serialChain(20)
	req := Request{
		Trace:      tr,
		Deps:       trace.BuildDepGraph(tr),
		Iterations: 4,
		Policy:     ProgramOrder,
		Width:      isa.IssueWidth,
	}
	e := NewEngine()
	res := e.Run(req)
	corrupt(e, &res)
	aud := invariant.New(nil)
	req.Audit = aud
	req.AuditLabel = "tampered"
	e.audit(&req, flatDepsOf(req.Deps), &res)
	return aud
}

func TestAuditDetectsIssueCountMismatch(t *testing.T) {
	aud := tamper(t, func(e *Engine, res *Result) { res.Issued++ })
	if !violated(aud, "pipeline.issued_count") {
		t.Fatalf("tampered issue count undetected: %v", aud.Err())
	}
}

func TestAuditDetectsUnissuedInstruction(t *testing.T) {
	aud := tamper(t, func(e *Engine, res *Result) { e.dyns[3].issued = -1 })
	if !violated(aud, "pipeline.issued") {
		t.Fatalf("unissued dyn undetected: %v", aud.Err())
	}
}

func TestAuditDetectsDependenceViolation(t *testing.T) {
	aud := tamper(t, func(e *Engine, res *Result) {
		// Pull a chain link back to its producer's issue cycle — before the
		// producer's result exists. Keep complete consistent so only the
		// dependence-order invariant is at fault.
		d := &e.dyns[1]
		d.issued = e.dyns[0].issued
		d.complete = d.issued + d.lat
	})
	if !violated(aud, "pipeline.dep_order") {
		t.Fatalf("dependence violation undetected: %v", aud.Err())
	}
}

func TestAuditDetectsWidthOverflow(t *testing.T) {
	aud := tamper(t, func(e *Engine, res *Result) {
		// Cram every instruction of one iteration into the same cycle.
		c := e.dyns[0].issued
		for i := range e.dyns[:len(e.dyns)/4] {
			d := &e.dyns[i]
			d.issued = c
			d.complete = c + d.lat
		}
	})
	if !violated(aud, "pipeline.width") {
		t.Fatalf("width overflow undetected: %v", aud.Err())
	}
}

func TestAuditDetectsNonMonotoneInOrderIssue(t *testing.T) {
	aud := tamper(t, func(e *Engine, res *Result) {
		// Issue the last instruction earlier than its predecessors: legal
		// for dataflow, a contract violation for an in-order pipeline.
		d := &e.dyns[len(e.dyns)-1]
		d.issued = 0
		d.complete = d.issued + d.lat
	})
	if !violated(aud, "pipeline.inorder_monotone") {
		t.Fatalf("non-monotone issue undetected: %v", aud.Err())
	}
}
