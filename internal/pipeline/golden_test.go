package pipeline

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

var update = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// goldenCase builds one Request per invocation. The factory is called fresh
// for every run so stateful callbacks (seeded rngs behind LoadLatency /
// Mispredicts) start from the same point: an engine that draws from them in
// a different order or count cannot match the fixture.
type goldenCase struct {
	name string
	req  func() Request
}

// memLatPattern mimics the hierarchy: mostly L1 hits with occasional L2 and
// DRAM misses, drawn from a seeded stream.
func memLatPattern(seed uint64) func(int) int {
	rng := xrand.New(seed)
	lats := [6]int{2, 2, 2, 17, 17, 137}
	return func(int) int { return lats[rng.Intn(len(lats))] }
}

func mispredictPattern(seed uint64, p float64) func(int) bool {
	rng := xrand.New(seed)
	return func(int) bool { return rng.Bool(p) }
}

func fetchGatePattern(every, stall int) func(int) int {
	return func(it int) int {
		if it%every == 0 {
			return stall
		}
		return 0
	}
}

// recordedOrderFor derives a replayable order from the frozen reference
// engine, the way ooo.MeasureTrace derives schedules in production. Using
// the reference (not the live engine) keeps fixture definitions stable.
func recordedOrderFor(t *trace.Trace, span int) []uint16 {
	res := referenceRun(Request{
		Trace: t, Deps: trace.BuildDepGraph(t), Iterations: 8,
		Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: span,
	})
	return res.IssueOrder
}

func goldenCases() []goldenCase {
	blocked := blockedChains(4, 10)
	serial := serialChain(30)
	r101, r102 := randomTrace(101), randomTrace(102)
	r103, r104 := randomTrace(103), randomTrace(104)
	r105, r106 := randomTrace(105), randomTrace(106)

	deps := func(t *trace.Trace) *trace.DepGraph { return trace.BuildDepGraph(t) }

	return []goldenCase{
		// --- Dataflow ---
		{"dataflow/blocked-w3-win128-span2", func() Request {
			return Request{Trace: blocked, Deps: deps(blocked), Iterations: 8,
				Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: 2}
		}},
		{"dataflow/blocked-w3-win8", func() Request {
			return Request{Trace: blocked, Deps: deps(blocked), Iterations: 6,
				Policy: Dataflow, Width: 3, Window: 8}
		}},
		{"dataflow/serial-w2-win32", func() Request {
			return Request{Trace: serial, Deps: deps(serial), Iterations: 4,
				Policy: Dataflow, Width: 2, Window: 32}
		}},
		{"dataflow/rand101-mem-mispredict-gate", func() Request {
			return Request{Trace: r101, Deps: deps(r101), Iterations: 8,
				Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: 2,
				MispredictPenalty: 12,
				LoadLatency:       memLatPattern(11),
				Mispredicts:       mispredictPattern(12, 0.3),
				FetchGate:         fetchGatePattern(3, 7)}
		}},
		{"dataflow/rand102-w1-win16-mem", func() Request {
			return Request{Trace: r102, Deps: deps(r102), Iterations: 5,
				Policy: Dataflow, Width: 1, Window: 16,
				LoadLatency: memLatPattern(21)}
		}},
		{"dataflow/rand103-w4-win64-span3", func() Request {
			return Request{Trace: r103, Deps: deps(r103), Iterations: 9,
				Policy: Dataflow, Width: 4, Window: 64, ProbeSpan: 3,
				MispredictPenalty: 12,
				Mispredicts:       mispredictPattern(31, 0.5)}
		}},
		{"dataflow/rand104-single-iter", func() Request {
			return Request{Trace: r104, Deps: deps(r104), Iterations: 1,
				Policy: Dataflow, Width: 3, Window: 128,
				LoadLatency: memLatPattern(41)}
		}},

		// --- ProgramOrder ---
		{"programorder/blocked-w3", func() Request {
			return Request{Trace: blocked, Deps: deps(blocked), Iterations: 8,
				Policy: ProgramOrder, Width: 3}
		}},
		{"programorder/serial-w3", func() Request {
			return Request{Trace: serial, Deps: deps(serial), Iterations: 4,
				Policy: ProgramOrder, Width: 3}
		}},
		{"programorder/rand101-mem-mispredict-gate", func() Request {
			return Request{Trace: r101, Deps: deps(r101), Iterations: 8,
				Policy: ProgramOrder, Width: 3,
				MispredictPenalty: 8,
				LoadLatency:       memLatPattern(51),
				Mispredicts:       mispredictPattern(52, 0.3),
				FetchGate:         fetchGatePattern(2, 9)}
		}},
		{"programorder/rand105-w2-mem", func() Request {
			return Request{Trace: r105, Deps: deps(r105), Iterations: 6,
				Policy: ProgramOrder, Width: 2,
				LoadLatency: memLatPattern(61)}
		}},
		{"programorder/rand106-w1-gate", func() Request {
			return Request{Trace: r106, Deps: deps(r106), Iterations: 3,
				Policy: ProgramOrder, Width: 1,
				FetchGate: fetchGatePattern(1, 4)}
		}},

		// --- RecordedOrder ---
		{"recordedorder/blocked-span2", func() Request {
			return Request{Trace: blocked, Deps: deps(blocked), Iterations: 8,
				Policy: RecordedOrder, Width: 3, ProbeSpan: 2,
				Order: recordedOrderFor(blocked, 2)}
		}},
		{"recordedorder/rand101-span2-mem", func() Request {
			return Request{Trace: r101, Deps: deps(r101), Iterations: 8,
				Policy: RecordedOrder, Width: 3, ProbeSpan: 2,
				Order:       recordedOrderFor(r101, 2),
				LoadLatency: memLatPattern(71)}
		}},
		{"recordedorder/rand103-span4-mispredict", func() Request {
			return Request{Trace: r103, Deps: deps(r103), Iterations: 8,
				Policy: RecordedOrder, Width: 3, ProbeSpan: 4,
				Order:             recordedOrderFor(r103, 4),
				MispredictPenalty: 8,
				Mispredicts:       mispredictPattern(81, 0.4)}
		}},
		{"recordedorder/rand106-span1-mem-gate", func() Request {
			return Request{Trace: r106, Deps: deps(r106), Iterations: 5,
				Policy: RecordedOrder, Width: 2, ProbeSpan: 1,
				Order:       recordedOrderFor(r106, 1),
				LoadLatency: memLatPattern(91),
				FetchGate:   fetchGatePattern(2, 6)}
		}},
	}
}

const goldenFile = "testdata/results.json"

// TestGoldenResults locks pipeline.Run to the fixtures captured from the
// pre-rewrite engine. Comparison is on marshalled bytes, so every Result
// field — cycle counts, the stall breakdown, FUBusy, IssueOrder — must match
// exactly. Regenerate (only with a known-equivalent engine) via -update.
func TestGoldenResults(t *testing.T) {
	got := make(map[string]json.RawMessage)
	for _, c := range goldenCases() {
		res := Run(c.req())
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.name, err)
		}
		got[c.name] = buf
	}

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(got), goldenFile)
		return
	}

	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing fixtures (run with -update on a known-good engine): %v", err)
	}
	want := make(map[string]json.RawMessage)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture count %d != case count %d", len(want), len(got))
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no fixture", name)
			continue
		}
		var wc, gc []byte
		if wc, err = compactJSON(w); err != nil {
			t.Fatalf("%s: fixture: %v", name, err)
		}
		if gc, err = compactJSON(g); err != nil {
			t.Fatalf("%s: result: %v", name, err)
		}
		if string(wc) != string(gc) {
			t.Errorf("%s: result diverged from golden fixture\n got: %s\nwant: %s", name, gc, wc)
		}
	}
}

func compactJSON(raw json.RawMessage) ([]byte, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}
