package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// blockedChains builds a trace of `chains` independent ALU chains of length
// `per`, laid out chain-by-chain (only dynamic reordering can interleave).
func blockedChains(chains, per int) *trace.Trace {
	t := &trace.Trace{ID: 10}
	for c := 0; c < chains; c++ {
		r := isa.Reg(1 + c)
		for k := 0; k < per; k++ {
			t.Insts = append(t.Insts, isa.Inst{Op: isa.IntMul, Dst: r, Src1: r})
		}
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

// serialChain is one long dependent chain; no machine can speed it up.
func serialChain(n int) *trace.Trace {
	t := &trace.Trace{ID: 11}
	for k := 0; k < n; k++ {
		t.Insts = append(t.Insts, isa.Inst{Op: isa.IntALU, Dst: 1, Src1: 1})
	}
	t.Insts = append(t.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: 1})
	return t
}

func run(t *trace.Trace, pol Policy, iters int) Result {
	return Run(Request{
		Trace:      t,
		Deps:       trace.BuildDepGraph(t),
		Iterations: iters,
		Policy:     pol,
		Width:      isa.IssueWidth,
		Window:     isa.ROBSize,
	})
}

func TestDataflowBeatsInOrderOnBlockedChains(t *testing.T) {
	tr := blockedChains(4, 10)
	df := run(tr, Dataflow, 6)
	io := run(tr, ProgramOrder, 6)
	if df.Cycles >= io.Cycles {
		t.Errorf("dataflow %d cycles should beat in-order %d on blocked chains", df.Cycles, io.Cycles)
	}
	// 4 chains of 10 muls: in-order serializes each chain (latency 3 per
	// link); dataflow interleaves them.
	if ratio := float64(io.Cycles) / float64(df.Cycles); ratio < 1.5 {
		t.Errorf("speedup only %.2fx on highly parallel blocked code", ratio)
	}
}

func TestSerialChainEqualEverywhere(t *testing.T) {
	tr := serialChain(30)
	df := run(tr, Dataflow, 4)
	io := run(tr, ProgramOrder, 4)
	// Within a few cycles (pipeline ramp effects): nobody beats a serial
	// dependence chain.
	diff := df.Cycles - io.Cycles
	if diff < -3 || diff > 3 {
		t.Errorf("serial chain: dataflow %d vs in-order %d", df.Cycles, io.Cycles)
	}
}

func TestIssueOrderIsValidPermutation(t *testing.T) {
	tr := blockedChains(3, 8)
	res := Run(Request{
		Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
		Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: 2,
	})
	if len(res.IssueOrder) != 2*len(tr.Insts) {
		t.Fatalf("probe order covers %d positions, want %d", len(res.IssueOrder), 2*len(tr.Insts))
	}
	seen := make([]bool, len(res.IssueOrder))
	for _, p := range res.IssueOrder {
		if int(p) >= len(seen) || seen[p] {
			t.Fatalf("probe order is not a permutation at %d", p)
		}
		seen[p] = true
	}
}

func TestDataflowReordersBlockedCode(t *testing.T) {
	tr := blockedChains(4, 8)
	res := run(tr, Dataflow, 6)
	if res.Reordered == 0 {
		t.Error("dataflow issue of blocked chains should reorder instructions")
	}
	io := run(tr, ProgramOrder, 6)
	if io.Reordered != 0 {
		t.Errorf("program-order issue reordered %d instructions", io.Reordered)
	}
}

func TestRecordedOrderMatchesDataflowShape(t *testing.T) {
	tr := blockedChains(4, 10)
	df := Run(Request{
		Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
		Policy: Dataflow, Width: 3, Window: 128, ProbeSpan: 2,
	})
	re := Run(Request{
		Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
		Policy: RecordedOrder, Order: df.IssueOrder, ProbeSpan: 2, Width: 3,
	})
	io := run(tr, ProgramOrder, 8)
	if re.Cycles >= io.Cycles {
		t.Errorf("replay (%d cycles) should beat program order (%d)", re.Cycles, io.Cycles)
	}
	if re.Cycles < df.Cycles {
		t.Errorf("replay (%d cycles) cannot beat the dataflow machine (%d)", re.Cycles, df.Cycles)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	tr := blockedChains(6, 10)
	wide := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 6,
		Policy: Dataflow, Width: 3, Window: 128})
	narrow := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 6,
		Policy: Dataflow, Width: 3, Window: 8})
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("ROB 8 (%d cycles) should be slower than ROB 128 (%d)", narrow.Cycles, wide.Cycles)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	tr := serialChain(10)
	base := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
		Policy: ProgramOrder, Width: 3, MispredictPenalty: 8})
	missed := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 8,
		Policy: ProgramOrder, Width: 3, MispredictPenalty: 8,
		Mispredicts: func(int) bool { return true }})
	if missed.Cycles <= base.Cycles {
		t.Errorf("mispredicting every iteration (%d) should cost over baseline (%d)",
			missed.Cycles, base.Cycles)
	}
}

func TestLoadLatencyPropagates(t *testing.T) {
	tr := &trace.Trace{ID: 12, Insts: []isa.Inst{
		{Op: isa.Load, Dst: 1, Src1: isa.NoReg},
		{Op: isa.IntALU, Dst: 2, Src1: 1}, // consumer stalls on the load
		{Op: isa.Branch, Dst: isa.NoReg, Src1: 2},
	}}
	fast := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 4,
		Policy: ProgramOrder, Width: 3, LoadLatency: func(int) int { return 2 }})
	slow := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 4,
		Policy: ProgramOrder, Width: 3, LoadLatency: func(int) int { return 120 }})
	if slow.Cycles < fast.Cycles+100 {
		t.Errorf("120-cycle loads (%d) barely slower than 2-cycle loads (%d)", slow.Cycles, fast.Cycles)
	}
}

func TestFUContention(t *testing.T) {
	// Six independent FP ops per iteration against a single FP unit: issue
	// is FU-bound at 1/cycle regardless of width.
	tr := &trace.Trace{ID: 13}
	for i := 0; i < 6; i++ {
		tr.Insts = append(tr.Insts, isa.Inst{Op: isa.FPAdd, Dst: isa.Reg(isa.NumIntRegs + i), Src1: isa.NoReg})
	}
	tr.Insts = append(tr.Insts, isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: isa.NoReg})
	res := run(tr, Dataflow, 8)
	perIter := res.SteadyCyclesPerIter()
	if perIter < 5.5 {
		t.Errorf("6 FP ops through 1 FP unit take %.1f cycles/iter, want >= 6", perIter)
	}
}

func TestUnpipelinedDivBlocks(t *testing.T) {
	tr := &trace.Trace{ID: 14, Insts: []isa.Inst{
		{Op: isa.IntDiv, Dst: 1, Src1: isa.NoReg},
		{Op: isa.IntDiv, Dst: 2, Src1: isa.NoReg},
		{Op: isa.Branch, Dst: isa.NoReg, Src1: isa.NoReg},
	}}
	res := run(tr, Dataflow, 4)
	// Two independent divides share one unpipelined unit: >= 2*12 cycles
	// per iteration.
	if per := res.SteadyCyclesPerIter(); per < float64(2*isa.Latency[isa.IntDiv])-1 {
		t.Errorf("two divides per iter take %.1f cycles, want >= %d", per, 2*isa.Latency[isa.IntDiv])
	}
}

func TestIterEndsMonotonic(t *testing.T) {
	tr := blockedChains(3, 6)
	for _, pol := range []Policy{Dataflow, ProgramOrder} {
		res := run(tr, pol, 6)
		for i := 1; i < len(res.IterEnd); i++ {
			if res.IterEnd[i] < res.IterEnd[i-1] {
				t.Errorf("policy %d: IterEnd not monotone: %v", pol, res.IterEnd)
			}
		}
	}
}

func TestFetchGateDelaysIteration(t *testing.T) {
	tr := serialChain(5)
	base := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 4,
		Policy: ProgramOrder, Width: 3})
	gated := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 4,
		Policy: ProgramOrder, Width: 3, FetchGate: func(int) int { return 50 }})
	if gated.Cycles <= base.Cycles+100 {
		t.Errorf("fetch gates (%d cycles) should delay iterations vs base (%d)", gated.Cycles, base.Cycles)
	}
}

func TestEmptyRequests(t *testing.T) {
	if res := Run(Request{}); res.Cycles != 0 {
		t.Error("empty request should return zero result")
	}
	tr := serialChain(3)
	if res := Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr)}); res.Cycles != 0 {
		t.Error("zero iterations should return zero result")
	}
}

func TestRecordedOrderRequiresFullOrder(t *testing.T) {
	tr := serialChain(3)
	defer func() {
		if recover() == nil {
			t.Error("short recorded order accepted")
		}
	}()
	Run(Request{Trace: tr, Deps: trace.BuildDepGraph(tr), Iterations: 2,
		Policy: RecordedOrder, Order: []uint16{0, 1}})
}

func TestMaxLiveVersionsSerialReuse(t *testing.T) {
	// A chain writing r1 repeatedly, issued in program order: each value
	// dies when the next is produced, except the loop-carried last one.
	tr := serialChain(6)
	order := make([]uint16, len(tr.Insts))
	for i := range order {
		order[i] = uint16(i)
	}
	if v := MaxLiveVersions(tr, order); v > 2 {
		t.Errorf("serial in-order chain needs %d versions, want <= 2", v)
	}
}

func TestMaxLiveVersionsGrowsWithUnroll(t *testing.T) {
	tr := serialChain(4)
	n := len(tr.Insts)
	// In-order over a 4-iteration block.
	order := make([]uint16, 4*n)
	for i := range order {
		order[i] = uint16(i)
	}
	inOrder := MaxLiveVersions(tr, order)
	// Fully interleaved across iterations: all four iterations' writes to
	// r1 overlap, requiring more versions.
	k := 0
	for j := 0; j < n; j++ {
		for it := 0; it < 4; it++ {
			order[k] = uint16(it*n + j)
			k++
		}
	}
	interleaved := MaxLiveVersions(tr, order)
	if interleaved <= inOrder {
		t.Errorf("interleaved unroll needs %d versions, in-order %d; want growth", interleaved, inOrder)
	}
}

func TestSteadyCyclesPerIter(t *testing.T) {
	r := Result{IterEnd: []int{10, 20, 30, 40}}
	if got := r.SteadyCyclesPerIter(); got != 10 {
		t.Errorf("steady cycles %v, want 10", got)
	}
	r = Result{IterEnd: []int{7}}
	if got := r.SteadyCyclesPerIter(); got != 7 {
		t.Errorf("single-iteration steady %v", got)
	}
	r = Result{}
	if got := r.SteadyCyclesPerIter(); got != 0 {
		t.Errorf("empty steady %v", got)
	}
}
