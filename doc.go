// Package repro is a pure-Go reproduction of "Mirage Cores: The Illusion of
// Many Out-of-order Cores Using In-order Hardware" (MICRO-50, 2017).
//
// The library lives under internal/ (see internal/core for the public entry
// points), the executables under cmd/, and runnable examples under
// examples/. This root package carries the repository-wide benchmark
// harness: one testing.B benchmark per table and figure of the paper's
// evaluation plus ablation sweeps — run `go test -bench=. -benchmem`.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for paper-vs-measured results.
package repro
