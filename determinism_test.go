package repro

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/experiments"
)

// TestParallelMatchesSerial is the paper-trail for the parallel experiment
// engine's central claim (DESIGN.md §8): running the experiments on a worker
// pool produces byte-identical output to the serial path. It renders a
// representative slice of the evaluation — the Figures 7/8/9b sweep via
// Headline and Figure7, and the SC sizing study — at -parallel 1 and
// -parallel 8 and compares both the text tables and the JSON encoding.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick-scale evaluation twice")
	}

	render := func(parallel int) (string, []byte) {
		t.Helper()
		// Drop memoized results so this pass recomputes from scratch
		// instead of replaying the other pass's cache.
		experiments.ResetCaches()
		s := experiments.QuickScale
		s.Parallel = parallel

		var reports []*experiments.Report
		for _, run := range []func(context.Context, experiments.Scale) (*experiments.Report, error){
			experiments.Headline, experiments.Figure7, experiments.SCSize,
		} {
			rep, err := run(context.Background(), s)
			if err != nil {
				t.Fatalf("parallel=%d: %v", parallel, err)
			}
			reports = append(reports, rep)
		}
		var text bytes.Buffer
		for _, rep := range reports {
			text.WriteString(rep.String())
			text.WriteString("\n")
		}
		var js bytes.Buffer
		if err := experiments.WriteReportsJSON(&js, reports); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return text.String(), js.Bytes()
	}

	serialText, serialJSON := render(1)
	parallelText, parallelJSON := render(8)

	if serialText != parallelText {
		t.Errorf("text reports differ between -parallel 1 and -parallel 8:\n--- serial\n%s\n--- parallel\n%s",
			serialText, parallelText)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("JSON reports differ between -parallel 1 and -parallel 8:\n--- serial\n%s\n--- parallel\n%s",
			serialJSON, parallelJSON)
	}
}
