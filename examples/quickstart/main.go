// Quickstart: simulate one Mirage Cores cluster — eight in-order consumer
// cores around one schedule-producing out-of-order core — on a mixed
// workload, and print what the illusion buys: near-OoO throughput at a
// fraction of the energy.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// An 8-application mix spanning both benchmark categories: HPD
	// applications (hmmer, milc, h264ref) lean hard on out-of-order
	// execution; LPD applications (bzip2, gcc, astar, ...) less so.
	mix := []string{"hmmer", "bzip2", "astar", "milc", "gcc", "namd", "h264ref", "omnetpp"}

	cfg := core.Config{
		Topology:   core.TopologyMirage, // 8 InO (OinO-capable) + 1 OoO
		Policy:     core.PolicySCMPKI,   // the paper's energy arbitrator
		Benchmarks: mix,
		Seed:       "quickstart",
	}

	// RunMixWithBaseline also runs each app alone on an OoO core so the
	// result carries STP (mean speedup vs all-OoO hardware).
	mr, err := core.RunMixWithBaseline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mirage Cores 8:1 cluster, SC-MPKI arbitration")
	fmt.Println()
	for _, a := range mr.Cluster.Apps {
		fmt.Printf("  %-10s IPC %.2f   %3.0f%% of instructions ran as memoized OoO schedules\n",
			a.Name, a.IPC, 100*float64(a.MemoizedInsts)/float64(a.Insts))
	}
	fmt.Println()
	fmt.Printf("system throughput:  %s of an 8-OoO CMP (paper: ~84%%)\n", stats.Pct(mr.STP))
	fmt.Printf("OoO core active:    %s of cycles (power-gated otherwise)\n", stats.Pct(mr.OoOActiveFrac))
	fmt.Printf("cluster area:       %.1f mm^2 vs %.1f mm^2 for 8 OoO cores\n",
		mr.AreaMM2, core.Area(core.TopologyHomoOoO, len(mix)))

	// Compare energy against the homogeneous OoO baseline.
	ref, err := core.RunMix(context.Background(), core.Config{
		Topology:   core.TopologyHomoOoO,
		Benchmarks: mix,
		Seed:       "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy:             %s of the 8-OoO CMP (paper: ~45%%)\n",
		stats.Pct(mr.EnergyPJ/ref.EnergyPJ))
}
