// Area-neutral design study (Figure 14): given roughly the same silicon,
// is it better to spend it on more out-of-order cores (the Kumar-style 5:3
// Het-CMP) or on one schedule-producing OoO feeding eight memoizing InO
// cores? This example runs both on the same eight applications.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	mix := core.RandomMixes(core.MixRandom, 8, 1, "areaneutral-example")[0]
	fmt.Println("mix:", mix)
	fmt.Println()

	base := core.Config{Seed: "areaneutral-example"}

	// Mirage 8:1 under the SC-MPKI arbitrator.
	cmp, err := core.Compare(context.Background(), mix, base, []struct {
		Policy   core.Policy
		Topology core.Topology
	}{{core.PolicySCMPKI, core.TopologyMirage}})
	if err != nil {
		log.Fatal(err)
	}
	mirage := cmp.ByPolicy[core.PolicySCMPKI]

	// Traditional 5:3 under maxSTP: 8 applications, 3 OoO cores, 5 InO.
	tCfg := base
	tCfg.Topology = core.TopologyTraditional
	tCfg.Policy = core.PolicyMaxSTP
	tCfg.Benchmarks = mix
	tCfg.NumOoO = 3
	trad, err := core.RunMix(context.Background(), tCfg)
	if err != nil {
		log.Fatal(err)
	}
	trad.STP = stats.STP(trad.PerAppIPC, cmp.RefIPC)

	var tbl stats.Table
	tbl.Title = "Area-neutral comparison (relative to an 8-OoO CMP)"
	tbl.Headers = []string{"metric", "8:1 Mirage / SC-MPKI", "5:3 traditional / maxSTP"}
	eRef := cmp.HomoOoO.EnergyPJ
	aRef := core.Area(core.TopologyHomoOoO, 8)
	tbl.AddRow("performance", stats.Pct(mirage.STP), stats.Pct(trad.STP))
	tbl.AddRow("energy", stats.Pct(mirage.EnergyPJ/eRef), stats.Pct(trad.EnergyPJ/eRef))
	tbl.AddRow("area", stats.Pct(mirage.AreaMM2/aRef), stats.Pct(trad.AreaMM2/aRef))
	tbl.AddRow("OoO active", stats.Pct(mirage.OoOActiveFrac), stats.Pct(trad.OoOActiveFrac))
	fmt.Println(tbl.String())
	fmt.Println("The paper's finding: one OoO used as a schedule producer beats two")
	fmt.Println("extra OoO cores on both performance and energy at similar area.")
}
