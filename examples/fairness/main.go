// Fairness under QoS: when every application must get an equal share of the
// fast core, a plain round-robin scheduler burns the OoO continuously. The
// SC-MPKI-fair arbitrator (Eq 3) counts time spent replaying memoized
// schedules at near-OoO speed toward each application's share, so it can
// power the OoO down without violating fairness — Figures 12/13 on one mix.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	mix := core.RandomMixes(core.MixRandom, 8, 1, "fairness-example")[0]
	fmt.Println("mix:", mix)
	fmt.Println()

	base := core.Config{Seed: "fairness-example"}
	cmp, err := core.Compare(context.Background(), mix, base, core.FairSet)
	if err != nil {
		log.Fatal(err)
	}

	var tbl stats.Table
	tbl.Title = "OoO time share per application (8:1 cluster)"
	headers := []string{"arbitrator"}
	for _, name := range mix {
		headers = append(headers, name)
	}
	headers = append(headers, "| OoO active", "STP")
	tbl.Headers = headers

	for _, pol := range []core.Policy{
		core.PolicyMaxSTP, core.PolicyFair, core.PolicySCMPKIFair, core.PolicySCMPKI,
	} {
		mr := cmp.ByPolicy[pol]
		row := []string{string(pol)}
		for _, a := range mr.Cluster.Apps {
			// Share of total time this app held the OoO; the arbitrators
			// that power-gate leave the rows summing below 100%.
			share := 0.0
			if mr.Cluster.RunCycles > 0 {
				share = float64(a.OoOCycles) / float64(mr.Cluster.RunCycles)
			}
			row = append(row, stats.Pct(share))
		}
		row = append(row, "| "+stats.Pct(mr.OoOActiveFrac), stats.F(mr.STP))
		tbl.AddRow(row...)
	}
	fmt.Println(tbl.String())
	fmt.Println("maxSTP starves most applications; Fair splits evenly but keeps the")
	fmt.Println("OoO at 100%; SC-MPKI-fair caps each app near 1/8 while gating the OoO.")
}
