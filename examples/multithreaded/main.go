// Multithreaded extension (Section 6): when the workload's threads perform
// homogeneous work — the same program on every core — the OoO can memoize
// one thread's repeatable phases and distribute the schedules to every InO
// in the cluster, speeding up all threads with a single memoization pass.
// This example runs eight "threads" of one program with and without the
// schedule broadcast and reports the difference in OoO demand.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// Eight homogeneous threads: the same benchmark on every InO core.
	threads := make([]string, 8)
	for i := range threads {
		threads[i] = "bzip2"
	}

	run := func(broadcast bool) *core.MixResult {
		mr, err := core.RunMixWithBaseline(context.Background(), core.Config{
			Topology:    core.TopologyMirage,
			Policy:      core.PolicySCMPKI,
			Benchmarks:  threads,
			BroadcastSC: broadcast,
			Seed:        "multithreaded-example",
		})
		if err != nil {
			log.Fatal(err)
		}
		return mr
	}

	point := run(false)
	bcast := run(true)

	var tbl stats.Table
	tbl.Title = "8 homogeneous threads (bzip2) on an 8:1 Mirage cluster"
	tbl.Headers = []string{"SC distribution", "STP vs 8 OoO", "OoO active", "migrations"}
	tbl.AddRow("point-to-point", stats.Pct(point.STP), stats.Pct(point.OoOActiveFrac),
		fmt.Sprint(point.Cluster.Migrations))
	tbl.AddRow("broadcast", stats.Pct(bcast.STP), stats.Pct(bcast.OoOActiveFrac),
		fmt.Sprint(bcast.Cluster.Migrations))
	fmt.Println(tbl.String())
	fmt.Println("With broadcast, one memoization pass fills every thread's Schedule")
	fmt.Println("Cache, so the cluster needs fewer producer visits for the same speed.")
}
