// Throughput shoot-out: the same workload mix under every arbitration
// policy and topology the paper evaluates — the homogeneous baselines, a
// traditional Het-CMP under maxSTP, and Mirage Cores under SC-MPKI and
// SC-MPKI+maxSTP — reproducing the Figure 7/8 comparison on one mix.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A random 8-app mix drawn across categories, as in Section 4.1.
	mix := core.RandomMixes(core.MixRandom, 8, 1, "throughput-example")[0]
	fmt.Println("mix:", mix)
	fmt.Println()

	base := core.Config{Seed: "throughput-example"}
	cmp, err := core.Compare(context.Background(), mix, base, core.ArbitratorSet)
	if err != nil {
		log.Fatal(err)
	}

	var tbl stats.Table
	tbl.Title = "8 applications: throughput and energy relative to a Homo-OoO CMP"
	tbl.Headers = []string{"configuration", "STP", "energy", "OoO active"}
	eRef := cmp.HomoOoO.EnergyPJ

	tbl.AddRow("Homo-OoO (8 OoO)", "100%", "100%", "100%")
	tbl.AddRow("Homo-InO (8 InO)",
		stats.Pct(cmp.HomoInO.STP), stats.Pct(cmp.HomoInO.EnergyPJ/eRef), "-")
	for _, pt := range []struct {
		label  string
		policy core.Policy
	}{
		{"Traditional 8:1, maxSTP", core.PolicyMaxSTP},
		{"Mirage 8:1, SC-MPKI", core.PolicySCMPKI},
		{"Mirage 8:1, SC-MPKI+maxSTP", core.PolicySCMPKIMaxSTP},
	} {
		mr := cmp.ByPolicy[pt.policy]
		tbl.AddRow(pt.label, stats.Pct(mr.STP), stats.Pct(mr.EnergyPJ/eRef), stats.Pct(mr.OoOActiveFrac))
	}
	fmt.Println(tbl.String())
	fmt.Println("Expected shape (paper Figures 7/8): Homo-InO < maxSTP < SC-MPKI,")
	fmt.Println("with SC-MPKI using the OoO far less than maxSTP's always-on 100%.")
}
