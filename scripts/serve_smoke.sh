#!/usr/bin/env bash
# Serve smoke: boot miraged, drive one real request through it, then assert
# the observability surfaces hold their contracts —
#   * every stderr line is valid JSON (the structured access/lifecycle log),
#   * the /v1/run response carries an X-Request-ID and the access log has a
#     matching cache=miss leader line,
#   * /v1/metrics?format=prometheus parses as text exposition 0.0.4 with
#     well-formed `# TYPE` lines and no duplicate series,
#   * /debug/requests/trace is a Chrome-trace JSON array with simulate spans,
#   * /debug/statusz renders.
# CI runs this in the serve-smoke job and uploads serve.log/metrics.prom on
# failure; it is equally runnable locally: ./scripts/serve_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
LOG="serve.log"

echo "== build"
go build -o miraged-smoke ./cmd/miraged

cleanup() {
  if [ -n "${SRV_PID:-}" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -f miraged-smoke
}
trap cleanup EXIT

echo "== start miraged on $ADDR"
./miraged-smoke -addr "$ADDR" -log-format json 2>"$LOG" &
SRV_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    echo "miraged exited during startup:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf "$BASE/v1/healthz" >/dev/null || { echo "healthz never came up" >&2; cat "$LOG" >&2; exit 1; }

echo "== drive one /v1/run"
RUN_HEADERS="$(mktemp)"
curl -sf -D "$RUN_HEADERS" -o run.json \
  -H 'Content-Type: application/json' \
  -H 'X-Request-ID: smoke-run-1' \
  -d '{"mix": ["bzip2"], "target_insts": 50000, "interval_cycles": 5000}' \
  "$BASE/v1/run"
grep -qi '^X-Request-ID: smoke-run-1' "$RUN_HEADERS" || {
  echo "response did not echo X-Request-ID:" >&2; cat "$RUN_HEADERS" >&2; exit 1
}
rm -f "$RUN_HEADERS" run.json

echo "== scrape surfaces"
curl -sf "$BASE/v1/metrics?format=prometheus" -o metrics.prom
curl -sf "$BASE/debug/statusz" | grep -q "active_requests:" || { echo "statusz malformed" >&2; exit 1; }
curl -sf "$BASE/debug/requests/trace" -o trace.json

echo "== stop miraged"
kill "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
unset SRV_PID

echo "== validate"
python3 - <<'PY'
import json, re, sys

# 1. Every log line is valid JSON; the smoke request shows up as a leader miss.
saw_run = False
with open("serve.log") as f:
    for n, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"serve.log:{n} is not JSON: {line!r} ({e})")
        if rec.get("msg") == "request" and rec.get("request_id") == "smoke-run-1":
            saw_run = True
            for field, want in [("route", "run"), ("cache", "miss"), ("role", "leader"), ("status", 200)]:
                if rec.get(field) != want:
                    sys.exit(f"access log line {field}={rec.get(field)!r}, want {want!r}: {rec}")
if not saw_run:
    sys.exit("no access-log line for smoke-run-1")

# 2. Prometheus exposition: well-formed TYPE lines, every sample declared,
#    no duplicate (name, labels) series, finite values.
name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
typed, series = {}, set()
with open("metrics.prom") as f:
    for n, line in enumerate(f, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not name_re.match(parts[2]) or parts[3] not in ("counter", "gauge", "histogram"):
                sys.exit(f"metrics.prom:{n} malformed TYPE line: {line!r}")
            if parts[2] in typed:
                sys.exit(f"metrics.prom:{n} duplicate TYPE for {parts[2]}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', line)
        if not m:
            sys.exit(f"metrics.prom:{n} malformed sample: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        float(value)  # must parse
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and typed.get(name[: -len(suffix)]) == "histogram":
                base = name[: -len(suffix)]
                break
        if base not in typed:
            sys.exit(f"metrics.prom:{n} sample {name} has no TYPE declaration")
        if (name, labels) in series:
            sys.exit(f"metrics.prom:{n} duplicate series {name}{labels}")
        series.add((name, labels))
needed = ["server_requests", "server_requests_ok", "server_http_latency_us_run"]
for want in needed:
    if want not in typed:
        sys.exit(f"metrics.prom missing expected metric {want} (have {sorted(typed)[:20]}...)")

# 3. The trace export is a Chrome-trace array containing the run's spans.
with open("trace.json") as f:
    events = json.load(f)
if not isinstance(events, list) or not events:
    sys.exit("trace.json is not a non-empty JSON array")
names = {ev.get("name") for ev in events if isinstance(ev, dict)
         and isinstance(ev.get("args"), dict) and ev["args"].get("request_id") == "smoke-run-1"}
for want in ("request", "admission", "simulate", "encode"):
    if want not in names:
        sys.exit(f"trace.json missing span {want!r} for smoke-run-1 (have {sorted(n for n in names if n)})")

print("serve smoke OK:", len(series), "series,", len(events), "trace events")
PY

rm -f metrics.prom trace.json serve.log
echo "== serve smoke passed"
