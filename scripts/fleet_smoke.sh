#!/usr/bin/env bash
# Fleet smoke: boot a coordinator over three real miraged workers (each with
# its own persistent store) plus one standalone reference node, then assert
# the fleet contract from the outside —
#   * every sharded response is byte-identical to the single node's,
#   * killing a worker mid-run costs no request: the coordinator fails over
#     on the transport error and the prober logs a "ring re-shard",
#   * the restarted worker re-enters the ring warm: it serves the keys it
#     owned before the kill from its disk store (X-Cache: disk),
#   * the coordinator's own healthz and Prometheus surfaces hold up.
# CI runs this in the fleet-smoke job and uploads the logs on failure; it is
# equally runnable locally: ./scripts/fleet_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
HOST="127.0.0.1"
COORD="$HOST:18190"
REF="$HOST:18194"
WORKER_PORTS=(18191 18192 18193)
WORKERS="http://$HOST:${WORKER_PORTS[0]},http://$HOST:${WORKER_PORTS[1]},http://$HOST:${WORKER_PORTS[2]}"
PEER_AUTH="fleet-smoke-secret"
WORKDIR="$(mktemp -d)"

echo "== build"
go build -o miraged-fleet ./cmd/miraged

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -f miraged-fleet
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_healthz() { # addr log
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "healthz on $1 never came up" >&2
  cat "$2" >&2
  exit 1
}

start_worker() { # index port -> appends pid
  mkdir -p "$WORKDIR/store-$1"
  ./miraged-fleet -addr "$HOST:$2" -store-dir "$WORKDIR/store-$1" \
    -peers "$WORKERS" -peer-auth "$PEER_AUTH" \
    -log-format json 2>"fleet-worker-$1.log" &
  PIDS+=($!)
}

echo "== start 3 workers + reference node"
for i in 0 1 2; do
  start_worker "$i" "${WORKER_PORTS[$i]}"
done
./miraged-fleet -addr "$REF" -log-format json 2>"fleet-ref.log" &
PIDS+=($!)
for i in 0 1 2; do wait_healthz "$HOST:${WORKER_PORTS[$i]}" "fleet-worker-$i.log"; done
wait_healthz "$REF" "fleet-ref.log"

echo "== start coordinator on $COORD"
./miraged-fleet -coordinator -addr "$COORD" -workers "$WORKERS" \
  -probe-interval 200ms -log-format json 2>"fleet.log" &
COORD_PID=$!
PIDS+=($COORD_PID)
wait_healthz "$COORD" "fleet.log"

run_body() { # seed
  printf '{"mix": ["bzip2"], "seed": "%s", "target_insts": 50000, "interval_cycles": 5000}' "$1"
}

drive() { # seed out_body out_headers base
  curl -sf -D "$3" -o "$2" -H 'Content-Type: application/json' \
    -d "$(run_body "$1")" "http://$4/v1/run"
}

shard_of() { # headers file
  tr -d '\r' <"$1" | awk 'tolower($1) == "x-mirage-shard:" {print $2}'
}

# Phase 1: drive seeds through the fleet until the middle worker owns at
# least one (so the warm-restart phase has a key to prove itself with), and
# record the single-node reference bytes for every seed.
echo "== phase 1: shard, and record the single-node reference"
KILLED_URL="http://$HOST:${WORKER_PORTS[1]}"
SEEDS=()
KILLED_SEED=""
KILLED_KEYS=0
for s in $(seq 1 40); do
  SEED="smoke-$s"
  SEEDS+=("$SEED")
  drive "$SEED" "$WORKDIR/ref-$SEED.json" "$WORKDIR/h-ref-$SEED" "$REF"
  drive "$SEED" "$WORKDIR/fleet-$SEED.json" "$WORKDIR/h-$SEED" "$COORD"
  cmp -s "$WORKDIR/ref-$SEED.json" "$WORKDIR/fleet-$SEED.json" || {
    echo "seed $SEED: fleet bytes diverge from single node" >&2; exit 1
  }
  SHARD="$(shard_of "$WORKDIR/h-$SEED")"
  [ -n "$SHARD" ] || { echo "seed $SEED: no X-Mirage-Shard header" >&2; exit 1; }
  if [ "$SHARD" = "$KILLED_URL" ]; then
    KILLED_KEYS=$((KILLED_KEYS + 1))
    [ -n "$KILLED_SEED" ] || KILLED_SEED="$SEED"
  fi
  # Enough seeds once the worker we are about to kill owns one.
  if [ -n "$KILLED_SEED" ] && [ "$s" -ge 12 ]; then break; fi
done
[ -n "$KILLED_SEED" ] || {
  echo "worker $KILLED_URL owned none of ${#SEEDS[@]} keys — ring badly unbalanced" >&2
  exit 1
}
echo "   ${#SEEDS[@]} seeds byte-identical; $KILLED_URL owns $KILLED_SEED"

# The store write-through is asynchronous with respect to the response;
# make sure the worker persisted its keys before the kill, or the warm
# restart has nothing to be warm from.
for _ in $(seq 1 50); do
  PUTS="$(curl -sf "$KILLED_URL/debug/statusz" | awk '$1 == "store_puts:" {print $2}')"
  if [ "${PUTS:-0}" -ge "$KILLED_KEYS" ]; then break; fi
  sleep 0.2
done
[ "${PUTS:-0}" -ge "$KILLED_KEYS" ] || {
  echo "worker store absorbed $PUTS/$KILLED_KEYS puts before kill" >&2; exit 1
}

echo "== phase 2: kill $KILLED_URL mid-run (SIGKILL, no drain)"
kill -9 "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true
# No probe has run yet for some of these: the first requests hit the corpse
# and must fail over on the transport error without surfacing an error.
for SEED in "${SEEDS[@]}"; do
  drive "$SEED" "$WORKDIR/after-$SEED.json" "$WORKDIR/h-after-$SEED" "$COORD" || {
    echo "seed $SEED lost to the worker kill" >&2; cat "fleet.log" >&2; exit 1
  }
  cmp -s "$WORKDIR/ref-$SEED.json" "$WORKDIR/after-$SEED.json" || {
    echo "seed $SEED: bytes diverged after worker kill" >&2; exit 1
  }
done
for _ in $(seq 1 50); do
  if grep -q 'ring re-shard' "fleet.log"; then break; fi
  sleep 0.2
done
grep -q 'ring re-shard' "fleet.log" || {
  echo "coordinator never logged the re-shard" >&2; cat "fleet.log" >&2; exit 1
}

echo "== phase 3: restart the worker on its store directory"
start_worker 1 "${WORKER_PORTS[1]}"
wait_healthz "$HOST:${WORKER_PORTS[1]}" "fleet-worker-1.log"
RESHARDS_NEEDED=2 # eviction + re-entry are both membership transitions
for _ in $(seq 1 50); do
  if [ "$(grep -c 'ring re-shard' "fleet.log")" -ge "$RESHARDS_NEEDED" ]; then break; fi
  sleep 0.2
done
[ "$(grep -c 'ring re-shard' "fleet.log")" -ge "$RESHARDS_NEEDED" ] || {
  echo "restarted worker never re-entered the ring" >&2; cat "fleet.log" >&2; exit 1
}
drive "$KILLED_SEED" "$WORKDIR/warm.json" "$WORKDIR/h-warm" "$COORD"
cmp -s "$WORKDIR/ref-$KILLED_SEED.json" "$WORKDIR/warm.json" || {
  echo "warm restart: bytes diverged" >&2; exit 1
}
WARM_SHARD="$(shard_of "$WORKDIR/h-warm")"
[ "$WARM_SHARD" = "$KILLED_URL" ] || {
  echo "restarted worker did not reclaim its key (served by $WARM_SHARD)" >&2; exit 1
}
grep -qi '^X-Cache: disk' <(tr -d '\r' <"$WORKDIR/h-warm") || {
  echo "restarted worker did not serve from disk:" >&2
  cat "$WORKDIR/h-warm" >&2
  exit 1
}

echo "== phase 4: coordinator surfaces"
curl -sf "http://$COORD/v1/healthz" | grep -q '"coordinator"' || {
  echo "coordinator healthz missing role" >&2; exit 1
}
curl -sf "http://$COORD/v1/metrics?format=prometheus" | grep -q '^fleet_requests ' || {
  echo "coordinator exposition missing fleet_requests" >&2; exit 1
}
# The peering surface is locked down: the coordinator never proxies
# /internal/*, and workers refuse peer reads without the shared secret.
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD/internal/peer/cache?key=x")"
[ "$CODE" = "404" ] || { echo "coordinator proxied /internal/ (status $CODE)" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$HOST:${WORKER_PORTS[0]}/internal/peer/cache?key=x")"
[ "$CODE" = "403" ] || { echo "worker served an unauthenticated peer read (status $CODE)" >&2; exit 1; }

rm -f fleet.log fleet-ref.log fleet-worker-*.log
echo "== fleet smoke passed (${#SEEDS[@]} keys, 1 kill, 1 warm restart)"
