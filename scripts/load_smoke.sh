#!/usr/bin/env bash
# Load smoke: boot miraged with a persistent result store, drive it with
# mirageload's deterministic zipfian/Poisson traffic, and gate on the serving
# SLOs (p50/p99 latency, error rate, cache-hit ratio). Then restart the
# server onto the same store directory and replay the same seed: the warm
# run must hold a stricter hit-ratio SLO and serve at least one request
# straight from disk (X-Cache: disk), proving warm starts work end to end.
# CI runs this in the load-smoke job and uploads BENCH_serving.json plus the
# server logs; it is equally runnable locally: ./scripts/load_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:18090"
BASE="http://$ADDR"
STORE_DIR="$(mktemp -d)"
SEED="load-smoke"

echo "== build"
go build -o miraged-load ./cmd/miraged
go build -o mirageload-bin ./cmd/mirageload

cleanup() {
  if [ -n "${SRV_PID:-}" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf miraged-load mirageload-bin "$STORE_DIR"
}
trap cleanup EXIT

start_server() {
  local log="$1"
  ./miraged-load -addr "$ADDR" -log-format json \
    -max-inflight 4 -queue 128 \
    -store-dir "$STORE_DIR" -store-max-bytes $((64 * 1024 * 1024)) 2>"$log" &
  SRV_PID=$!
  for i in $(seq 1 50); do
    if curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      echo "miraged exited during startup:" >&2; cat "$log" >&2; exit 1
    fi
    sleep 0.2
  done
  echo "healthz never came up" >&2; cat "$log" >&2; exit 1
}

stop_server() {
  kill "$SRV_PID"
  wait "$SRV_PID" 2>/dev/null || true
  unset SRV_PID
}

echo "== cold run: fresh store at $STORE_DIR"
start_server load_cold.log
./mirageload-bin -target "$BASE" -seed "$SEED" \
  -requests 300 -rate 150 -concurrency 16 -keys 16 -sweep-scale tiny \
  -slo-p50-ms 500 -slo-p99-ms 10000 \
  -slo-max-error-rate 0.01 -slo-min-hit-ratio 0.4 \
  -out BENCH_serving_cold.json
stop_server

echo "== warm run: restarted server, same store, same seed"
start_server load_warm.log
./mirageload-bin -target "$BASE" -seed "$SEED" \
  -requests 300 -rate 150 -concurrency 16 -keys 16 -sweep-scale tiny \
  -slo-p50-ms 500 -slo-p99-ms 10000 \
  -slo-max-error-rate 0.01 -slo-min-hit-ratio 0.8 \
  -out BENCH_serving.json
stop_server

echo "== validate"
python3 - <<'PY'
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

cold, warm = load("BENCH_serving_cold.json"), load("BENCH_serving.json")

for name, rep in (("cold", cold), ("warm", warm)):
    for field in ("config", "by_status", "by_cache", "latency_ms", "slo"):
        if field not in rep:
            sys.exit(f"{name} report lacks {field!r}")
    for p in ("p50", "p99"):
        if p not in rep["latency_ms"]:
            sys.exit(f"{name} report lacks latency_ms.{p}")
    checks = {c["name"] for c in rep["slo"]["checks"]}
    for want in ("p50_ms", "p99_ms", "error_rate", "hit_ratio"):
        if want not in checks:
            sys.exit(f"{name} report lacks SLO check {want!r}")
    if not rep["slo"]["pass"]:
        sys.exit(f"{name} run breached SLOs: {rep['slo']['checks']}")

# The warm run must have touched the persistent store: at least one request
# served with X-Cache: disk, and a hit ratio at least as good as cold's.
disk = warm["by_cache"].get("disk", 0)
if disk < 1:
    sys.exit(f"warm run served nothing from disk: by_cache={warm['by_cache']}")
if warm["hit_ratio"] < cold["hit_ratio"]:
    sys.exit(f"warm hit ratio {warm['hit_ratio']} below cold {cold['hit_ratio']}")

# The restarted server's access log must attribute disk hits.
saw_disk_line = False
with open("load_warm.log") as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("msg") == "request" and rec.get("cache") == "disk":
            saw_disk_line = True
            break
if not saw_disk_line:
    sys.exit("no cache=disk access-log line in the warm run")

print(f"load smoke OK: cold hit_ratio={cold['hit_ratio']:.3f} "
      f"warm hit_ratio={warm['hit_ratio']:.3f} disk_hits={disk} "
      f"warm p50={warm['latency_ms']['p50']}ms p99={warm['latency_ms']['p99']}ms")
PY

rm -f load_cold.log load_warm.log BENCH_serving_cold.json
echo "== load smoke passed (BENCH_serving.json retained)"
