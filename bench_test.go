// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, plus ablation benchmarks for the
// design choices DESIGN.md §5 calls out. Each benchmark regenerates its
// experiment at quick scale and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the whole evaluation.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

var benchScale = experiments.QuickScale

// report runs an experiment once per benchmark iteration and prints the
// resulting table on the first iteration.
func report(b *testing.B, run func() (*experiments.Report, error)) *experiments.Report {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	if rep != nil {
		b.Logf("\n%s", rep.String())
	}
	return rep
}

func BenchmarkTable1(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Table1(context.Background(), benchScale) })
}

func BenchmarkTable2(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Table2(), nil })
}

func BenchmarkFigure1(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure1(context.Background(), benchScale) })
}

func BenchmarkFigure2(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure2(context.Background(), benchScale) })
}

func BenchmarkFigure3b(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure3b(context.Background(), benchScale) })
}

func BenchmarkFigure5(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure5(context.Background(), benchScale) })
}

func BenchmarkFigure6(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure6(benchScale), nil })
}

func BenchmarkFigure7(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure7(context.Background(), benchScale) })
}

func BenchmarkFigure8(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure8(context.Background(), benchScale) })
}

func BenchmarkFigure9a(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure9a() })
}

func BenchmarkFigure9b(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure9b(context.Background(), benchScale) })
}

func BenchmarkFigure10(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure10(context.Background(), benchScale) })
}

func BenchmarkFigure11(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure11(context.Background(), benchScale) })
}

func BenchmarkFigure12(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure12(context.Background(), benchScale) })
}

func BenchmarkFigure13(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure13(context.Background(), benchScale) })
}

func BenchmarkFigure14(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure14(context.Background(), benchScale) })
}

func BenchmarkFigure15(b *testing.B) {
	report(b, func() (*experiments.Report, error) { return experiments.Figure15(context.Background(), benchScale) })
}

func BenchmarkHeadline(b *testing.B) {
	rep := report(b, func() (*experiments.Report, error) { return experiments.Headline(context.Background(), benchScale) })
	_ = rep
}

// --- Ablations (DESIGN.md §5) ---

// benchOneMix runs one 8:1 Mirage mix under SC-MPKI with overrides and
// reports STP and OoO-active fraction as custom metrics.
func benchOneMix(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	mix := core.RandomMixes(core.MixRandom, 8, 1, "ablation")[0]
	var stp, active float64
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Topology:       core.TopologyMirage,
			Policy:         core.PolicySCMPKI,
			Benchmarks:     mix,
			TargetInsts:    benchScale.TargetInsts,
			IntervalCycles: benchScale.IntervalCycles,
			Seed:           "ablation",
		}
		if mutate != nil {
			mutate(&cfg)
		}
		mr, err := core.RunMixWithBaseline(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		stp = mr.STP
		active = mr.OoOActiveFrac
	}
	b.ReportMetric(stp, "STP")
	b.ReportMetric(active, "OoO-active")
}

// BenchmarkClusterTelemetry measures the cost of the observability layer:
// the same 8:1 Mirage run with telemetry disabled (Off, the default nil
// fast path) and fully instrumented (On: registry + sampler + trace sink).
// When both sub-benchmarks run, the pair and the relative overhead are
// written to BENCH_telemetry.json for trajectory tracking; the Off path is
// the one every production run takes, so the overhead must stay ≈0.
func BenchmarkClusterTelemetry(b *testing.B) {
	mix := core.RandomMixes(core.MixRandom, 8, 1, "telemetry-bench")[0]
	// Each iteration gets a fresh Telemetry, matching real usage (one
	// artifact per run); reusing one across iterations grows the retained
	// event buffer without bound and benchmarks the GC instead.
	run := func(b *testing.B, tel func() *telemetry.Telemetry) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				Topology:       core.TopologyMirage,
				Policy:         core.PolicySCMPKI,
				Benchmarks:     mix,
				TargetInsts:    benchScale.TargetInsts,
				IntervalCycles: benchScale.IntervalCycles,
				Seed:           "telemetry-bench",
				Telemetry:      tel(),
			}
			if _, err := core.RunMix(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	var offNs, onNs float64
	b.Run("Off", func(b *testing.B) {
		run(b, func() *telemetry.Telemetry { return nil })
		offNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("On", func(b *testing.B) {
		run(b, telemetry.New)
		onNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if offNs == 0 || onNs == 0 {
		return // a sub-benchmark was filtered out; nothing to compare
	}
	overhead := onNs/offNs - 1
	b.Logf("telemetry overhead: %.2f%% (off %.0f ns/op, on %.0f ns/op)", overhead*100, offNs, onNs)
	out := map[string]any{
		"benchmark": "BenchmarkClusterTelemetry",
		"unit":      "ns/op",
		"results": map[string]float64{
			"ClusterTelemetryOff": offNs,
			"ClusterTelemetryOn":  onNs,
		},
		"overhead_frac": overhead,
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepParallel measures the parallel experiment engine on the
// Figures 7/8/9b sweep: the same reduced sweep serially (-parallel 1) and on
// a full worker pool (-parallel 0 = GOMAXPROCS). Reports are bit-identical
// either way (TestParallelMatchesSerial); this benchmark tracks the
// wall-clock payoff. When both sub-benchmarks run, the pair, the machine's
// CPU count and the speedup are written to BENCH_parallel.json — on a
// single-CPU machine the speedup is necessarily ~1x, so the file records
// cpus alongside it.
func BenchmarkSweepParallel(b *testing.B) {
	// A reduced sweep keeps one iteration in seconds while still fanning out
	// 6 Compare jobs (= 30 simulations).
	sweep := experiments.Scale{
		TargetInsts:    1_000_000,
		IntervalCycles: 40_000,
		MixesPerPoint:  3,
		NValues:        []int{4, 8},
	}
	program.Suite() // generate the workload suite outside the timed region
	run := func(b *testing.B, parallel int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			s := sweep
			s.Parallel = parallel
			// A per-iteration scale name gives each iteration a fresh sweep
			// cache key, so every iteration simulates instead of replaying
			// the memoized result (seeds ignore the name: results match).
			s.Name = fmt.Sprintf("sweepbench-p%d-i%d", parallel, i)
			if _, err := experiments.Figure7(context.Background(), s); err != nil {
				b.Fatal(err)
			}
		}
	}
	var serialNs, parallelNs float64
	b.Run("Serial", func(b *testing.B) {
		run(b, 1)
		serialNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("Parallel", func(b *testing.B) {
		run(b, 0)
		parallelNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if serialNs == 0 || parallelNs == 0 {
		return // a sub-benchmark was filtered out; nothing to compare
	}
	cpus := runtime.GOMAXPROCS(0)
	// On a single-CPU machine the "speedup" is pure pool overhead, not a
	// meaningful scaling number; record null so trajectory tooling skips the
	// point instead of averaging in a ~1x.
	var speedup any
	if cpus > 1 {
		s := serialNs / parallelNs
		speedup = s
		b.Logf("sweep speedup: %.2fx on %d CPUs (serial %.0f ns/op, parallel %.0f ns/op)",
			s, cpus, serialNs, parallelNs)
	} else {
		b.Logf("single CPU: speedup not meaningful (serial %.0f ns/op, parallel %.0f ns/op)",
			serialNs, parallelNs)
	}
	out := map[string]any{
		"benchmark": "BenchmarkSweepParallel",
		"unit":      "ns/op",
		"cpus":      cpus,
		"results": map[string]float64{
			"SweepSerial":   serialNs,
			"SweepParallel": parallelNs,
		},
		"speedup": speedup,
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSCSize sweeps the Schedule Cache capacity around the
// paper's empirically chosen 8KB.
func BenchmarkAblationSCSize(b *testing.B) {
	for _, kb := range []int{2, 4, 8, 16, 32, 64} {
		kb := kb
		b.Run(stats.Pct(float64(kb)/8)+"-of-8KB", func(b *testing.B) {
			benchOneMix(b, func(c *core.Config) { c.SCCapacityBytes = kb << 10 })
		})
	}
}

// BenchmarkAblationInterval sweeps the arbitration interval (complements
// Figure 3b at the system level).
func BenchmarkAblationInterval(b *testing.B) {
	for _, iv := range []int64{10_000, 20_000, 40_000, 80_000, 160_000} {
		iv := iv
		b.Run(stats.F(float64(iv)/1000)+"kcyc", func(b *testing.B) {
			benchOneMix(b, func(c *core.Config) { c.IntervalCycles = iv })
		})
	}
}

// BenchmarkAblationPolicy compares every arbitration policy on the same
// Mirage hardware and mix.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, pol := range []core.Policy{
		core.PolicySCMPKI, core.PolicySCMPKIMaxSTP, core.PolicySCMPKIFair, core.PolicyFair,
	} {
		pol := pol
		b.Run(string(pol), func(b *testing.B) {
			benchOneMix(b, func(c *core.Config) { c.Policy = pol })
		})
	}
}

// BenchmarkAblationSoftwareArbiter compares hardware-interval SC-MPKI
// arbitration against the OS-timeslice software variant (Section 3.2.4).
func BenchmarkAblationSoftwareArbiter(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicySCMPKI, core.PolicySoftwareSCMPKI} {
		pol := pol
		b.Run(string(pol), func(b *testing.B) {
			benchOneMix(b, func(c *core.Config) { c.Policy = pol })
		})
	}
}

// BenchmarkAblationBroadcast measures the Section 6 multithreaded
// extension: homogeneous threads with and without SC broadcast.
func BenchmarkAblationBroadcast(b *testing.B) {
	threads := make([]string, 8)
	for i := range threads {
		threads[i] = "bzip2"
	}
	for _, bc := range []bool{false, true} {
		bc := bc
		name := "point-to-point"
		if bc {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			var stp float64
			for i := 0; i < b.N; i++ {
				mr, err := core.RunMixWithBaseline(context.Background(), core.Config{
					Topology:       core.TopologyMirage,
					Policy:         core.PolicySCMPKI,
					Benchmarks:     threads,
					BroadcastSC:    bc,
					TargetInsts:    benchScale.TargetInsts,
					IntervalCycles: benchScale.IntervalCycles,
					Seed:           "bcast-ablation",
				})
				if err != nil {
					b.Fatal(err)
				}
				stp = mr.STP
			}
			b.ReportMetric(stp, "STP")
		})
	}
}
